#!/usr/bin/env bash
# Tier-1 verification: lint gate + build + full test suite.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "verify: OK"
