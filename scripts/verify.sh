#!/usr/bin/env bash
# Tier-1 verification: lint gate + build + full test suite.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (once per kernel backend x site-repeats setting)"
for kernel in scalar simd; do
  for repeats in on off; do
    echo "    EXAML_KERNEL=$kernel EXAML_SITE_REPEATS=$repeats"
    EXAML_KERNEL="$kernel" EXAML_SITE_REPEATS="$repeats" cargo test -q --workspace
  done
done

echo "==> examl smoke run (sentinel + heartbeat + repeat compression)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q --release -p exa-simgen --bin simgen -- "$tmp/smoke.phy" 8 2 60 1
cargo run -q --release -p exa-serve --bin examl -- \
  --phylip "$tmp/smoke.phy" --ranks 2 --iterations 2 --kernel auto \
  --site-repeats on --verify-replicas 8 --health-out "$tmp/health.jsonl" \
  --metrics-out "$tmp/metrics.prom" \
  --out-tree "$tmp/smoke.nwk" --quiet
test -s "$tmp/smoke.nwk"
test -s "$tmp/health.jsonl"
# --metrics-out must dump the global registry in Prometheus text format
# with the run-layer series populated.
test -s "$tmp/metrics.prom"
grep -q '^exa_runs_completed_total{scheme="decentralized"} [1-9]' "$tmp/metrics.prom" \
  || { echo "metrics dump missing completed-run counter"; cat "$tmp/metrics.prom"; exit 1; }
grep -q '^exa_collectives_total [1-9]' "$tmp/metrics.prom" \
  || { echo "metrics dump missing collective counter"; cat "$tmp/metrics.prom"; exit 1; }
grep -q '^exa_batches_total [1-9]' "$tmp/metrics.prom" \
  || { echo "metrics dump missing packed-batch counter"; cat "$tmp/metrics.prom"; exit 1; }
grep -q '^exa_batch_fill_ratio ' "$tmp/metrics.prom" \
  || { echo "metrics dump missing batch fill ratio"; cat "$tmp/metrics.prom"; exit 1; }
grep -q '^# TYPE exa_collective_wait_ns_total counter' "$tmp/metrics.prom" \
  || { echo "metrics dump missing TYPE metadata"; exit 1; }
# Every heartbeat line must parse as JSON, report a verified-ok run, carry
# the auto-negotiated kernel backend, and (with --site-repeats on) a
# repeat-compression ratio of at least 1.
while IFS= read -r line; do
  [ -n "$line" ] || continue
  status="$(printf '%s' "$line" | jq -r .divergence)"
  [ "$status" = "ok" ] || { echo "unexpected heartbeat: $line"; exit 1; }
  kernel="$(printf '%s' "$line" | jq -r .kernel)"
  case "$kernel" in
    scalar|simd) ;;
    *) echo "heartbeat missing negotiated kernel: $line"; exit 1 ;;
  esac
  printf '%s' "$line" | jq -e '.repeat_ratio >= 1' >/dev/null \
    || { echo "heartbeat missing repeat-compression ratio: $line"; exit 1; }
done <"$tmp/health.jsonl"
ratio="$(tail -n 1 "$tmp/health.jsonl" | jq -r .repeat_ratio)"
echo "health: $(wc -l <"$tmp/health.jsonl") heartbeat record(s), all ok (kernel: $kernel, repeat ratio: $ratio)"

echo "==> reproducible reductions (rank-count-invariant lnL + elastic resize)"
# Same seed, same data, 1 / 2 / 4 ranks under --reduce reproducible: the
# per-iteration lnL trajectories must be bitwise equal (compared as the
# heartbeat JSON text — serde's shortest-round-trip float formatting is
# injective, so equal text == equal bits). A mid-run 2 -> 4 -> 1 elastic
# resize must leave the trajectory untouched too.
traj() { # FILE -> "iteration lnl reduce" per line
  sed -n 's/.*"iteration":\([0-9]*\).*"lnl":\([^,}]*\).*"reduce":"\([a-z]*\)".*/\1 \2 \3/p' "$1"
}
for r in 1 2 4; do
  cargo run -q --release -p exa-serve --bin examl -- \
    --phylip "$tmp/smoke.phy" --ranks "$r" --iterations 3 --seed 7 \
    --reduce reproducible --health-out "$tmp/reduce_$r.jsonl" --quiet >/dev/null
  traj "$tmp/reduce_$r.jsonl" >"$tmp/reduce_traj_$r.txt"
done
grep -q ' reproducible$' "$tmp/reduce_traj_1.txt" \
  || { echo "heartbeats missing the reproducible reduce label"; cat "$tmp/reduce_traj_1.txt"; exit 1; }
cmp -s "$tmp/reduce_traj_1.txt" "$tmp/reduce_traj_2.txt" \
  || { echo "lnL trajectory differs between 1 and 2 ranks"; diff "$tmp/reduce_traj_1.txt" "$tmp/reduce_traj_2.txt"; exit 1; }
cmp -s "$tmp/reduce_traj_1.txt" "$tmp/reduce_traj_4.txt" \
  || { echo "lnL trajectory differs between 1 and 4 ranks"; diff "$tmp/reduce_traj_1.txt" "$tmp/reduce_traj_4.txt"; exit 1; }
cargo run -q --release -p exa-serve --bin examl -- \
  --phylip "$tmp/smoke.phy" --ranks 2 --iterations 3 --seed 7 \
  --reduce reproducible --resize-at 1:4,2:1 \
  --health-out "$tmp/reduce_rz.jsonl" --quiet >/dev/null
traj "$tmp/reduce_rz.jsonl" >"$tmp/reduce_traj_rz.txt"
cmp -s "$tmp/reduce_traj_1.txt" "$tmp/reduce_traj_rz.txt" \
  || { echo "mid-run 2->4->1 resize shifted the lnL trajectory"; diff "$tmp/reduce_traj_1.txt" "$tmp/reduce_traj_rz.txt"; exit 1; }
# A scripted mixed-mode world (rank 1/3 forced to fast) must trip the
# replica sentinel at its very first fingerprint sync, never complete.
set +e
cargo run -q --release -p exa-serve --bin examl -- \
  --phylip "$tmp/smoke.phy" --ranks 4 --iterations 2 --seed 7 \
  --reduce reproducible --reduce-override reproducible,fast \
  --verify-replicas 1 --quiet >/dev/null 2>"$tmp/mixed.err"
mixed_status=$?
set -e
[ "$mixed_status" -eq 1 ] || { echo "mixed reduce world must exit 1, got $mixed_status"; cat "$tmp/mixed.err"; exit 1; }
grep -q 'replica divergence at collective #0 (fingerprint sync #1)' "$tmp/mixed.err" \
  || { echo "sentinel did not trip at the first sync:"; cat "$tmp/mixed.err"; exit 1; }
echo "reduce: trajectories bitwise-equal at 1/2/4 ranks and across a 2->4->1 resize; mixed world tripped at sync #1"

echo "==> intra-rank worker pool (--threads negotiation, bitwise identity, batch guard)"
# The worker pool and the packing pass are dispatch-structure changes only:
# a 2-thread run and an unbatched run must both reproduce the serial
# trajectory bit for bit, and the negotiated width must surface in the
# health stream.
for t in 1 2; do
  cargo run -q --release -p exa-serve --bin examl -- \
    --phylip "$tmp/smoke.phy" --ranks 2 --iterations 3 --seed 7 \
    --threads "$t" --health-out "$tmp/threads_$t.jsonl" --quiet >/dev/null
  traj "$tmp/threads_$t.jsonl" >"$tmp/threads_traj_$t.txt"
  tail -n 1 "$tmp/threads_$t.jsonl" | jq -e ".threads == $t" >/dev/null \
    || { echo "health does not report the negotiated thread count ($t)"; tail -n 1 "$tmp/threads_$t.jsonl"; exit 1; }
done
cmp -s "$tmp/threads_traj_1.txt" "$tmp/threads_traj_2.txt" \
  || { echo "lnL trajectory differs between --threads 1 and 2"; diff "$tmp/threads_traj_1.txt" "$tmp/threads_traj_2.txt"; exit 1; }
cargo run -q --release -p exa-serve --bin examl -- \
  --phylip "$tmp/smoke.phy" --ranks 2 --iterations 3 --seed 7 \
  --threads 2 --batch off --health-out "$tmp/threads_nb.jsonl" --quiet >/dev/null
traj "$tmp/threads_nb.jsonl" >"$tmp/threads_traj_nb.txt"
cmp -s "$tmp/threads_traj_1.txt" "$tmp/threads_traj_nb.txt" \
  || { echo "--batch off shifted the lnL trajectory"; diff "$tmp/threads_traj_1.txt" "$tmp/threads_traj_nb.txt"; exit 1; }
# Fused 1000-partition throughput must clear 1.5x the unbatched baseline
# on the modeled cluster (exits non-zero below the bar).
cargo run -q --release -p examl-bench --bin batch -- --guard >/dev/null
echo "threads: trajectories bitwise-equal at --threads 1/2 and --batch on/off; fused guard cleared"

echo "==> gradient BLO (--gradient negotiation, bitwise identity, collective guard)"
# Gradient-driven smoothing changes only the reduction *shape* of each
# Newton round (one fat full-tree collective vs one per edge), never its
# addends: --gradient on and off must replay the same lnL trajectory bit
# for bit, and the negotiated mode must surface in the health stream.
for g in on off; do
  cargo run -q --release -p exa-serve --bin examl -- \
    --phylip "$tmp/smoke.phy" --ranks 2 --iterations 3 --seed 7 \
    --reduce reproducible --gradient "$g" \
    --health-out "$tmp/grad_$g.jsonl" --quiet >/dev/null
  traj "$tmp/grad_$g.jsonl" >"$tmp/grad_traj_$g.txt"
  tail -n 1 "$tmp/grad_$g.jsonl" | jq -e ".gradient == \"$g\"" >/dev/null \
    || { echo "health does not report the negotiated gradient mode ($g)"; tail -n 1 "$tmp/grad_$g.jsonl"; exit 1; }
done
cmp -s "$tmp/grad_traj_on.txt" "$tmp/grad_traj_off.txt" \
  || { echo "lnL trajectory differs between --gradient on and off"; diff "$tmp/grad_traj_on.txt" "$tmp/grad_traj_off.txt"; exit 1; }
# A mixed gradient world runs different collective *sequences*, so the
# sentinel must refuse it at the pre-search sync, before the first
# smoothing collective can desynchronize the world.
set +e
cargo run -q --release -p exa-serve --bin examl -- \
  --phylip "$tmp/smoke.phy" --ranks 4 --iterations 2 --seed 7 \
  --gradient auto --gradient-override on,off \
  --verify-replicas 1 --quiet >/dev/null 2>"$tmp/grad_mixed.err"
grad_status=$?
set -e
[ "$grad_status" -eq 1 ] || { echo "mixed gradient world must exit 1, got $grad_status"; cat "$tmp/grad_mixed.err"; exit 1; }
grep -q 'replica divergence at collective #0 (fingerprint sync #1)' "$tmp/grad_mixed.err" \
  || { echo "sentinel did not trip at the pre-search sync:"; cat "$tmp/grad_mixed.err"; exit 1; }
# One fat collective per Newton round instead of one per edge: the
# 64-taxon bench must measure >= 10x fewer BLO collectives per round with
# bitwise-identical lnL (exits non-zero below the bar).
cargo run -q --release -p examl-bench --bin gradient -- --guard >/dev/null
echo "gradient: trajectories bitwise-equal on/off; mixed world refused at sync #1; collective guard cleared"

echo "==> examl checkpoint smoke (atomic generations + heartbeat fields)"
cargo run -q --release -p exa-serve --bin examl -- \
  --phylip "$tmp/smoke.phy" --ranks 2 --iterations 3 \
  --checkpoint-out "$tmp/ckpt" --checkpoint-every 1 \
  --health-out "$tmp/ckpt_health.jsonl" --quiet
ls "$tmp/ckpt"/gen-*.ckpt >/dev/null || { echo "no checkpoint generations committed"; exit 1; }
if ls "$tmp/ckpt"/*.tmp* >/dev/null 2>&1; then
  echo "torn tmp file left behind by the two-phase commit"; exit 1
fi
# Once a generation is committed, heartbeats must carry the checkpoint
# telemetry: the boundary iteration of the last commit and its write time.
tail -n 1 "$tmp/ckpt_health.jsonl" | jq -e '.last_checkpoint_iter >= 0' >/dev/null \
  || { echo "heartbeat missing last_checkpoint_iter"; exit 1; }
tail -n 1 "$tmp/ckpt_health.jsonl" | jq -e '.checkpoint_write_ms >= 0' >/dev/null \
  || { echo "heartbeat missing checkpoint_write_ms"; exit 1; }

echo "==> examl kill/restart smoke (injected kill exits 3, resume completes)"
rm -rf "$tmp/ckpt"
set +e
cargo run -q --release -p exa-serve --bin examl -- \
  --phylip "$tmp/smoke.phy" --ranks 2 --iterations 3 \
  --checkpoint-out "$tmp/ckpt" --checkpoint-every 1 \
  --inject-kill 1 --quiet
kill_status=$?
set -e
[ "$kill_status" -eq 3 ] || { echo "injected kill must exit 3, got $kill_status"; exit 1; }
cargo run -q --release -p exa-serve --bin examl -- \
  --phylip "$tmp/smoke.phy" --ranks 2 --iterations 3 \
  --resume "$tmp/ckpt" --out-tree "$tmp/resumed.nwk" --quiet
test -s "$tmp/resumed.nwk"
echo "checkpoint: kill at generation 1 exited 3, resume completed"

echo "==> exa-serve daemon smoke (fair-share queue, preemption, health gauges)"
examl_serve() { cargo run -q --release -p exa-serve --bin examl -- serve "$@"; }
cargo run -q --release -p exa-simgen --bin simgen -- "$tmp/serve.phy" 16 2 300 2
examl_serve daemon --spool "$tmp/spool" --workers 1 \
  >"$tmp/daemon.log" 2>"$tmp/daemon.err" &
daemon_pid=$!
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^listening on //p' "$tmp/daemon.log" | head -n 1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never reported its listen address"; cat "$tmp/daemon.err"; exit 1; }
# One worker: a long batch run plus a backlog keeps the queue non-empty
# while we sample the gauges, and the priority-9 submission can only run
# by checkpoint-preempting the batch job.
low_id="$(examl_serve submit --to "$addr" --alignment "$tmp/serve.phy" \
  --tenant batch --priority 0 --iterations 60 --epsilon 0.0000001 --seed 7)"
extra_ids=""
for _ in 1 2 3; do
  extra_ids="$extra_ids $(examl_serve submit --to "$addr" --alignment "$tmp/serve.phy" \
    --tenant batch --priority 0 --iterations 2 --seed 7)"
done
examl_serve health --to "$addr" | jq -e '.queue_depth >= 1' >/dev/null \
  || { echo "queue depth gauge missing the backlog"; exit 1; }
high_id="$(examl_serve submit --to "$addr" --alignment "$tmp/serve.phy" \
  --tenant interactive --priority 9 --iterations 2 --seed 7)"
examl_serve wait --to "$addr" "$high_id" --timeout-secs 300 >/dev/null
low_status="$(examl_serve wait --to "$addr" "$low_id" --timeout-secs 300)"
for jid in $extra_ids; do
  examl_serve wait --to "$addr" "$jid" --timeout-secs 300 >/dev/null
done
printf '%s' "$low_status" | jq -e '.preemptions >= 1' >/dev/null \
  || { echo "batch job was never preempted: $low_status"; exit 1; }
printf '%s' "$low_status" | jq -e '.attempts >= 2' >/dev/null \
  || { echo "preempted job was never re-dispatched: $low_status"; exit 1; }
health="$(examl_serve health --to "$addr")"
printf '%s' "$health" | jq -e '.preemptions >= 1' >/dev/null \
  || { echo "health missing preemption count: $health"; exit 1; }
printf '%s' "$health" | jq -e '.queue_depth == 0' >/dev/null \
  || { echo "queue must drain: $health"; exit 1; }
printf '%s' "$health" | jq -e '.completed == 5 and .resumes >= 1' >/dev/null \
  || { echo "expected 5 completed jobs incl. one resume: $health"; exit 1; }
# The Prometheus scrape and the heartbeat read the same registry atomics,
# so their counters can never disagree.
metrics="$(curl -sf "http://$addr/metrics")"
completed_prom="$(printf '%s\n' "$metrics" | sed -n 's/^exa_jobs_completed_total //p')"
preempt_prom="$(printf '%s\n' "$metrics" | sed -n 's/^exa_preemptions_total //p')"
[ "$completed_prom" = "$(printf '%s' "$health" | jq -r .completed)" ] \
  || { echo "/metrics completed ($completed_prom) disagrees with heartbeat: $health"; exit 1; }
[ "$preempt_prom" = "$(printf '%s' "$health" | jq -r .preemptions)" ] \
  || { echo "/metrics preemptions ($preempt_prom) disagrees with heartbeat: $health"; exit 1; }
printf '%s\n' "$metrics" | grep -q '^# TYPE exa_queue_wait_ms histogram' \
  || { echo "/metrics missing queue-wait histogram"; exit 1; }
# Counters are monotone across scrapes.
completed_again="$(curl -sf "http://$addr/metrics" | sed -n 's/^exa_jobs_completed_total //p')"
[ "$completed_again" -ge "$completed_prom" ] \
  || { echo "completed counter went backwards: $completed_prom -> $completed_again"; exit 1; }
# Per-job observability artifacts over HTTP: the merged Chrome trace and
# the health report written next to the job's spool directory.
curl -sf "http://$addr/trace/$high_id" | jq -e '.traceEvents | length > 0' >/dev/null \
  || { echo "/trace/$high_id missing or empty"; exit 1; }
curl -sf "http://$addr/job-health/$high_id" | head -n 1 | jq -e '.iteration >= 0' >/dev/null \
  || { echo "/job-health/$high_id missing heartbeats"; exit 1; }
examl_serve shutdown --to "$addr" >/dev/null
wait "$daemon_pid" || { echo "daemon exited non-zero"; exit 1; }
echo "serve: 5 jobs, $(printf '%s' "$health" | jq -r .preemptions) preemption(s), /metrics consistent, queue drained, clean shutdown"

echo "verify: OK"
