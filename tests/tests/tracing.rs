//! End-to-end tests of the `exa-obs` tracing subsystem.
//!
//! Three properties are checked over real inference runs:
//!
//! 1. **Trace parity** — de-centralized ranks replicate the search, so the
//!    timestamp-free event sequences of all ranks are bit-identical, and two
//!    runs with the same seed produce identical traces (§III-B's lock-step
//!    guarantee, observed rather than assumed).
//! 2. **Scheme comparison** — the fork-join scheme needs strictly more
//!    parallel regions (descriptor/parameter broadcasts on top of the
//!    reductions) than the de-centralized scheme on the same problem; the
//!    paper's §III-B argues ≥2× fewer regions for de-centralized.
//! 3. **Aggregation consistency** — the comm stats reconstructed from the
//!    trace match the communicator's own accounting, and kernel/search
//!    regions appear with sane counts.

use exa_obs::{RegionKind, RunTrace};
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{RunConfig, Scheme};

fn small_workload(seed: u64) -> workloads::Workload {
    workloads::partitioned(8, 2, 120, seed)
}

fn fast_search() -> SearchConfig {
    SearchConfig {
        max_iterations: 2,
        ..SearchConfig::fast()
    }
}

fn traced_decentralized(
    w: &workloads::Workload,
    n_ranks: usize,
    seed: u64,
) -> (RunTrace, exa_comm::CommStats) {
    let out = RunConfig::new(n_ranks)
        .search(fast_search())
        .seed(seed)
        .collect_trace(true)
        .run(&w.compressed)
        .unwrap();
    (out.trace.unwrap(), out.comm_stats)
}

fn traced_forkjoin(w: &workloads::Workload, n_ranks: usize, seed: u64) -> RunTrace {
    let out = RunConfig::new(n_ranks)
        .scheme(Scheme::ForkJoin)
        .search(fast_search())
        .seed(seed)
        .collect_trace(true)
        .run(&w.compressed)
        .unwrap();
    out.trace.unwrap()
}

#[test]
fn decentralized_ranks_emit_identical_event_sequences() {
    let w = small_workload(11);
    let (trace, _) = traced_decentralized(&w, 3, 42);
    assert_eq!(trace.n_ranks(), 3);
    let reference = trace.signatures(0);
    assert!(!reference.is_empty());
    for rank in 1..trace.n_ranks() {
        assert_eq!(
            trace.signatures(rank),
            reference,
            "rank {rank} diverged from rank 0"
        );
    }
}

#[test]
fn same_seed_reruns_are_bit_identical() {
    let w = small_workload(13);
    let (a, _) = traced_decentralized(&w, 2, 7);
    let (b, _) = traced_decentralized(&w, 2, 7);
    for rank in 0..2 {
        assert_eq!(
            a.signatures(rank),
            b.signatures(rank),
            "rerun diverged on rank {rank}"
        );
    }
}

#[test]
fn forkjoin_needs_at_least_twice_the_parallel_regions() {
    let w = small_workload(17);
    let seed = 42;
    let (dec, _) = traced_decentralized(&w, 3, seed);
    let fj = traced_forkjoin(&w, 3, seed);
    let dec_regions = dec.aggregate().comm.total_regions();
    let fj_regions = fj.aggregate().comm.total_regions();
    assert!(
        fj_regions >= 2 * dec_regions,
        "fork-join should need ≥2× the collectives of de-centralized \
         (§III-B): fork-join {fj_regions}, de-centralized {dec_regions}"
    );
}

#[test]
fn trace_comm_stats_match_communicator_accounting() {
    use exa_comm::{CommCategory, OpKind};
    let w = small_workload(19);
    let (trace, stats) = traced_decentralized(&w, 2, 5);
    let metrics = trace.aggregate();
    assert_eq!(metrics.unmatched_regions, 0);
    // The trace holds observed collectives only; the communicator's stats
    // additionally account the modeled initial-distribution scatter. Their
    // difference must be exactly that one Control-category scatter.
    let modeled = stats.diff(&metrics.comm);
    assert_eq!(modeled.total_regions(), 1);
    assert_eq!(modeled.ops_of_kind(OpKind::Scatter), 1);
    assert_eq!(
        modeled.get(CommCategory::Control).bytes,
        modeled.total_bytes()
    );
    for cat in CommCategory::ALL {
        if cat != CommCategory::Control {
            assert_eq!(
                metrics.comm.get(cat),
                stats.get(cat),
                "category {cat:?} diverges"
            );
        }
    }
    // Every observed collective is mirrored on every rank.
    assert_eq!(metrics.collective_events, 2 * metrics.comm.total_regions());
}

#[test]
fn kernel_and_search_regions_have_sane_counts() {
    let w = small_workload(23);
    let (trace, _) = traced_decentralized(&w, 2, 9);
    let m = trace.aggregate();
    let newview = m.region(RegionKind::Newview).count;
    let evaluate = m.region(RegionKind::Evaluate).count;
    let deriv = m.region(RegionKind::CoreDerivative).count;
    let nr = m.region(RegionKind::NrIteration).count;
    let spr = m.region(RegionKind::SprRound).count;
    let model_opt = m.region(RegionKind::ModelOptRound).count;
    assert!(
        newview > 0 && evaluate > 0 && deriv > 0,
        "{newview} {evaluate} {deriv}"
    );
    // Every SPR-scoring Newton iteration wraps exactly one derivative
    // kernel call; the Jacobi smoothing rounds (gradient-driven since
    // `--gradient`) evaluate their all-edge derivatives outside any NR
    // wrapper, so derivative regions strictly exceed NR iterations.
    assert!(nr > 0, "nr iterations: {nr}");
    assert!(
        deriv > nr,
        "derivative regions {deriv} vs NR iterations {nr}"
    );
    // Two ranks ran ≤ 2 search iterations each: one SPR round and one
    // model-optimization round per iteration, plus the initial conditioning
    // model round.
    assert!((2..=2 * 2).contains(&spr), "spr rounds: {spr}");
    assert!(model_opt >= spr, "model rounds: {model_opt} vs spr {spr}");
    assert!(m.marks >= 2, "iteration-boundary marks: {}", m.marks);
    // Wait time is attributed to every collective.
    assert_eq!(
        m.region(RegionKind::CollectiveWait).count,
        m.collective_events,
    );
}

#[test]
fn trace_collection_is_opt_in() {
    // The external-recorder shims are gone (their migration window is
    // over); `RunConfig::collect_trace` is now the only tracing switch, and
    // a run without it must not return a trace.
    let w = small_workload(29);
    let out = RunConfig::new(2)
        .search(fast_search())
        .seed(29)
        .run(&w.compressed)
        .unwrap();
    assert!(out.trace.is_none(), "untraced run must not carry a trace");
}

#[test]
fn chrome_trace_export_roundtrips_via_json() {
    let w = small_workload(31);
    let (trace, _) = traced_decentralized(&w, 2, 3);
    let value = exa_obs::chrome_trace(&trace);
    let text = serde_json::to_string(&value).unwrap();
    let back: serde::Value = serde_json::from_str(&text).unwrap();
    let events = serde::field(back.as_map("trace").unwrap(), "traceEvents")
        .as_array("traceEvents")
        .unwrap();
    // All events + one thread-name metadata record per rank.
    assert_eq!(events.len(), trace.total_events() + trace.n_ranks());
}
