//! The paper's central correctness claim, §III-B: the de-centralized scheme
//! and the fork-join scheme run *exactly the same search algorithm* and must
//! therefore produce the same tree and likelihood; and both must match the
//! sequential reference. These tests run all three end-to-end.

use exa_forkjoin::{execute, ForkJoinConfig};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::bipartitions::rf_distance;
use exa_phylo::tree::Tree;
use exa_search::evaluator::BranchMode;
use exa_search::{run_search, NoHooks, SearchConfig, SequentialEvaluator};
use exa_simgen::workloads;
use examl_core::RunConfig;

fn small_workload(seed: u64) -> workloads::Workload {
    workloads::partitioned(8, 2, 120, seed)
}

fn fast_search() -> SearchConfig {
    SearchConfig {
        max_iterations: 2,
        ..SearchConfig::fast()
    }
}

fn sequential_reference(
    w: &workloads::Workload,
    kind: RateModelKind,
    mode: BranchMode,
    seed: u64,
) -> (f64, Tree) {
    let slices: Vec<exa_phylo::engine::PartitionSlice> = w
        .compressed
        .partitions
        .iter()
        .enumerate()
        .map(|(i, p)| exa_phylo::engine::PartitionSlice::from_compressed(i, p))
        .collect();
    let engine = exa_phylo::engine::Engine::new(w.compressed.n_taxa(), slices, kind, 1.0);
    let blens = match mode {
        BranchMode::Joint => 1,
        BranchMode::PerPartition => w.compressed.n_partitions(),
    };
    let tree = Tree::random(w.compressed.n_taxa(), blens, seed);
    let mut eval = SequentialEvaluator::new(tree, engine, w.compressed.n_partitions(), mode);
    let r = run_search(&mut eval, &fast_search(), &mut NoHooks);
    use exa_search::Evaluator as _;
    (r.lnl, eval.snapshot().tree)
}

#[test]
fn decentralized_matches_sequential() {
    let w = small_workload(3);
    let seed = 42;
    let (seq_lnl, seq_tree) =
        sequential_reference(&w, RateModelKind::Gamma, BranchMode::Joint, seed);

    let mut cfg = RunConfig::new(3);
    cfg.search = fast_search();
    cfg.seed = seed;
    let out = cfg.run(&w.compressed).unwrap();

    assert!(
        (out.result.lnl - seq_lnl).abs() < 1e-6,
        "decentralized {} vs sequential {seq_lnl}",
        out.result.lnl
    );
    assert_eq!(
        rf_distance(&out.state.tree, &seq_tree),
        0,
        "topologies must agree"
    );
}

#[test]
fn forkjoin_matches_decentralized_exactly() {
    let w = small_workload(7);
    let seed = 11;

    let mut dcfg = RunConfig::new(3);
    dcfg.search = fast_search();
    dcfg.seed = seed;
    let dec = dcfg.run(&w.compressed).unwrap();

    let mut fcfg = ForkJoinConfig::new(3);
    fcfg.search = fast_search();
    fcfg.seed = seed;
    let fj = execute(&w.compressed, &fcfg, None);

    assert!(
        (dec.result.lnl - fj.result.lnl).abs() < 1e-6,
        "decentralized {} vs fork-join {}",
        dec.result.lnl,
        fj.result.lnl
    );
    assert_eq!(rf_distance(&dec.state.tree, &fj.state.tree), 0);
    assert_eq!(dec.result.iterations, fj.result.iterations);
}

#[test]
fn rank_count_does_not_change_the_result() {
    let w = small_workload(13);
    let mut lnls = Vec::new();
    for n_ranks in [1usize, 2, 4] {
        let mut cfg = RunConfig::new(n_ranks);
        cfg.search = fast_search();
        cfg.seed = 5;
        let out = cfg.run(&w.compressed).unwrap();
        lnls.push(out.result.lnl);
    }
    for pair in lnls.windows(2) {
        assert!(
            (pair[0] - pair[1]).abs() < 1e-6,
            "likelihood must be rank-count independent: {lnls:?}"
        );
    }
}

#[test]
fn mps_and_cyclic_agree() {
    let w = workloads::partitioned(8, 6, 60, 17);
    let mut results = Vec::new();
    for strategy in [
        exa_sched::Strategy::Cyclic,
        exa_sched::Strategy::MonolithicLpt,
    ] {
        let mut cfg = RunConfig::new(3);
        cfg.search = fast_search();
        cfg.strategy = strategy;
        cfg.seed = 9;
        let out = cfg.run(&w.compressed).unwrap();
        results.push(out);
    }
    assert!(
        (results[0].result.lnl - results[1].result.lnl).abs() < 1e-6,
        "distribution strategy must not change the result: {} vs {}",
        results[0].result.lnl,
        results[1].result.lnl
    );
    assert_eq!(
        rf_distance(&results[0].state.tree, &results[1].state.tree),
        0
    );
}

#[test]
fn psr_schemes_agree() {
    let w = small_workload(23);
    let seed = 3;

    let mut dcfg = RunConfig::new(2);
    dcfg.search = fast_search();
    dcfg.rate_model = RateModelKind::Psr;
    dcfg.seed = seed;
    let dec = dcfg.run(&w.compressed).unwrap();

    let mut fcfg = ForkJoinConfig::new(2);
    fcfg.search = fast_search();
    fcfg.rate_model = RateModelKind::Psr;
    fcfg.seed = seed;
    let fj = execute(&w.compressed, &fcfg, None);

    // PSR rates are optimized on pattern subsets, so the quantization is
    // distribution-dependent in principle; with identical distribution
    // (same strategy, same rank count) results must agree exactly.
    assert!(
        (dec.result.lnl - fj.result.lnl).abs() < 1e-6,
        "{} vs {}",
        dec.result.lnl,
        fj.result.lnl
    );
}

#[test]
fn per_partition_branch_mode_agrees_across_schemes() {
    let w = small_workload(29);
    let seed = 8;

    let mut dcfg = RunConfig::new(2);
    dcfg.search = fast_search();
    dcfg.branch_mode = BranchMode::PerPartition;
    dcfg.seed = seed;
    let dec = dcfg.run(&w.compressed).unwrap();

    let mut fcfg = ForkJoinConfig::new(2);
    fcfg.search = fast_search();
    fcfg.branch_mode = BranchMode::PerPartition;
    fcfg.seed = seed;
    let fj = execute(&w.compressed, &fcfg, None);

    assert!(
        (dec.result.lnl - fj.result.lnl).abs() < 1e-6,
        "{} vs {}",
        dec.result.lnl,
        fj.result.lnl
    );
    assert_eq!(rf_distance(&dec.state.tree, &fj.state.tree), 0);
}

#[test]
fn communication_profile_matches_the_paper_story() {
    use exa_comm::CommCategory;
    let w = small_workload(31);
    let seed = 4;

    let mut dcfg = RunConfig::new(3);
    dcfg.search = fast_search();
    dcfg.seed = seed;
    let dec = dcfg.run(&w.compressed).unwrap();

    let mut fcfg = ForkJoinConfig::new(3);
    fcfg.search = fast_search();
    fcfg.seed = seed;
    let fj = execute(&w.compressed, &fcfg, None);

    // (i) The de-centralized scheme never broadcasts traversal descriptors.
    assert_eq!(
        dec.comm_stats.get(CommCategory::TraversalDescriptor).bytes,
        0
    );
    assert!(fj.comm_stats.get(CommCategory::TraversalDescriptor).bytes > 0);

    // (ii) Descriptor traffic dominates fork-join bytes (Table I: 30–97%).
    let share = fj.comm_stats.byte_share(CommCategory::TraversalDescriptor);
    assert!(share > 30.0, "descriptor share {share}%");

    // (iii) Fewer parallel regions and far fewer bytes overall for ExaML.
    assert!(dec.comm_stats.total_regions() < fj.comm_stats.total_regions());
    assert!(dec.comm_stats.total_bytes() < fj.comm_stats.total_bytes() / 2);

    // (iv) Model-parameter broadcasts exist only under fork-join.
    assert!(fj.comm_stats.get(CommCategory::ModelParams).bytes > 0);
    assert_eq!(dec.comm_stats.get(CommCategory::ModelParams).bytes, 0);
}
