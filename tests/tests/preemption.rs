//! Cooperative checkpoint-preemption at the `RunConfig` level, for both
//! parallelization schemes.
//!
//! A [`PreemptSignal`] raised against a run must stop it at the next
//! iteration boundary with [`RunError::Preempted`], leaving a committed
//! final checkpoint generation behind. Resuming from that generation —
//! through any number of further preempt/resume cycles — must converge to
//! a final likelihood, topology and model state **bitwise** identical to
//! an uninterrupted run of the same configuration: preemption is a pause,
//! not a perturbation. This is the contract `exa-serve` builds its
//! fair-share preemption on.

use exa_search::{PreemptSignal, SearchConfig};
use exa_simgen::workloads;
use examl_core::{checkpoint, RunConfig, RunError, RunOutcome, Scheme};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("examl_preempt_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn base_cfg(scheme: Scheme) -> RunConfig {
    RunConfig::new(2)
        .scheme(scheme)
        .seed(23)
        .search(SearchConfig {
            max_iterations: 4,
            epsilon: 0.001,
            ..SearchConfig::fast()
        })
}

/// Bitwise state fingerprint: likelihood bits, topology, and every model
/// parameter's bits.
fn fingerprint(out: &RunOutcome) -> (u64, String, Vec<u64>, Vec<u64>) {
    (
        out.result.lnl.to_bits(),
        out.tree_newick.clone(),
        out.state.alphas.iter().map(|a| a.to_bits()).collect(),
        out.state
            .gtr_rates
            .iter()
            .flat_map(|r| r.iter().map(|v| v.to_bits()))
            .collect(),
    )
}

/// Preempt the run `cycles` times (each resume re-raising the signal so it
/// stops at its very next boundary), then resume once more to completion
/// and compare bitwise against the uninterrupted reference.
fn preempt_resume_cycles(tag: &str, scheme: Scheme, cycles: usize) {
    let w = workloads::partitioned(8, 2, 100, 41);

    let ref_dir = tmp_dir(&format!("{tag}_ref"));
    let reference = base_cfg(scheme)
        .checkpoint(&ref_dir, 1)
        .run(&w.compressed)
        .unwrap_or_else(|e| panic!("[{tag}] reference run failed: {e}"));
    std::fs::remove_dir_all(&ref_dir).ok();

    let dir = tmp_dir(tag);
    for k in 0..cycles {
        // Raising the signal before the run starts makes the preemption
        // point deterministic: the first boundary the driver reaches.
        let signal = PreemptSignal::new();
        signal.request();
        let mut cfg = base_cfg(scheme).checkpoint(&dir, 1).preempt(signal);
        if k > 0 {
            cfg = cfg.resume(&dir);
        }
        match cfg.run(&w.compressed) {
            Err(RunError::Preempted {
                iteration,
                checkpoints,
            }) => {
                assert!(
                    checkpoints >= 1,
                    "[{tag}] cycle {k}: preemption must commit a final generation"
                );
                assert!(
                    iteration <= 4,
                    "[{tag}] cycle {k}: preempted past max_iterations at {iteration}"
                );
            }
            Ok(_) => panic!("[{tag}] cycle {k}: run ignored the preempt signal"),
            Err(other) => panic!("[{tag}] cycle {k}: expected Preempted, got {other}"),
        }
        assert!(
            !checkpoint::list_generations(&dir).unwrap().is_empty(),
            "[{tag}] cycle {k}: no committed generations after preemption"
        );
    }

    // A signal left un-raised must not disturb the resumed run.
    let resumed = base_cfg(scheme)
        .checkpoint(&dir, 1)
        .preempt(PreemptSignal::new())
        .resume(&dir)
        .run(&w.compressed)
        .unwrap_or_else(|e| panic!("[{tag}] final resume failed: {e}"));
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&reference),
        "[{tag}] preempt/resume must replay the uninterrupted run bitwise"
    );
}

#[test]
fn decentralized_preempt_resume_is_bitwise_identical() {
    preempt_resume_cycles("decentralized", Scheme::Decentralized, 2);
}

#[test]
fn forkjoin_preempt_resume_is_bitwise_identical() {
    preempt_resume_cycles("forkjoin", Scheme::ForkJoin, 2);
}

#[test]
fn unraised_signal_changes_nothing() {
    // A run with a preempt handle that is never raised must be bitwise
    // identical to one with no handle at all.
    let w = workloads::partitioned(8, 2, 100, 41);
    let plain = base_cfg(Scheme::Decentralized).run(&w.compressed).unwrap();
    let armed = base_cfg(Scheme::Decentralized)
        .preempt(PreemptSignal::new())
        .run(&w.compressed)
        .unwrap();
    assert_eq!(fingerprint(&plain), fingerprint(&armed));
}
