//! Property tests over the checkpoint codec: arbitrary checkpoints survive
//! save→load bit-exactly, and *no* torn or bit-flipped file ever panics or
//! silently yields a payload that differs from what was written —
//! corruption is either healed by generation fallback or reported as a
//! structured [`CheckpointError`].

use exa_phylo::tree::Tree;
use exa_search::evaluator::{GlobalState, SearchSnapshot};
use examl_core::checkpoint::{
    self, Checkpoint, CheckpointError, CheckpointHeader, CheckpointPayload, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
};
use proptest::prelude::*;

/// A checkpoint directory unique to this test case.
fn tmp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("examl_prop_{tag}_{}_{case}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

prop_compose! {
    /// A structurally valid checkpoint: the tree, taxon count and partition
    /// count are kept mutually consistent (decode validates tree invariants
    /// and header/payload agreement), while every scalar field — including
    /// raw `f64` bit patterns — ranges freely.
    fn arb_checkpoint()(
        n_taxa in 4usize..=12,
        n_partitions in 1usize..=3,
        tree_seed in any::<u64>(),
        seed in any::<u64>(),
        iteration in 0usize..10_000,
        lnl_bits in any::<u64>(),
        spr_moves in 0usize..1_000,
        alphas in prop::collection::vec(0.02f64..50.0, 0..4),
        psr_bits in prop::collection::vec(any::<u64>(), 0..32),
        shape in prop::sample::select(vec![
            ("decentralized", "scalar"),
            ("decentralized", "simd"),
            ("forkjoin", "scalar"),
            ("forkjoin", "simd"),
        ]),
    ) -> Checkpoint {
        let snapshot = SearchSnapshot {
            iteration,
            lnl_bits,
            spr_moves,
            state: GlobalState {
                tree: Tree::random(n_taxa, 1, tree_seed),
                alphas,
                gtr_rates: vec![[1.0, 2.0, 0.5, 1.1, 3.0]; n_partitions],
            },
            psr_rates: vec![psr_bits; n_partitions],
        };
        Checkpoint::build(
            CheckpointHeader {
                format_version: 0, // sealed by build()
                scheme: shape.0.to_string(),
                kernel: shape.1.to_string(),
                site_repeats: "on".into(),
                rank_count: 2,
                rate_model: "Gamma".into(),
                branch_mode: "Joint".into(),
                seed,
                n_taxa,
                n_partitions,
                iteration: 0,
                payload_len: 0,
                payload_fingerprint: 0,
                reduce_mode: Some("fast".into()),
                gradient: Some("on".into()),
            },
            CheckpointPayload {
                snapshot,
                bootstrap: None,
            },
        )
    }
}

/// Re-encode a checkpoint with a hand-patched header (`encode()` would
/// re-seal the derived fields, so the bytes are spliced directly).
fn splice(ckpt: &Checkpoint, header: &CheckpointHeader) -> Vec<u8> {
    let sealed = checkpoint::encode(ckpt);
    let payload_start = sealed.len() - ckpt.header.payload_len as usize;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(CHECKPOINT_MAGIC.as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(&serde_json::to_vec(header).unwrap());
    bytes.push(b'\n');
    bytes.extend_from_slice(&sealed[payload_start..]);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: any checkpoint survives save→load with identical header
    /// and byte-identical encoding — `f64` values (model parameters, `lnl`
    /// bits, branch lengths inside the tree) round-trip through JSON
    /// exactly.
    #[test]
    fn roundtrip_is_bit_exact(ckpt in arb_checkpoint(), case in any::<u64>()) {
        let dir = tmp_dir("rt", case);
        let path = dir.join("one.ckpt");
        checkpoint::save(&path, &ckpt).unwrap();
        let loaded = checkpoint::load(&path).unwrap();
        prop_assert_eq!(&loaded.header, &ckpt.header);
        prop_assert_eq!(checkpoint::encode(&loaded), checkpoint::encode(&ckpt));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Property: truncation at *any* offset yields a structured error —
    /// never a panic, never an `Ok` (a strict prefix always loses payload
    /// bytes, which `payload_len` then catches at the latest).
    #[test]
    fn any_truncation_is_a_structured_error(
        ckpt in arb_checkpoint(),
        cut in 0.0f64..1.0,
        case in any::<u64>(),
    ) {
        let dir = tmp_dir("trunc", case);
        let path = dir.join("one.ckpt");
        let bytes = checkpoint::encode(&ckpt);
        let cut = ((bytes.len() as f64 * cut) as usize).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = checkpoint::load(&path).unwrap_err();
        prop_assert!(
            matches!(err, CheckpointError::Corrupt { .. } | CheckpointError::Io(_)),
            "truncation at {} must be Corrupt/Io, got {}", cut, err
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Property: flipping any bit anywhere in the file never panics, and
    /// whenever `load` still returns `Ok` the *payload* is untouched (the
    /// fingerprint covers the payload; a flip inside the unfingerprinted
    /// header may legitimately survive, but only ever changes the header).
    #[test]
    fn any_bit_flip_never_panics_or_corrupts_the_payload(
        ckpt in arb_checkpoint(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
        case in any::<u64>(),
    ) {
        let dir = tmp_dir("flip", case);
        let path = dir.join("one.ckpt");
        let clean = checkpoint::encode(&ckpt);
        let mut bytes = clean.clone();
        let pos = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match checkpoint::load(&path) {
            Err(CheckpointError::Corrupt { .. })
            | Err(CheckpointError::Io(_))
            | Err(CheckpointError::Mismatch { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {}", other),
            Ok(loaded) => {
                // The flip landed in the header; the payload must be
                // byte-identical to what was originally written.
                let payload_start = clean.len() - ckpt.header.payload_len as usize;
                prop_assert_eq!(
                    serde_json::to_vec(&loaded.payload).unwrap(),
                    clean[payload_start..].to_vec(),
                    "an accepted bit-flipped file must preserve the payload"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Property: any foreign format version is rejected with a mismatch
    /// naming `format_version`, before the payload is even parsed.
    #[test]
    fn any_foreign_format_version_names_the_field(
        ckpt in arb_checkpoint(),
        version in 0u32..1_000_000,
        case in any::<u64>(),
    ) {
        let version = if version == CHECKPOINT_VERSION { version + 1 } else { version };
        let dir = tmp_dir("ver", case);
        let path = dir.join("one.ckpt");
        let mut header = ckpt.header.clone();
        header.format_version = version;
        std::fs::write(&path, splice(&ckpt, &header)).unwrap();
        match checkpoint::load(&path).unwrap_err() {
            CheckpointError::Mismatch { field, expected, found } => {
                prop_assert_eq!(field, "format_version");
                prop_assert_eq!(expected, CHECKPOINT_VERSION.to_string());
                prop_assert_eq!(found, version.to_string());
            }
            other => prop_assert!(false, "wrong error: {}", other),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Property: any damaged fingerprint is rejected naming the field.
    #[test]
    fn any_wrong_fingerprint_names_the_field(
        ckpt in arb_checkpoint(),
        mask in 1u64..=u64::MAX,
        case in any::<u64>(),
    ) {
        let dir = tmp_dir("fp", case);
        let path = dir.join("one.ckpt");
        let mut header = ckpt.header.clone();
        header.payload_fingerprint ^= mask;
        std::fs::write(&path, splice(&ckpt, &header)).unwrap();
        match checkpoint::load(&path).unwrap_err() {
            CheckpointError::Corrupt { field, .. } => {
                prop_assert_eq!(field, "payload_fingerprint");
            }
            other => prop_assert!(false, "wrong error: {}", other),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Property: with one intact generation committed, *any* corruption of
    /// a newer generation (truncation or bit flip) still lets
    /// `load_latest` recover a committed checkpoint bit-exactly.
    #[test]
    fn generation_fallback_survives_any_corrupt_newest(
        ckpt in arb_checkpoint(),
        pos in 0.0f64..1.0,
        flip in any::<bool>(),
        bit in 0u8..8,
        case in any::<u64>(),
    ) {
        let dir = tmp_dir("fall", case);
        let (_, intact_path) = checkpoint::save_generation(&dir, &ckpt).unwrap();
        let intact = checkpoint::load(&intact_path).unwrap();

        let mut newer = ckpt.clone();
        newer.payload.snapshot.iteration += 1;
        newer.header.iteration += 1; // re-sealed by save's encode()
        let (_, newer_path) = checkpoint::save_generation(&dir, &newer).unwrap();
        let mut bytes = std::fs::read(&newer_path).unwrap();
        let pos = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        if flip {
            bytes[pos] ^= 1 << bit;
        } else {
            bytes.truncate(pos);
        }
        std::fs::write(&newer_path, &bytes).unwrap();

        let recovered = checkpoint::load_latest(&dir).unwrap();
        // Either the damaged newest still decodes (header-only flip) or we
        // fell back; in both cases the result is an intact checkpoint whose
        // payload matches one of the two committed generations bit-exactly.
        let got = serde_json::to_vec(&recovered.payload).unwrap();
        let gen0 = serde_json::to_vec(&intact.payload).unwrap();
        let gen1 = serde_json::to_vec(&newer.payload).unwrap();
        prop_assert!(
            got == gen0 || got == gen1,
            "recovered payload must match a committed generation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
