//! Deterministic kill-and-restart chaos harness.
//!
//! For every configuration the harness runs the same seeded search three
//! ways:
//!
//! 1. **reference** — uninterrupted, checkpointing on;
//! 2. **killed** — identical, plus `--inject-kill` at a checkpoint-aligned
//!    kill point, which must abort with [`RunError::Killed`];
//! 3. **resumed** — a fresh process-equivalent run resuming from the killed
//!    run's checkpoint directory.
//!
//! The resumed run must reach a final likelihood, topology and model state
//! that are **bitwise** identical to the reference — restart is a replay,
//! not an approximation. The sweep covers kill points, both parallelization
//! schemes, both kernel backends and site-repeats on/off.

use exa_comm::ReduceChoice;
use exa_phylo::engine::{KernelChoice, RepeatsChoice};
use exa_phylo::model::rates::RateModelKind;
use exa_search::{KillSpec, SearchConfig};
use exa_simgen::workloads;
use examl_core::{RunConfig, RunError, RunOutcome, Scheme};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("examl_chaos_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn base_cfg(scheme: Scheme, kernel: KernelChoice, repeats: RepeatsChoice) -> RunConfig {
    RunConfig::new(2)
        .scheme(scheme)
        .kernel(kernel)
        .site_repeats(repeats)
        .seed(23)
        .search(SearchConfig {
            max_iterations: 4,
            epsilon: 0.001,
            ..SearchConfig::fast()
        })
}

/// Bitwise state fingerprint: likelihood bits, topology, and every model
/// parameter's bits.
fn fingerprint(out: &RunOutcome) -> (u64, String, Vec<u64>, Vec<u64>) {
    (
        out.result.lnl.to_bits(),
        out.tree_newick.clone(),
        out.state.alphas.iter().map(|a| a.to_bits()).collect(),
        out.state
            .gtr_rates
            .iter()
            .flat_map(|r| r.iter().map(|v| v.to_bits()))
            .collect(),
    )
}

/// Run reference / killed / resumed for one configuration and assert the
/// resumed run replays the reference bitwise.
fn kill_and_restart(
    tag: &str,
    make: impl Fn() -> RunConfig,
    aln: &exa_bio::patterns::CompressedAlignment,
    kill: KillSpec,
) {
    let ref_dir = tmp_dir(&format!("{tag}_ref"));
    let reference = make()
        .checkpoint(&ref_dir, 1)
        .run(aln)
        .unwrap_or_else(|e| panic!("[{tag}] reference run failed: {e}"));
    std::fs::remove_dir_all(&ref_dir).ok();

    let dir = tmp_dir(tag);
    let err = make()
        .checkpoint(&dir, 1)
        .inject_kill(kill)
        .run(aln)
        .expect_err("the injected kill must abort the run");
    match err {
        RunError::Killed {
            after_checkpoints, ..
        } => assert!(
            after_checkpoints >= kill.after_checkpoints,
            "[{tag}] kill fired before its checkpoint budget"
        ),
        other => panic!("[{tag}] expected Killed, got {other}"),
    }
    assert!(
        !examl_core::checkpoint::list_generations(&dir)
            .unwrap()
            .is_empty(),
        "[{tag}] the killed run must leave committed generations behind"
    );

    let resumed = make()
        .checkpoint(&dir, 1)
        .resume(&dir)
        .run(aln)
        .unwrap_or_else(|e| panic!("[{tag}] resume failed: {e}"));
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&reference),
        "[{tag}] resumed run must be bitwise identical to the uninterrupted reference"
    );
}

#[test]
fn kill_restart_sweep_schemes_kernels_repeats() {
    let w = workloads::partitioned(8, 2, 100, 41);
    for scheme in [Scheme::Decentralized, Scheme::ForkJoin] {
        for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
            for repeats in [RepeatsChoice::On, RepeatsChoice::Off] {
                let tag = format!("{scheme:?}_{kernel:?}_{repeats:?}").to_lowercase();
                kill_and_restart(
                    &tag,
                    || base_cfg(scheme, kernel, repeats),
                    &w.compressed,
                    KillSpec {
                        after_checkpoints: 2,
                        rank: None,
                    },
                );
            }
        }
    }
}

#[test]
fn kill_restart_sweep_kill_points() {
    let w = workloads::partitioned(8, 2, 100, 41);
    for scheme in [Scheme::Decentralized, Scheme::ForkJoin] {
        for after in [1, 2, 3] {
            let tag = format!("{scheme:?}_kp{after}").to_lowercase();
            kill_and_restart(
                &tag,
                || base_cfg(scheme, KernelChoice::Scalar, RepeatsChoice::On),
                &w.compressed,
                KillSpec {
                    after_checkpoints: after,
                    rank: None,
                },
            );
        }
    }
}

#[test]
fn kill_single_rank_then_restart_decentralized() {
    // A single-rank kill exercises the failure-detection path (the victim
    // dies, the survivors abort the run as planned) before the restart.
    let w = workloads::partitioned(8, 2, 100, 41);
    kill_and_restart(
        "victim1",
        || {
            base_cfg(
                Scheme::Decentralized,
                KernelChoice::Scalar,
                RepeatsChoice::On,
            )
        },
        &w.compressed,
        KillSpec {
            after_checkpoints: 2,
            rank: Some(1),
        },
    );
}

#[test]
fn kill_restart_replays_psr_rates_bitwise() {
    // PSR per-pattern rates are data-local state; the checkpoint gathers
    // them and the restart redistributes them, and the replay must still
    // be bitwise.
    let w = workloads::partitioned(8, 2, 100, 41);
    for scheme in [Scheme::Decentralized, Scheme::ForkJoin] {
        let tag = format!("psr_{scheme:?}").to_lowercase();
        kill_and_restart(
            &tag,
            || {
                base_cfg(scheme, KernelChoice::Scalar, RepeatsChoice::Off)
                    .rate_model(RateModelKind::Psr)
            },
            &w.compressed,
            KillSpec {
                after_checkpoints: 2,
                rank: None,
            },
        );
    }
}

#[test]
fn checkpoint_resumes_across_schemes() {
    // The replicated state is scheme-agnostic: a checkpoint committed by a
    // de-centralized run resumes under fork-join (and vice versa) with a
    // bitwise-identical replay — the header's scheme field is elastic.
    let w = workloads::partitioned(8, 2, 100, 41);
    let reference = base_cfg(
        Scheme::Decentralized,
        KernelChoice::Scalar,
        RepeatsChoice::On,
    )
    .run(&w.compressed)
    .unwrap();

    for (from, to) in [
        (Scheme::Decentralized, Scheme::ForkJoin),
        (Scheme::ForkJoin, Scheme::Decentralized),
    ] {
        let dir = tmp_dir(&format!("xscheme_{from:?}_{to:?}").to_lowercase());
        let err = base_cfg(from, KernelChoice::Scalar, RepeatsChoice::On)
            .checkpoint(&dir, 1)
            .inject_kill(KillSpec {
                after_checkpoints: 2,
                rank: None,
            })
            .run(&w.compressed)
            .expect_err("kill must fire");
        assert!(matches!(err, RunError::Killed { .. }));

        let resumed = base_cfg(to, KernelChoice::Scalar, RepeatsChoice::On)
            .resume(&dir)
            .run(&w.compressed)
            .unwrap_or_else(|e| panic!("{from:?}->{to:?} resume failed: {e}"));
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&reference),
            "{from:?}->{to:?} cross-scheme resume must replay bitwise"
        );
    }
}

#[test]
fn resume_is_elastic_across_kernel_and_rank_count() {
    // Kernel backend and site-repeats are unconditionally elastic header
    // fields; the rank count is elastic only when both the checkpoint and
    // the resuming run use reproducible reductions (a fast-mode lnL
    // trajectory is a function of the rank count, so a fast elastic resume
    // would be a silent fork). Resuming under a different combination
    // redistributes and completes (bitwise identity is only promised for
    // like-for-like restarts — a different backend may round differently).
    let w = workloads::partitioned(8, 2, 100, 41);
    let dir = tmp_dir("elastic");
    let err = base_cfg(Scheme::Decentralized, KernelChoice::Simd, RepeatsChoice::On)
        .reduce(ReduceChoice::Reproducible)
        .checkpoint(&dir, 1)
        .inject_kill(KillSpec {
            after_checkpoints: 2,
            rank: None,
        })
        .run(&w.compressed)
        .expect_err("kill must fire");
    assert!(matches!(err, RunError::Killed { .. }));

    let resumed = RunConfig::new(3)
        .scheme(Scheme::Decentralized)
        .kernel(KernelChoice::Scalar)
        .site_repeats(RepeatsChoice::Off)
        .reduce(ReduceChoice::Reproducible)
        .seed(23)
        .search(SearchConfig {
            max_iterations: 4,
            epsilon: 0.001,
            ..SearchConfig::fast()
        })
        .resume(&dir)
        .run(&w.compressed)
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(resumed.result.lnl.is_finite());
}

#[test]
fn checkpoint_resumes_across_gradient_modes() {
    // Gradient BLO is bitwise result-neutral — the full-tree sweep
    // computes the same Newton seeds the per-edge collectives would — so
    // the header's gradient field is elastic: a checkpoint committed under
    // `--gradient on` resumes under `--gradient off` (and vice versa) and
    // must replay the uninterrupted reference bit for bit.
    use exa_phylo::GradientChoice;
    let w = workloads::partitioned(8, 2, 100, 41);
    let reference = base_cfg(
        Scheme::Decentralized,
        KernelChoice::Scalar,
        RepeatsChoice::On,
    )
    .gradient(GradientChoice::On)
    .run(&w.compressed)
    .unwrap();

    for (from, to) in [
        (GradientChoice::On, GradientChoice::Off),
        (GradientChoice::Off, GradientChoice::On),
    ] {
        let dir = tmp_dir(&format!("xgradient_{from:?}_{to:?}").to_lowercase());
        let err = base_cfg(
            Scheme::Decentralized,
            KernelChoice::Scalar,
            RepeatsChoice::On,
        )
        .gradient(from)
        .checkpoint(&dir, 1)
        .inject_kill(KillSpec {
            after_checkpoints: 2,
            rank: None,
        })
        .run(&w.compressed)
        .expect_err("kill must fire");
        assert!(matches!(err, RunError::Killed { .. }));

        let resumed = base_cfg(
            Scheme::Decentralized,
            KernelChoice::Scalar,
            RepeatsChoice::On,
        )
        .gradient(to)
        .resume(&dir)
        .run(&w.compressed)
        .unwrap_or_else(|e| panic!("{from:?}->{to:?} resume failed: {e}"));
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&reference),
            "{from:?}->{to:?} cross-gradient resume must replay bitwise"
        );
    }
}
