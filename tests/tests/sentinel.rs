//! Run-health sentinel: injected single-bit replica divergence is caught at
//! the next fingerprint sync with the right rank and state component, and
//! clean runs never trip at any cadence.
//!
//! The de-centralized scheme keeps replicas in lock-step because they branch
//! on identical allreduced values — a silently corrupted replica keeps
//! *contributing* to those reductions, so without the sentinel the run
//! completes normally with a wrong answer. These tests exercise the exact
//! scenario the sentinel exists for.

use exa_obs::Component;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{DivergenceFault, FaultComponent, RunConfig, RunError};
use proptest::prelude::*;

fn workload(seed: u64) -> workloads::Workload {
    workloads::partitioned(8, 2, 100, seed)
}

/// Unwrap the structured sentinel diagnostic out of a run result.
fn divergence(res: Result<examl_core::RunOutcome, RunError>) -> exa_obs::ReplicaDivergence {
    match res {
        Err(RunError::Divergence(d)) => d,
        Ok(_) => panic!("a corrupted replica must trip the sentinel"),
        Err(other) => panic!("expected a divergence, got {other}"),
    }
}

fn cfg(n_ranks: usize, cadence: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n_ranks);
    cfg.search = SearchConfig {
        max_iterations: 3,
        epsilon: 0.01,
        ..SearchConfig::fast()
    };
    cfg.seed = 21;
    cfg.verify_replicas = cadence;
    cfg
}

#[test]
fn injected_alpha_flip_is_detected_at_next_sync() {
    let w = workload(5);
    // Injection fires on the tick where rank 1's collective count reaches
    // 8; with cadence 8 that tick is itself a sync, so detection happens in
    // the same call — no window for a later model-optimization round to
    // overwrite (heal) the corrupted α.
    let mut c = cfg(4, 8);
    c.divergence_fault = Some(DivergenceFault {
        rank: 1,
        after_collectives: 8,
        component: FaultComponent::Alpha,
    });
    let err = divergence(c.run(&w.compressed));
    assert_eq!(err.minority_ranks, vec![1], "{err}");
    assert_eq!(err.components, vec![Component::ModelParams], "{err}");
    assert_eq!(err.collective_index, 8, "{err}");
    // Sync #1 is the pre-search sentinel sync at collective #0; the
    // cadence sync that catches the flip is #2.
    assert_eq!(err.sync_index, 2, "{err}");
}

#[test]
fn injected_branch_length_flip_is_detected_with_component() {
    let w = workload(7);
    let mut c = cfg(3, 4);
    c.divergence_fault = Some(DivergenceFault {
        rank: 2,
        after_collectives: 12,
        component: FaultComponent::BranchLength,
    });
    let err = divergence(c.run(&w.compressed));
    assert_eq!(err.minority_ranks, vec![2], "{err}");
    assert_eq!(err.components, vec![Component::BranchLengths], "{err}");
    assert_eq!(err.sync_index, 4, "{err}");
}

#[test]
fn clean_runs_never_trip_and_match_the_unverified_run() {
    let w = workload(11);
    let baseline = cfg(3, 0).run(&w.compressed).expect("clean run");
    assert_eq!(baseline.sentinel_syncs, 0);
    for cadence in [1, 2, 3, 5, 7, 64] {
        let out = cfg(3, cadence)
            .run(&w.compressed)
            .unwrap_or_else(|d| panic!("clean run tripped at cadence {cadence}: {d}"));
        assert!(out.sentinel_syncs > 0, "cadence {cadence} never synced");
        // The sentinel is pure observation: the result is bit-identical to
        // the unverified run.
        assert_eq!(
            out.result.lnl.to_bits(),
            baseline.result.lnl.to_bits(),
            "cadence {cadence} changed the search trajectory"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: with no injected fault, no cadence ever produces a false
    /// positive (replicas really are bit-identical, and the sentinel's own
    /// allgather keeps all ranks aligned).
    #[test]
    fn any_cadence_is_false_positive_free(cadence in 1u64..=32) {
        let w = workloads::partitioned(6, 1, 60, 3);
        let mut c = cfg(2, cadence);
        c.search.max_iterations = 2;
        let out = c.run(&w.compressed);
        prop_assert!(out.is_ok(), "false positive at cadence {}", cadence);
        prop_assert!(out.unwrap().sentinel_syncs > 0);
    }
}
