//! The uniform-backend contract end-to-end: every rank of a run must
//! compute with the same likelihood-kernel backend, because fault recovery
//! redistributes partitions across ranks and replicas must stay bitwise
//! interchangeable. A mixed-backend world (forced through the
//! `kernel_override` test hook) is a replica-divergence event the sentinel
//! must attribute to the kernel-backend component — while uniform runs are
//! bitwise identical under either backend.

use exa_obs::Component;
use exa_phylo::{KernelChoice, KernelKind};
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{RunConfig, RunError};

fn cfg(n_ranks: usize, cadence: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n_ranks);
    cfg.search = SearchConfig {
        max_iterations: 3,
        epsilon: 0.01,
        ..SearchConfig::fast()
    };
    cfg.seed = 33;
    cfg.verify_replicas = cadence;
    cfg
}

#[test]
fn mixed_backend_world_is_flagged_as_replica_divergence() {
    let w = workloads::partitioned(8, 2, 100, 41);
    let mut c = cfg(3, 4);
    // Rank 1 silently runs the SIMD backend while ranks 0 and 2 run scalar.
    c.kernel_override = Some(vec![
        KernelKind::Scalar,
        KernelKind::Simd,
        KernelKind::Scalar,
    ]);
    let err = match c.run(&w.compressed) {
        Err(RunError::Divergence(d)) => d,
        Ok(_) => panic!("a mixed-backend world must trip the sentinel"),
        Err(other) => panic!("expected a divergence, got {other}"),
    };
    assert_eq!(err.minority_ranks, vec![1], "{err}");
    // Both backends produce bitwise-identical numerics, so the backend
    // identity is the ONLY component that diverges — caught at the
    // pre-search sentinel sync (collective #0), before any numeric drift
    // or collective-sequence desync could exist.
    assert_eq!(err.components, vec![Component::KernelBackend], "{err}");
    assert_eq!(err.sync_index, 1, "{err}");
    assert_eq!(err.collective_index, 0, "{err}");
}

#[test]
fn uniform_backend_runs_are_bitwise_identical_across_backends() {
    let w = workloads::partitioned(8, 2, 100, 43);
    let scalar = {
        let mut c = cfg(3, 8);
        c.kernel = KernelChoice::Scalar;
        c.run(&w.compressed).expect("uniform scalar run is clean")
    };
    let simd = {
        let mut c = cfg(3, 8);
        c.kernel = KernelChoice::Simd;
        c.run(&w.compressed).expect("uniform SIMD run is clean")
    };
    assert_eq!(scalar.kernel, KernelKind::Scalar);
    assert_eq!(simd.kernel, KernelKind::Simd);
    assert_eq!(
        scalar.result.lnl.to_bits(),
        simd.result.lnl.to_bits(),
        "scalar {} vs simd {}",
        scalar.result.lnl,
        simd.result.lnl
    );
    assert_eq!(scalar.tree_newick, simd.tree_newick);
    assert_eq!(scalar.sentinel_syncs, simd.sentinel_syncs);
}

#[test]
fn auto_negotiation_agrees_on_one_backend_for_every_rank() {
    let w = workloads::partitioned(6, 2, 80, 47);
    let mut c = cfg(4, 8);
    c.kernel = KernelChoice::Auto;
    let out = c.run(&w.compressed).expect("negotiated run is clean");
    // All four ranks adopted the same negotiated winner (a mixed world
    // would have tripped the sentinel above); the winner equals the local
    // resolution because the in-process world shares one machine.
    assert_eq!(out.kernel, KernelChoice::Auto.resolve_local());
    assert_eq!(out.survivors, vec![0, 1, 2, 3]);
}
