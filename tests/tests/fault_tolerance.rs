//! §V fault tolerance: ranks die mid-search, survivors redistribute the
//! dead rank's data and finish the inference from the replicated state.

use exa_phylo::tree::bipartitions::rf_distance;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::fault::FaultPlan;
use examl_core::RunConfig;

fn workload(seed: u64) -> workloads::Workload {
    workloads::partitioned(8, 2, 100, seed)
}

fn cfg(n_ranks: usize, plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::new(n_ranks);
    cfg.search = SearchConfig {
        max_iterations: 3,
        epsilon: 0.01,
        ..SearchConfig::fast()
    };
    cfg.seed = 21;
    cfg.fault_plan = plan;
    cfg
}

#[test]
fn single_rank_failure_is_survived() {
    let w = workload(5);
    let baseline = cfg(4, FaultPlan::none()).run(&w.compressed).unwrap();
    let faulted = cfg(4, FaultPlan::kill(2, 1)).run(&w.compressed).unwrap();

    // The run completes and reaches (essentially) the same optimum: the
    // survivors redo the interrupted iteration on redistributed data, and
    // since the search state is fully replicated the trajectory is
    // identical up to floating-point summation order across rank counts.
    assert!(faulted.result.lnl.is_finite());
    assert!(
        (faulted.result.lnl - baseline.result.lnl).abs() < 1.0,
        "faulted {} vs baseline {}",
        faulted.result.lnl,
        baseline.result.lnl
    );
    assert_eq!(
        rf_distance(&faulted.state.tree, &baseline.state.tree),
        0,
        "same final topology with and without failure"
    );
    assert_eq!(faulted.survivors, vec![0, 1, 3]);
}

#[test]
fn failure_of_rank_zero_is_survived() {
    // There is no master: rank 0 is as expendable as any other (the paper's
    // §V contrast with fork-join, where a master death is catastrophic).
    let w = workload(9);
    let out = cfg(3, FaultPlan::kill(0, 1)).run(&w.compressed).unwrap();
    assert!(out.result.lnl.is_finite());
    assert_eq!(out.survivors, vec![1, 2]);
}

#[test]
fn two_failures_in_sequence_are_survived() {
    let w = workload(13);
    let plan = FaultPlan::kill(1, 1).and_kill(3, 2);
    let baseline = cfg(4, FaultPlan::none()).run(&w.compressed).unwrap();
    let out = cfg(4, plan).run(&w.compressed).unwrap();
    assert!(out.result.lnl.is_finite());
    assert_eq!(out.survivors, vec![0, 2]);
    assert!(
        (out.result.lnl - baseline.result.lnl).abs() < 1.0,
        "{} vs {}",
        out.result.lnl,
        baseline.result.lnl
    );
}

#[test]
fn simultaneous_failures_are_survived() {
    let w = workload(17);
    let plan = FaultPlan::kill(1, 1).and_kill(2, 1);
    let out = cfg(4, plan).run(&w.compressed).unwrap();
    assert!(out.result.lnl.is_finite());
    assert_eq!(out.survivors, vec![0, 3]);
}

#[test]
fn failure_under_mps_distribution() {
    let w = workloads::partitioned(8, 6, 60, 19);
    let mut c = cfg(3, FaultPlan::kill(1, 1));
    c.strategy = exa_sched::Strategy::MonolithicLpt;
    let out = c.run(&w.compressed).unwrap();
    assert!(out.result.lnl.is_finite());
    assert_eq!(out.survivors, vec![0, 2]);
}

#[test]
fn failure_under_psr_model() {
    // PSR per-site rates are data-local; recovery resets them on the new
    // owners and the next optimization round re-fits them.
    let w = workload(23);
    let mut c = cfg(3, FaultPlan::kill(2, 1));
    c.rate_model = exa_phylo::model::rates::RateModelKind::Psr;
    let out = c.run(&w.compressed).unwrap();
    assert!(out.result.lnl.is_finite());
}
