//! The subtree-repeat compression contract end-to-end: compression is a
//! pure work-saving transform, so a run with `--site-repeats on` must be
//! bitwise identical to the same run with `off` — same final lnL, same
//! tree, no sentinel trip — while doing strictly fewer `newview` column
//! computations. And because fault recovery redistributes partitions, the
//! setting must be uniform across ranks: a mixed world (forced through the
//! `site_repeats_override` test hook) is a replica-divergence event caught
//! at the first fingerprint sync, before any numeric question arises.

use exa_obs::Component;
use exa_phylo::{RepeatsChoice, SiteRepeats};
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{RunConfig, RunError};

fn cfg(n_ranks: usize, cadence: u64) -> RunConfig {
    let mut cfg = RunConfig::new(n_ranks);
    cfg.search = SearchConfig {
        max_iterations: 3,
        epsilon: 0.01,
        ..SearchConfig::fast()
    };
    cfg.seed = 51;
    cfg.verify_replicas = cadence;
    cfg
}

#[test]
fn verified_runs_are_bitwise_identical_with_repeats_on_and_off() {
    let w = workloads::partitioned(8, 2, 100, 53);
    let on = {
        let mut c = cfg(3, 4);
        c.site_repeats = RepeatsChoice::On;
        c.run(&w.compressed).expect("repeats-on run is clean")
    };
    let off = {
        let mut c = cfg(3, 4);
        c.site_repeats = RepeatsChoice::Off;
        c.run(&w.compressed).expect("repeats-off run is clean")
    };
    assert_eq!(on.site_repeats, SiteRepeats::On);
    assert_eq!(off.site_repeats, SiteRepeats::Off);
    assert_eq!(
        on.result.lnl.to_bits(),
        off.result.lnl.to_bits(),
        "on {} vs off {}",
        on.result.lnl,
        off.result.lnl
    );
    assert_eq!(on.tree_newick, off.tree_newick);
    assert_eq!(on.sentinel_syncs, off.sentinel_syncs);
    // Compression replaces duplicate-column computations with copies; the
    // work counters must show the savings (real alignments always repeat).
    assert!(
        on.work.clv_updates < off.work.clv_updates,
        "on {} vs off {}",
        on.work.clv_updates,
        off.work.clv_updates
    );
    assert!(on.work.clv_saved > 0);
    assert_eq!(off.work.clv_saved, 0);
    assert_eq!(
        on.work.clv_updates + on.work.clv_saved,
        off.work.clv_updates,
        "computed + copied columns must equal the uncompressed total"
    );
}

#[test]
fn mixed_repeats_world_is_flagged_as_replica_divergence() {
    let w = workloads::partitioned(8, 2, 100, 57);
    let mut c = cfg(3, 4);
    // Rank 2 silently runs uncompressed while ranks 0 and 1 compress.
    c.site_repeats_override = Some(vec![SiteRepeats::On, SiteRepeats::On, SiteRepeats::Off]);
    let err = match c.run(&w.compressed) {
        Err(RunError::Divergence(d)) => d,
        Ok(_) => panic!("a mixed-repeats world must trip the sentinel"),
        Err(other) => panic!("expected a divergence, got {other}"),
    };
    assert_eq!(err.minority_ranks, vec![2], "{err}");
    // Compression is bitwise invisible in the numerics, so the backend
    // fingerprint (which stamps the repeats setting next to the kernel
    // kind) is the ONLY diverging component — caught at the very first
    // sync, exactly like a mixed kernel backend.
    assert_eq!(err.components, vec![Component::KernelBackend], "{err}");
    assert_eq!(err.sync_index, 1, "{err}");
}

#[test]
fn auto_negotiation_agrees_on_compression_for_every_rank() {
    let w = workloads::partitioned(6, 2, 80, 59);
    let mut c = cfg(4, 8);
    c.site_repeats = RepeatsChoice::Auto;
    let out = c.run(&w.compressed).expect("negotiated run is clean");
    // Every rank supports compression, so the one-byte capability
    // allgather settles on `on` everywhere (a mixed world would have
    // tripped the sentinel above).
    assert_eq!(out.site_repeats, SiteRepeats::On);
    assert_eq!(out.survivors, vec![0, 1, 2, 3]);
}
