//! Checkpoint/restart across full de-centralized runs: generation
//! directories, header validation, elastic resume, and the crash-mid-write
//! regression (a torn tmp file must never shadow an intact generation).

use exa_comm::ReduceChoice;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::checkpoint::{self, CheckpointError};
use examl_core::{RunConfig, RunError};

fn workload() -> workloads::Workload {
    workloads::partitioned(8, 2, 100, 41)
}

/// A fresh per-test checkpoint directory under the system temp dir.
fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("examl_it_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn checkpoints_are_written_and_loadable() {
    let w = workload();
    let dir = tmp_dir("write");
    let cfg = RunConfig::new(2)
        .search(SearchConfig {
            max_iterations: 3,
            epsilon: 0.01,
            ..SearchConfig::fast()
        })
        .checkpoint(&dir, 1);
    let out = cfg.run(&w.compressed).unwrap();
    assert!(out.result.lnl.is_finite());

    let gens = checkpoint::list_generations(&dir).unwrap();
    assert!(!gens.is_empty(), "cadence 1 must commit generations");
    assert!(
        gens.len() <= checkpoint::KEEP_GENERATIONS,
        "rotation must cap retained generations: {gens:?}"
    );
    // No torn tmp files left behind by the two-phase commit.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "leftover tmp file {name}");
    }

    let ckpt = checkpoint::load_latest(&dir).expect("latest generation must parse");
    assert_eq!(ckpt.header.format_version, checkpoint::CHECKPOINT_VERSION);
    assert_eq!(ckpt.header.scheme, "decentralized");
    assert_eq!(ckpt.header.rank_count, 2);
    assert_eq!(ckpt.header.n_taxa, 8);
    assert_eq!(ckpt.header.n_partitions, 2);
    let snap = &ckpt.payload.snapshot;
    assert!(snap.iteration < cfg.search.max_iterations);
    assert!(f64::from_bits(snap.lnl_bits).is_finite());
    assert_eq!(snap.state.tree.n_taxa(), 8);
    // The checkpointed likelihood is from an earlier boundary; the final
    // result can only be better or equal.
    assert!(out.result.lnl >= f64::from_bits(snap.lnl_bits) - 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_continues_to_a_result_at_least_as_good() {
    let w = workload();
    let dir = tmp_dir("resume");

    // Phase 1: a deliberately short run that leaves a checkpoint behind.
    let first = RunConfig::new(2)
        .search(SearchConfig {
            max_iterations: 1,
            epsilon: 0.001,
            ..SearchConfig::fast()
        })
        .checkpoint(&dir, 1)
        .run(&w.compressed)
        .unwrap();

    // Phase 2: resume and keep searching.
    let second = RunConfig::new(2)
        .search(SearchConfig {
            max_iterations: 3,
            epsilon: 0.001,
            ..SearchConfig::fast()
        })
        .resume(&dir)
        .run(&w.compressed)
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        second.result.lnl >= first.result.lnl - 1e-6,
        "resumed run must not be worse: {} vs {}",
        second.result.lnl,
        first.result.lnl
    );
}

#[test]
fn resume_with_different_rank_count() {
    // The checkpoint stores only replicated state, so the rank count is
    // free to change across restarts (a real operational need on
    // clusters) — but only when both runs use reproducible reductions,
    // where the lnL trajectory is rank-count-invariant by construction. A
    // fast-mode trajectory is a function of the rank count, so resuming it
    // on a different count is refused as a silent fork.
    let w = workload();
    let dir = tmp_dir("ranks");

    RunConfig::new(3)
        .reduce(ReduceChoice::Reproducible)
        .search(SearchConfig {
            max_iterations: 1,
            ..SearchConfig::fast()
        })
        .checkpoint(&dir, 1)
        .run(&w.compressed)
        .unwrap();
    assert_eq!(checkpoint::load_latest(&dir).unwrap().header.rank_count, 3);

    let err = RunConfig::new(2)
        .search(SearchConfig {
            max_iterations: 2,
            ..SearchConfig::fast()
        })
        .resume(&dir)
        .run(&w.compressed)
        .unwrap_err();
    match err {
        RunError::Checkpoint(CheckpointError::Mismatch { field, .. }) => {
            assert_eq!(field, "rank_count");
        }
        other => panic!("fast-mode elastic resume must be refused: {other:?}"),
    }

    let out = RunConfig::new(2)
        .reduce(ReduceChoice::Reproducible)
        .search(SearchConfig {
            max_iterations: 2,
            ..SearchConfig::fast()
        })
        .resume(&dir)
        .run(&w.compressed)
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(out.result.lnl.is_finite());
}

#[test]
fn resume_with_mismatched_seed_names_the_field() {
    // Strict header fields (seed drives the starting topology) refuse to
    // resume, with a structured error naming the offending field.
    let w = workload();
    let dir = tmp_dir("seedmm");

    RunConfig::new(2)
        .seed(41)
        .search(SearchConfig {
            max_iterations: 1,
            ..SearchConfig::fast()
        })
        .checkpoint(&dir, 1)
        .run(&w.compressed)
        .unwrap();

    let err = RunConfig::new(2)
        .seed(42)
        .search(SearchConfig {
            max_iterations: 1,
            ..SearchConfig::fast()
        })
        .resume(&dir)
        .run(&w.compressed)
        .unwrap_err();
    std::fs::remove_dir_all(&dir).ok();
    match err {
        RunError::Checkpoint(CheckpointError::Mismatch { field, .. }) => {
            assert_eq!(field, "seed");
        }
        other => panic!("expected a seed mismatch, got {other}"),
    }
}

#[test]
fn crash_mid_write_leaves_previous_generation_loadable() {
    // Regression for the historical non-atomic `save`: simulate a crash
    // mid-write (a torn `.tmp` alongside a truncated newer generation) and
    // check the previous intact generation still loads.
    let w = workload();
    let dir = tmp_dir("torn");
    RunConfig::new(2)
        .search(SearchConfig {
            max_iterations: 2,
            epsilon: 0.001,
            ..SearchConfig::fast()
        })
        .checkpoint(&dir, 1)
        .run(&w.compressed)
        .unwrap();

    let gens = checkpoint::list_generations(&dir).unwrap();
    let (last_seq, last_path) = gens.last().unwrap().clone();
    let intact = checkpoint::load(&last_path).unwrap();

    // A crash between `write` and `rename` leaves a partial tmp file…
    let bytes = std::fs::read(&last_path).unwrap();
    std::fs::write(dir.join("gen-99999999.ckpt.tmp"), &bytes[..bytes.len() / 3]).unwrap();
    // …and a crash *during* an (imagined pre-atomic) in-place write leaves
    // a truncated newer generation.
    let torn = checkpoint::generation_path(&dir, last_seq + 1);
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();

    let recovered = checkpoint::load_latest(&dir).expect("must fall back to the intact gen");
    assert_eq!(recovered.header, intact.header);
    assert_eq!(checkpoint::encode(&recovered), checkpoint::encode(&intact));

    // And the torn generation alone reports a structured error.
    let err = checkpoint::load(&torn).unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::Corrupt { .. } | CheckpointError::Io(_)
        ),
        "torn file must yield a structured error, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
