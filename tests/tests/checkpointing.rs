//! Checkpoint/restart across full de-centralized runs.

use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{checkpoint, RunConfig};

fn workload() -> workloads::Workload {
    workloads::partitioned(8, 2, 100, 41)
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("examl_it_{name}_{}.json", std::process::id()))
}

#[test]
fn checkpoints_are_written_and_loadable() {
    let w = workload();
    let path = tmp("write");
    let mut cfg = RunConfig::new(2);
    cfg.search = SearchConfig {
        max_iterations: 3,
        epsilon: 0.01,
        ..SearchConfig::fast()
    };
    cfg.checkpoint_path = Some(path.clone());
    cfg.checkpoint_every = 1;
    let out = cfg.run(&w.compressed).unwrap();

    let ckpt = checkpoint::load(&path).expect("checkpoint must exist and parse");
    std::fs::remove_file(&path).ok();
    assert!(ckpt.iteration < cfg.search.max_iterations);
    assert!(ckpt.lnl.is_finite());
    assert_eq!(ckpt.state.tree.n_taxa(), 8);
    // The checkpointed likelihood is from an earlier boundary; the final
    // result can only be better or equal.
    assert!(out.result.lnl >= ckpt.lnl - 1e-9);
}

#[test]
fn resume_continues_to_a_result_at_least_as_good() {
    let w = workload();
    let path = tmp("resume");

    // Phase 1: a deliberately short run that leaves a checkpoint behind.
    let mut cfg1 = RunConfig::new(2);
    cfg1.search = SearchConfig {
        max_iterations: 1,
        epsilon: 0.001,
        ..SearchConfig::fast()
    };
    cfg1.checkpoint_path = Some(path.clone());
    cfg1.checkpoint_every = 1;
    let first = cfg1.run(&w.compressed).unwrap();

    // Phase 2: resume and keep searching.
    let mut cfg2 = RunConfig::new(2);
    cfg2.search = SearchConfig {
        max_iterations: 3,
        epsilon: 0.001,
        ..SearchConfig::fast()
    };
    cfg2.resume_from = Some(path.clone());
    let second = cfg2.run(&w.compressed).unwrap();
    std::fs::remove_file(&path).ok();

    assert!(
        second.result.lnl >= first.result.lnl - 1e-6,
        "resumed run must not be worse: {} vs {}",
        second.result.lnl,
        first.result.lnl
    );
}

#[test]
fn resume_with_different_rank_count() {
    // The checkpoint stores only replicated state, so the rank count is
    // free to change across restarts (a real operational need on clusters).
    let w = workload();
    let path = tmp("ranks");

    let mut cfg1 = RunConfig::new(3);
    cfg1.search = SearchConfig {
        max_iterations: 1,
        ..SearchConfig::fast()
    };
    cfg1.checkpoint_path = Some(path.clone());
    cfg1.run(&w.compressed).unwrap();

    let mut cfg2 = RunConfig::new(2);
    cfg2.search = SearchConfig {
        max_iterations: 2,
        ..SearchConfig::fast()
    };
    cfg2.resume_from = Some(path.clone());
    let out = cfg2.run(&w.compressed).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(out.result.lnl.is_finite());
}
