//! Regression tests for ranks that hold **zero** partitions: under MPS
//! (`-Q`) with more ranks than partitions, some ranks have no data but must
//! still participate in every collective with the same call sequence —
//! including the PSR site-rate normalization, which an empty rank would
//! have skipped when its rate-model kind was derived from (absent) local
//! partitions.

use exa_phylo::model::rates::RateModelKind;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::RunConfig;

fn cfg(ranks: usize, kind: RateModelKind) -> RunConfig {
    let mut cfg = RunConfig::new(ranks);
    cfg.rate_model = kind;
    cfg.strategy = exa_sched::Strategy::MonolithicLpt;
    cfg.search = SearchConfig {
        max_iterations: 1,
        ..SearchConfig::fast()
    };
    cfg.seed = 3;
    cfg
}

#[test]
fn more_ranks_than_partitions_under_gamma() {
    // 2 partitions, 4 ranks: two ranks are empty.
    let w = workloads::partitioned(6, 2, 60, 3);
    let out = cfg(4, RateModelKind::Gamma).run(&w.compressed).unwrap();
    assert!(out.result.lnl.is_finite());

    // Same answer as the fully-loaded 2-rank run.
    let dense = cfg(2, RateModelKind::Gamma).run(&w.compressed).unwrap();
    assert!(
        (out.result.lnl - dense.result.lnl).abs() < 1e-6,
        "{} vs {}",
        out.result.lnl,
        dense.result.lnl
    );
}

#[test]
fn more_ranks_than_partitions_under_psr() {
    // The regression: PSR site-rate optimization performs an allreduce that
    // empty ranks must join.
    let w = workloads::partitioned(6, 2, 60, 5);
    let out = cfg(4, RateModelKind::Psr).run(&w.compressed).unwrap();
    assert!(out.result.lnl.is_finite());
}

#[test]
fn empty_ranks_under_forkjoin_psr() {
    let w = workloads::partitioned(6, 2, 60, 7);
    let mut cfg = exa_forkjoin::ForkJoinConfig::new(4);
    cfg.rate_model = RateModelKind::Psr;
    cfg.strategy = exa_sched::Strategy::MonolithicLpt;
    cfg.search = SearchConfig {
        max_iterations: 1,
        ..SearchConfig::fast()
    };
    let out = exa_forkjoin::execute(&w.compressed, &cfg, None);
    assert!(out.result.lnl.is_finite());
}
