//! End-to-end critical-path attribution: run both schemes with tracing
//! enabled and check that the per-iteration attribution in the health
//! report accounts for the measured iteration wall time — the acceptance
//! bar is that compute + collective + straggler + other sums to within 1%
//! of the windows' wall clock (the model is constructed to make the sum
//! exact, so the test asserts equality and separately re-derives the wall
//! from the raw trace).

use exa_obs::{EventKind, RunTrace, ITERATION_MARK};
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{RunConfig, Scheme};

fn traced_run(scheme: Scheme) -> examl_core::RunOutcome {
    let w = workloads::partitioned(8, 3, 120, 21);
    let mut cfg = RunConfig::new(3).scheme(scheme).collect_trace(true);
    cfg.search = SearchConfig {
        max_iterations: 3,
        ..SearchConfig::fast()
    };
    cfg.seed = 77;
    cfg.run(&w.compressed).unwrap()
}

/// Wall time covered by the iteration windows, re-derived from the raw
/// trace: earliest `iteration:` mark to the last event of any rank.
fn windows_wall_ns(trace: &RunTrace) -> u64 {
    let mut first_mark = u64::MAX;
    let mut end = 0u64;
    for events in &trace.per_rank {
        for e in events {
            end = end.max(e.ts_ns);
            if let EventKind::Mark { label } = &e.kind {
                if label.starts_with(ITERATION_MARK) {
                    first_mark = first_mark.min(e.ts_ns);
                }
            }
        }
    }
    assert!(first_mark < u64::MAX, "trace carries no iteration marks");
    end - first_mark
}

fn check(scheme: Scheme, n_ranks: u32) {
    let out = traced_run(scheme);
    let trace = out.trace.as_ref().expect("collect_trace(true) set");

    let cp = out
        .health
        .critical_path
        .as_ref()
        .expect("health report must carry critical-path attribution");
    assert!(cp.iterations >= 1, "{scheme:?}: no iteration windows");
    assert!(cp.wall_ns > 0, "{scheme:?}: zero wall");

    // The attribution components partition the wall exactly.
    let sum = cp.compute_ns + cp.collective_ns + cp.straggler_ns + cp.other_ns;
    assert_eq!(
        sum, cp.wall_ns,
        "{scheme:?}: components must sum to the windows' wall"
    );

    // And the windows' wall agrees with the raw trace to within 1%.
    let measured = windows_wall_ns(trace);
    let diff = measured.abs_diff(cp.wall_ns);
    assert!(
        diff as f64 <= 0.01 * measured as f64,
        "{scheme:?}: attribution wall {} vs measured {} (diff {})",
        cp.wall_ns,
        measured,
        diff
    );

    // A traced run does real kernel work, so some compute must be
    // attributed and the slowest rank must be a real rank.
    assert!(cp.compute_ns > 0, "{scheme:?}: no compute attributed");
    if let Some(r) = cp.slowest_rank {
        assert!(r < n_ranks, "{scheme:?}: slowest rank {r} out of range");
    }
    if cp.hottest_partition.is_some() {
        assert!(cp.hottest_partition_ns > 0);
    }

    // Fractions are well-formed shares of the wall.
    for f in [cp.compute_frac(), cp.collective_frac(), cp.straggler_frac()] {
        assert!(
            (0.0..=1.0).contains(&f),
            "{scheme:?}: fraction {f} out of range"
        );
    }
}

#[test]
fn decentralized_attribution_accounts_for_iteration_wall() {
    check(Scheme::Decentralized, 3);
}

#[test]
fn forkjoin_attribution_accounts_for_iteration_wall() {
    check(Scheme::ForkJoin, 3);
}
