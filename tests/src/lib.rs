//! Integration-test host crate (tests live in ../tests/*.rs target files).
