//! §V fault tolerance live: kill ranks mid-search and watch the survivors
//! redistribute the data and finish the inference — the payoff of full
//! state redundancy in the de-centralized scheme (a fork-join master death
//! would end the run).
//!
//! ```text
//! cargo run -p examl-examples --release --bin fault_tolerance -- [ranks=4]
//! ```

use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::fault::FaultPlan;
use examl_core::RunConfig;

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    assert!(
        ranks >= 3,
        "need at least 3 ranks to kill one and keep going"
    );

    println!("generating 20-taxon, 5-partition workload...");
    let w = workloads::partitioned(20, 5, 150, 77);

    let search = SearchConfig {
        max_iterations: 4,
        epsilon: 0.01,
        ..SearchConfig::default()
    };

    println!("\n--- run 1: no failures, {ranks} ranks ---");
    let mut cfg = RunConfig::new(ranks);
    cfg.search = search.clone();
    let clean = cfg
        .run(&w.compressed)
        .expect("uniform replicas cannot diverge");
    println!(
        "  lnL = {:.4}, survivors = {:?}",
        clean.result.lnl, clean.survivors
    );

    println!(
        "\n--- run 2: rank 1 dies at iteration 1, rank {} at iteration 2 ---",
        ranks - 1
    );
    let mut cfg = RunConfig::new(ranks);
    cfg.search = search;
    cfg.fault_plan = FaultPlan::kill(1, 1).and_kill(ranks - 1, 2);
    let faulted = cfg
        .run(&w.compressed)
        .expect("uniform replicas cannot diverge");
    println!(
        "  lnL = {:.4}, survivors = {:?}",
        faulted.result.lnl, faulted.survivors
    );

    println!("\n--- comparison ---");
    println!("  clean   : {:.4}", clean.result.lnl);
    println!("  faulted : {:.4}", faulted.result.lnl);
    println!(
        "  same final topology: {}",
        exa_phylo::tree::bipartitions::rf_distance(&clean.state.tree, &faulted.state.tree) == 0
    );
    println!(
        "\nEvery surviving rank redistributed the dead ranks' data and redid the \
         interrupted iteration from the replicated state; no work before the \
         failure boundary was lost."
    );
}
