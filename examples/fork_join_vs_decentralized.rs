//! The paper in one program: run the SAME search under the fork-join
//! baseline (RAxML-Light) and the de-centralized scheme (ExaML) and print
//! the identical results next to the wildly different communication
//! profiles (§III, Table I).
//!
//! ```text
//! cargo run -p examl-examples --release --bin fork_join_vs_decentralized -- \
//!     [partitions=10] [chunk_len=200] [ranks=4]
//! ```

use exa_comm::{CommCategory, CommStats};
use exa_forkjoin::{execute, ForkJoinConfig};
use exa_simgen::workloads;
use examl_core::RunConfig;

fn print_stats(label: &str, stats: &CommStats) {
    println!("  {label}:");
    println!(
        "    {:<38} {:>12} {:>14} {:>8}",
        "category", "regions", "bytes", "share"
    );
    for cat in CommCategory::ALL {
        let c = stats.get(cat);
        if c.regions == 0 {
            continue;
        }
        println!(
            "    {:<38} {:>12} {:>14} {:>7.2}%",
            cat.label(),
            c.regions,
            c.bytes,
            stats.byte_share(cat)
        );
    }
    println!(
        "    {:<38} {:>12} {:>14}",
        "TOTAL",
        stats.total_regions(),
        stats.total_bytes()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let partitions: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let chunk_len: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let ranks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed = 7u64;

    println!("generating {partitions}-partition workload ({chunk_len} bp each, 52 taxa)...");
    let w = workloads::partitioned_52taxa(partitions, chunk_len, 99);

    println!("\n=== fork-join (RAxML-Light scheme) on {ranks} ranks ===");
    let mut fcfg = ForkJoinConfig::new(ranks);
    fcfg.seed = seed;
    let t0 = std::time::Instant::now();
    let fj = execute(&w.compressed, &fcfg, None);
    let fj_time = t0.elapsed();
    println!(
        "  lnL = {:.4} after {} iterations ({fj_time:.2?})",
        fj.result.lnl, fj.result.iterations
    );

    println!("\n=== de-centralized (ExaML scheme) on {ranks} ranks ===");
    let mut dcfg = RunConfig::new(ranks);
    dcfg.seed = seed;
    let t0 = std::time::Instant::now();
    let dec = dcfg
        .run(&w.compressed)
        .expect("uniform replicas cannot diverge");
    let dec_time = t0.elapsed();
    println!(
        "  lnL = {:.4} after {} iterations ({dec_time:.2?})",
        dec.result.lnl, dec.result.iterations
    );

    println!("\n=== identical science ===");
    println!(
        "  |lnL difference|   : {:.3e}",
        (fj.result.lnl - dec.result.lnl).abs()
    );
    println!(
        "  same topology      : {}",
        exa_phylo::tree::bipartitions::rf_distance(&fj.state.tree, &dec.state.tree) == 0
    );

    println!("\n=== very different communication (cf. Table I) ===");
    print_stats("fork-join", &fj.comm_stats);
    print_stats("de-centralized", &dec.comm_stats);

    let ratio_bytes =
        fj.comm_stats.total_bytes() as f64 / dec.comm_stats.total_bytes().max(1) as f64;
    let ratio_regions =
        fj.comm_stats.total_regions() as f64 / dec.comm_stats.total_regions().max(1) as f64;
    println!("\n  fork-join moves {ratio_bytes:.1}x the bytes in {ratio_regions:.1}x the parallel regions");
}
