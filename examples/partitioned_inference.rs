//! Partitioned whole-genome-style inference — the paper's motivating use
//! case (§I): a multi-gene alignment with per-partition models, monolithic
//! (MPS / `-Q`) data distribution, and per-partition branch lengths (`-M`)
//! if requested.
//!
//! ```text
//! cargo run -p examl-examples --release --bin partitioned_inference -- \
//!     [partitions=10] [chunk_len=200] [ranks=4] [--per-partition-branches] [--psr]
//! ```

use exa_phylo::model::rates::RateModelKind;
use exa_sched::{balance::balance_stats, distribute, Strategy};
use exa_search::evaluator::BranchMode;
use exa_simgen::workloads;
use examl_core::RunConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let partitions: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let chunk_len: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let ranks: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let per_partition = args.iter().any(|a| a == "--per-partition-branches");
    let psr = args.iter().any(|a| a == "--psr");

    // Generate the 52-taxon multi-gene workload of §IV-B at the requested
    // scale (each partition gets its own random GTR+Γ generating model).
    println!("generating 52-taxon alignment: {partitions} partitions x {chunk_len} bp ...");
    let w = workloads::partitioned_52taxa(partitions, chunk_len, 2024);
    println!(
        "  {} sites, {} unique patterns across {} partitions",
        w.alignment.n_sites(),
        w.compressed.total_patterns(),
        w.compressed.n_partitions()
    );

    // Show what the MPS (monolithic) distribution looks like vs cyclic.
    for strategy in [Strategy::Cyclic, Strategy::MonolithicLpt] {
        let a = distribute(&w.compressed, ranks, strategy);
        let b = balance_stats(&w.compressed, &a);
        println!(
            "  {strategy:?}: max/mean load = {:.3}, rank-partition shares = {}",
            b.imbalance, b.total_shares
        );
    }

    let mut cfg = RunConfig::new(ranks);
    cfg.strategy = if partitions >= 2 * ranks {
        Strategy::MonolithicLpt // the paper's -Q regime
    } else {
        Strategy::Cyclic
    };
    cfg.branch_mode = if per_partition {
        BranchMode::PerPartition
    } else {
        BranchMode::Joint
    };
    cfg.rate_model = if psr {
        RateModelKind::Psr
    } else {
        RateModelKind::Gamma
    };
    println!(
        "running de-centralized inference: {ranks} ranks, {:?}, {:?}, {:?}",
        cfg.strategy, cfg.branch_mode, cfg.rate_model
    );

    let start = std::time::Instant::now();
    let out = cfg
        .run(&w.compressed)
        .expect("uniform replicas cannot diverge");
    let elapsed = start.elapsed();

    println!("final log-likelihood : {:.4}", out.result.lnl);
    println!("iterations           : {}", out.result.iterations);
    println!("wall clock           : {elapsed:.2?}");
    println!(
        "kernel work          : {} pattern-category updates",
        out.work.total()
    );
    println!(
        "CLV memory           : {:.1} MiB",
        out.mem_bytes as f64 / (1 << 20) as f64
    );
    println!("parallel regions     : {}", out.comm_stats.total_regions());
    println!("bytes communicated   : {}", out.comm_stats.total_bytes());
    if psr {
        println!("(PSR uses 1 rate category per pattern: 4x less CLV memory than Gamma)");
    }
    // Recover per-partition alpha estimates under Gamma.
    if !out.state.alphas.is_empty() {
        let mean_alpha: f64 = out.state.alphas.iter().sum::<f64>() / out.state.alphas.len() as f64;
        println!("mean fitted alpha    : {mean_alpha:.3}");
    }
}
