//! Quickstart: parse an alignment, compress it, and infer a maximum-
//! likelihood tree with the de-centralized (ExaML) scheme.
//!
//! ```text
//! cargo run -p examl-examples --release --bin quickstart [-- <ranks> <seed>]
//! ```

use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_bio::phylip::parse_phylip;
use examl_core::RunConfig;

/// A tiny embedded alignment (8 primate-like toy sequences, 60 bp) so the
/// quickstart has zero external inputs.
const PHYLIP: &str = "\
8 60
Human     ACCTGGCTAGCTTACGATCGATCGATTTACGGAACGTACGTTACGATCAGCTAGCTAGCT
Chimp     ACCTGGCTAGCTTACGATCGATCGATTTACGGAACGTACGTTACGATCAGCTAGCTAGGT
Gorilla   ACCTGGTTAGCTTACGATCGATCGACTTACGGAACGTACGTTACGATCAGCTAGCTAGGT
Orang     ACTTGGTTAGCTTACGATCAATCGACTTACGGAACGAACGTTACGATCAGTTAGCTAGGT
Gibbon    ACTTGGTTAGTTTACGATCAATCGACTTACGGATCGAACGTTACGATCAGTTAGCTAGGT
Macaque   GCTTGGTTAGTTTACGCTCAATCGACTTACGGATCGAACGTTACGATTAGTTAGGTAGGT
Baboon    GCTTGGTTAGTTTACGCTCAATCGACTTACAGATCGAACGTTACGATTAGTTAGGTAGGT
Marmoset  GCTTAGTTAGTTTACGCTCAATCAACTTACAGATCGAACGTAACGATTAGTTAGGTCGGT
";

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    // 1. Parse and pattern-compress the alignment.
    let alignment = parse_phylip(PHYLIP).expect("embedded alignment parses");
    let scheme = PartitionScheme::unpartitioned(alignment.n_sites());
    let compressed = CompressedAlignment::build(&alignment, &scheme);
    println!(
        "alignment: {} taxa x {} sites -> {} unique site patterns",
        alignment.n_taxa(),
        alignment.n_sites(),
        compressed.total_patterns()
    );

    // 2. Configure and run the de-centralized inference.
    let mut cfg = RunConfig::new(ranks);
    cfg.seed = seed;
    let out = cfg
        .run(&compressed)
        .expect("uniform replicas cannot diverge");

    // 3. Report.
    println!("final log-likelihood : {:.4}", out.result.lnl);
    println!("search iterations    : {}", out.result.iterations);
    println!("accepted SPR moves   : {}", out.result.spr_moves);
    println!("converged            : {}", out.result.converged);
    println!("parallel regions     : {}", out.comm_stats.total_regions());
    println!("bytes communicated   : {}", out.comm_stats.total_bytes());
    println!("ML tree              : {}", out.tree_newick);
}
