//! Offline stand-in for `criterion`.
//!
//! Mirrors the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`, `Bencher::iter`
//! and `iter_with_setup`, `BenchmarkId`, `Throughput`, plus the
//! `criterion_group!`/`criterion_main!` macros — but measures with a plain
//! wall-clock median over a fixed number of samples and prints one line per
//! benchmark. No statistics, plots, or baseline comparisons.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_benchmark(name, self.sample_size, None, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(
            &name,
            self.sample_size,
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up round, not recorded.
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name:<56} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mut line = String::new();
    let _ = write!(line, "bench {name:<56} {:>12}", format_duration(median));
    if let Some(t) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  {:>14.3} Melem/s", n as f64 / secs / 1e6);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  {:>14.3} MiB/s", n as f64 / secs / (1 << 20) as f64);
                }
            }
        }
    }
    println!("{line}");
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendored_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        trivial(&mut c);
        c.bench_function("top_level", |b| {
            b.iter_with_setup(|| vec![1u64; 64], |v| v.iter().sum::<u64>())
        });
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("Gamma").to_string(), "Gamma");
    }
}
