//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Keeps the two API differences the workspace relies on: `lock()` returns
//! a guard directly (no `Result`; a poisoned std mutex is simply re-entered,
//! matching parking_lot's no-poisoning semantics), and `Condvar::wait` takes
//! `&mut MutexGuard` instead of consuming it.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can hand the std guard to the condvar and
    // put the replacement back; it is `Some` outside that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard invariant");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // parking_lot reports whether a thread was woken; std cannot know.
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn try_lock_blocks_on_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
