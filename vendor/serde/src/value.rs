//! The self-describing value tree all (de)serialization goes through.

use crate::{DeError, Deserialize, Serialize};

/// A JSON-shaped value. Maps preserve insertion order (field order of the
/// serialized struct), which keeps emitted JSON stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self, what: &str) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(DeError(format!(
                "{what}: expected map, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_array(&self, what: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Array(a) => Ok(a),
            other => Err(DeError(format!(
                "{what}: expected array, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_str(&self, what: &str) -> Result<&str, DeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DeError(format!(
                "{what}: expected string, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_bool(&self, what: &str) -> Result<bool, DeError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!(
                "{what}: expected bool, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_f64(&self, what: &str) -> Result<f64, DeError> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // serde_json has no NaN/Inf literal; they serialize as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError(format!(
                "{what}: expected number, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_u64(&self, what: &str) -> Result<u64, DeError> {
        match self {
            Value::UInt(u) => Ok(*u),
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(DeError(format!(
                "{what}: expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_i64(&self, what: &str) -> Result<i64, DeError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Ok(*u as i64),
            other => Err(DeError(format!(
                "{what}: expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
