//! Blanket and primitive implementations of [`Serialize`] / [`Deserialize`].

use crate::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64(stringify!($t))?;
                <$t>::try_from(u).map_err(|_| {
                    DeError(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64(stringify!($t))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);
int_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(v.as_f64(stringify!($t))? as $t)
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool("bool")
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_str("String")?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str("char")?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(PathBuf::from(v.as_str("PathBuf")?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array("Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array("array")?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        // len checked above; the unwrap cannot fire.
        Ok(parsed.try_into().unwrap())
    }
}

macro_rules! tuple_impl {
    ($len:expr; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array("tuple")?;
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected tuple of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

tuple_impl!(1; A.0);
tuple_impl!(2; A.0, B.1);
tuple_impl!(3; A.0, B.1, C.2);
tuple_impl!(4; A.0, B.1, C.2, D.3);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map("BTreeMap")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map("HashMap")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
