//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal replacement that keeps the public surface the codebase
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, and the `serde_json` functions built on top. Instead of serde's
//! visitor architecture, this implementation round-trips every value through
//! a self-describing [`Value`] tree — slower, but entirely sufficient for
//! checkpoints, result files and trace exports.
//!
//! Enum representation mirrors serde's externally-tagged default: a unit
//! variant serializes to its name as a string, a data-carrying variant to a
//! single-entry map `{ "Variant": ... }`.

pub use serde_derive::{Deserialize, Serialize};

mod impls;
mod value;

pub use value::Value;

/// Serialization: convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization: rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Derive-macro support: look up a field in a map value, yielding `Null`
/// for absent fields so `Option` fields tolerate omission.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}
