//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the 0.8 API this workspace uses: a seedable
//! [`rngs::StdRng`], [`Rng::gen_range`] over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not the
//! real StdRng's ChaCha12, but every use in this workspace seeds
//! explicitly and only needs deterministic, well-mixed streams, not
//! cryptographic strength or cross-crate reproducibility.

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Explicit seeding (the only construction path this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = self.start + (self.end - self.start) * unit;
        // Guard against rounding up onto the excluded endpoint.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        (self.start as f64..self.end as f64).sample_from(rng) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension methods (only `shuffle` is needed here).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (&mut *rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.gen_range(1u8..=255);
            assert!(z >= 1);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn splitmix_mixes_small_seeds() {
        // Consecutive seeds must not produce correlated first draws.
        let firsts: Vec<u64> = (0..8)
            .map(|s| {
                let mut r = StdRng::seed_from_u64(s);
                use super::RngCore;
                r.next_u64()
            })
            .collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len());
    }
}
