//! JSON text emission. Floats use Rust's shortest-roundtrip `Display`,
//! which serde_json (via ryu) also guarantees, so checkpoint bit-exactness
//! is preserved across a save/load cycle.

use serde::Value;

pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity literals; serde_json emits null.
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // Keep the float/integer distinction visible in the output.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
