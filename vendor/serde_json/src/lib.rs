//! Offline stand-in for `serde_json`: prints and parses JSON text through
//! the vendored [`serde::Value`] tree. Covers the subset the workspace
//! uses: `to_string`/`to_vec` (+ `_pretty` variants), `from_str`,
//! `from_slice`. Non-finite floats serialize as `null`, matching
//! serde_json's default behaviour.

pub use serde::Value;
use serde::{Deserialize, Serialize};

mod parse;
mod print;

/// Serialization or parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::compact(&value.to_value()))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::pretty(&value.to_value()))
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse::parse(s)?;
    Ok(T::from_value(&v)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Convert any serializable value into the generic [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi\\nthere\"",
            "[]",
            "{}",
        ] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn map_preserves_order() {
        let v: Value = from_str(r#"{"z": 1, "a": [2, 3], "m": {"x": null}}"#).unwrap();
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"z":1,"a":[2,3],"m":{"x":null}}"#
        );
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MAX] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn nan_serializes_as_null_and_parses_back_as_nan() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
        let back: f64 = from_str(&text).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_output_parses() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes() {
        let s = "tab\there \"quote\" back\\slash \u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
