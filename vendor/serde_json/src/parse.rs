//! Recursive-descent JSON parser producing a [`serde::Value`] tree.

use crate::Error;
use serde::Value;

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired \uXXXX.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read the 4 hex digits of a `\uXXXX` escape; leaves `pos` on the last
    /// digit (the caller's shared `pos += 1` finishes the escape).
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = start + 3;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Float(x))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => {
                    let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Float(x))
                }
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => {
                    let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Float(x))
                }
            }
        }
    }
}
