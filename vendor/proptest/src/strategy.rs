//! Value-generation strategies. Unlike real proptest there is no value
//! tree and no shrinking: a strategy is just a deterministic sampler.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// Strategies are often built inline (`0usize..8`) but sampled by shared
// reference, so references to strategies are strategies too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

// ------------------------------------------------------------- ranges

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + (self.end - self.start) * rng.next_unit_f64();
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        ((self.start as f64)..(self.end as f64)).sample(rng) as f32
    }
}

// ------------------------------------------------------------- any

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range (no NaN/Inf — the
        // workspace treats `any::<f64>()` as "some ordinary number").
        let mag = (rng.next_unit_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

// ------------------------------------------------------------- collections

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    // Inclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

// ------------------------------------------------------------- sample

/// `prop::sample::select`: pick one element of a non-empty vector.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

/// `prop::sample::Index`: a position drawn independently of any particular
/// collection, projected onto one via [`Index::index`].
#[derive(Debug, Clone, Copy)]
pub struct Index(f64);

impl Index {
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        let i = (self.0 * len as f64) as usize;
        i.min(len - 1)
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_unit_f64())
    }
}

// ------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

// ------------------------------------------------------------- generator

/// Wrap a sampling closure as a strategy — the backbone of `prop_compose!`.
pub fn generator<T, F: Fn(&mut TestRng) -> T>(f: F) -> Generator<F> {
    Generator(f)
}

pub struct Generator<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for Generator<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Constant strategy (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
