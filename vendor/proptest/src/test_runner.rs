//! Case execution: deterministic per-test RNG, reject accounting, failure
//! reporting (without shrinking).

/// How many cases to run per property (the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Outcome of one case body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip this case without counting it.
    Reject,
    /// `prop_assert!` failed: the property does not hold.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic per-test random source (SplitMix64). Strategies draw
/// `u64`s from this; everything else is layered on top.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name: stable seeds without any global state.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub struct Runner {
    config: ProptestConfig,
    name: String,
}

impl Runner {
    pub fn new(config: ProptestConfig, name: &str) -> Runner {
        Runner {
            config,
            name: name.to_string(),
        }
    }

    pub fn run<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = seed_for(&self.name);
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut attempt = 0u64;
        while case < self.config.cases {
            // Each attempt (including rejected ones) gets a fresh stream so
            // a rejected prefix cannot stall progress.
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            match body(&mut rng) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        panic!(
                            "property test `{}` exceeded {} prop_assume! rejections",
                            self.name, self.config.max_global_rejects
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property test `{}` failed at case {} (rng seed {:#x}):\n{}",
                        self.name, case, seed, msg
                    );
                }
            }
        }
    }
}
