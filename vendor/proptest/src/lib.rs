//! Offline stand-in for `proptest`.
//!
//! Supports the macro and strategy surface this workspace's property tests
//! use: `proptest!`, `prop_compose!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_assume!`, range and `any::<T>()` strategies, `prop::collection::vec`,
//! `prop::sample::{select, Index}`, and tuple strategies.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its case number and the
//!   per-test RNG seed; re-running is deterministic, so the case is
//!   reproducible but not minimized.
//! - **Deterministic seeding.** Cases derive from a hash of the test name,
//!   so runs are identical across invocations (no `PROPTEST_` env vars).

pub mod strategy;
pub mod test_runner;

pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod sample {
        pub use crate::strategy::{select, Index};
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    // `#[macro_export]` macros live at the crate root; re-export them so a
    // glob import of the prelude brings them into scope like real proptest.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Run one named property test: the body of a `proptest!`-generated `#[test]`.
pub fn run_property_test<F>(config: test_runner::ProptestConfig, name: &str, body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    test_runner::Runner::new(config, name).run(body)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_property_test(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[macro_export]
macro_rules! prop_compose {
    // Two generation stages: the second stage's strategies may reference
    // values drawn in the first.
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:tt)*)
        ($($arg1:pat in $strat1:expr),* $(,)?)
        ($($arg2:pat in $strat2:expr),* $(,)?)
        -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::generator(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $arg1 = $crate::strategy::Strategy::sample(&($strat1), __rng);)*
                $(let $arg2 = $crate::strategy::Strategy::sample(&($strat2), __rng);)*
                $body
            })
        }
    };
    // Single generation stage.
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:tt)*)
        ($($arg1:pat in $strat1:expr),* $(,)?)
        -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::generator(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $arg1 = $crate::strategy::Strategy::sample(&($strat1), __rng);)*
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0usize..10)(b in a..=a, pad in 0usize..3) -> (usize, usize) {
            (a.min(a + pad), b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -1.5f64..2.5, z in 1u8..=255) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!(z >= 1);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0.0f64..1.0, 6)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn composed_strategy_links_stages((a, b) in arb_pair()) {
            prop_assert_eq!(a, b);
        }

        #[test]
        fn index_is_in_range(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            let i = idx.index(len);
            prop_assert!(i < len);
        }

        #[test]
        fn select_picks_member(x in prop::sample::select(vec![2usize, 5, 7])) {
            prop_assert!([2usize, 5, 7].contains(&x));
        }

        #[test]
        fn tuples_sample_elementwise(t in (any::<u32>(), 0usize..4, -1.0f64..1.0)) {
            prop_assert!(t.1 < 4);
            prop_assert!((-1.0..1.0).contains(&t.2));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property test")]
    fn failing_property_panics() {
        crate::run_property_test(
            ProptestConfig::with_cases(8),
            "vendored::failing_property",
            |rng| {
                let x = Strategy::sample(&(0usize..100), rng);
                prop_assert!(x > 1000, "x was {}", x);
                Ok(())
            },
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let sample_all = || {
            let mut out = Vec::new();
            crate::run_property_test(
                ProptestConfig::with_cases(16),
                "vendored::determinism",
                |rng| {
                    out.push(Strategy::sample(&(0u64..u64::MAX), rng));
                    Ok(())
                },
            );
            out
        };
        assert_eq!(sample_all(), sample_all());
    }
}
