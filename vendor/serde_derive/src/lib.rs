//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes this workspace serializes: non-generic named
//! structs, tuple structs, unit structs, and enums whose variants are unit,
//! tuple, or struct-like. `#[serde(...)]` attributes are not supported (the
//! workspace uses none). Parsing is done directly on the token stream —
//! `syn`/`quote` are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Shape {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic type `{name}`");
        }
    }
    match keyword.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("cannot derive for item kind `{other}`"),
    }
}

fn skip_attrs_and_vis(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip a type position until a top-level comma, tracking `<`/`>` nesting
/// (commas inside bracketed groups are invisible at this level already).
fn skip_type(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle: i32 = 0;
    while let Some(tok) = it.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                it.next();
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                it.next();
            }
            _ => {
                it.next();
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut it);
        fields.push(name);
        match it.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("expected `,` between fields, got {other:?}"),
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        skip_type(&mut it);
        count += 1;
        match it.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("expected `,` between tuple fields, got {other:?}"),
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        match it.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("explicit enum discriminants are not supported")
            }
            other => panic!("expected `,` between variants, got {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Map(::std::vec![{entries}])"),
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            impl_serialize(name, &body)
        }
        Shape::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: String = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{items}])")
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), {inner})]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {arms} }}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(m, {f:?}))?,")
                })
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "let m = v.as_map({name:?})?;\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})"
                ),
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let inits: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                format!(
                    "let items = v.as_array({name:?})?;\n\
                     if items.len() != {arity} {{\n\
                       return ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"{name}: expected {arity} elements, got {{}}\", \
                         items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({inits}))"
                )
            };
            impl_deserialize(name, &body)
        }
        Shape::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) if *arity == 1 => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: String = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let items = inner.as_array({vn:?})?;\n\
                                 if items.len() != {arity} {{\n\
                                   return ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"{name}::{vn}: expected {arity} \
                                     elements, got {{}}\", items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({inits}))\n\
                                 }}"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(fm, {f:?}))?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let fm = inner.as_map({vn:?})?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                       {unit_arms}\n\
                       other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                       let (tag, inner) = &m[0];\n\
                       match tag.as_str() {{\n\
                         {data_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError(\
                           ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                       }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::DeError(\
                       ::std::format!(\"{name}: expected variant tag, got {{}}\", \
                       other.kind()))),\n\
                     }}"
                ),
            )
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
