//! `exa-sched` — data distribution across ranks.
//!
//! Two strategies, mirroring RAxML-Light/ExaML (§II, §IV-D of the paper and
//! reference 24, "The multi-processor scheduling problem in
//! phylogenetics"):
//!
//! * **Cyclic** (the default): site patterns are dealt round-robin across
//!   ranks over the whole alignment. Perfectly balanced in pattern count,
//!   but with many partitions every rank touches every partition, so every
//!   rank pays every partition's per-partition overhead (P-matrices,
//!   model updates).
//! * **Monolithic / MPS** (the `-Q` option): whole partitions are assigned
//!   to ranks. Optimal balance is NP-hard (multiprocessor scheduling), so
//!   the LPT (Longest Processing Time) heuristic is used, followed by a
//!   pairwise-move refinement. The paper activates this for ≥ 500
//!   partitions; ref. 24 reports up to an order of magnitude speedup from it.

pub mod balance;

use exa_bio::patterns::CompressedAlignment;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which patterns of one partition a rank holds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternSubset {
    /// The entire partition (monolithic assignment).
    All,
    /// An explicit pattern-index subset (cyclic assignment).
    Indices(Vec<usize>),
}

/// One partition's share on one rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartShare {
    /// Global partition index.
    pub global_index: usize,
    pub patterns: PatternSubset,
}

/// Everything one rank holds.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RankAssignment {
    pub shares: Vec<PartShare>,
}

impl RankAssignment {
    /// Number of patterns this rank holds, given the alignment.
    pub fn pattern_count(&self, aln: &CompressedAlignment) -> usize {
        self.shares
            .iter()
            .map(|s| match &s.patterns {
                PatternSubset::All => aln.partitions[s.global_index].n_patterns(),
                PatternSubset::Indices(v) => v.len(),
            })
            .sum()
    }
}

/// Distribution strategy (the paper's `-Q` flag selects `MonolithicLpt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    Cyclic,
    MonolithicLpt,
}

/// Distribute the alignment's patterns over `n_ranks`.
pub fn distribute(
    aln: &CompressedAlignment,
    n_ranks: usize,
    strategy: Strategy,
) -> Vec<RankAssignment> {
    assert!(n_ranks >= 1, "need at least one rank");
    match strategy {
        Strategy::Cyclic => cyclic(aln, n_ranks),
        Strategy::MonolithicLpt => monolithic_lpt(aln, n_ranks),
    }
}

/// Round-robin over the global pattern sequence: pattern `j` of partition
/// `p` goes to rank `(offset_p + j) mod n_ranks`.
fn cyclic(aln: &CompressedAlignment, n_ranks: usize) -> Vec<RankAssignment> {
    let mut out = vec![RankAssignment::default(); n_ranks];
    let mut offset = 0usize;
    for (pi, part) in aln.partitions.iter().enumerate() {
        let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
        for j in 0..part.n_patterns() {
            per_rank[(offset + j) % n_ranks].push(j);
        }
        offset += part.n_patterns();
        for (r, indices) in per_rank.into_iter().enumerate() {
            if !indices.is_empty() {
                out[r].shares.push(PartShare {
                    global_index: pi,
                    patterns: PatternSubset::Indices(indices),
                });
            }
        }
    }
    out
}

/// LPT: sort partitions by pattern count (descending, ties by index for
/// determinism), greedily give each to the least-loaded rank; then refine
/// with single-partition moves while they reduce the makespan.
fn monolithic_lpt(aln: &CompressedAlignment, n_ranks: usize) -> Vec<RankAssignment> {
    let mut order: Vec<usize> = (0..aln.partitions.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(aln.partitions[i].n_patterns()), i));

    let mut loads = vec![0usize; n_ranks];
    let mut owner = vec![0usize; aln.partitions.len()];
    for &pi in &order {
        let r = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("at least one rank");
        owner[pi] = r;
        loads[r] += aln.partitions[pi].n_patterns();
    }

    // Refinement: move any partition from the most-loaded rank to the
    // least-loaded one while that strictly reduces the makespan.
    loop {
        let (max_r, &max_l) = loads
            .iter()
            .enumerate()
            .max_by_key(|&(i, &l)| (l, usize::MAX - i))
            .unwrap();
        let (min_r, &min_l) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .unwrap();
        if max_r == min_r {
            break;
        }
        // Best single move: the largest partition on max_r that still
        // reduces the makespan when moved to min_r.
        let mut best: Option<(usize, usize)> = None; // (patterns, partition)
        for (pi, &o) in owner.iter().enumerate() {
            if o != max_r {
                continue;
            }
            let w = aln.partitions[pi].n_patterns();
            let new_max = (max_l - w).max(min_l + w);
            if new_max < max_l && best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, pi));
            }
        }
        match best {
            Some((w, pi)) => {
                owner[pi] = min_r;
                loads[max_r] -= w;
                loads[min_r] += w;
            }
            None => break,
        }
    }

    let mut out = vec![RankAssignment::default(); n_ranks];
    for (pi, &r) in owner.iter().enumerate() {
        out[r].shares.push(PartShare {
            global_index: pi,
            patterns: PatternSubset::All,
        });
    }
    out
}

/// Materialize a rank's data: the `(global_index, CompressedPartition)`
/// pairs it will build its engine from.
pub fn materialize(
    aln: &CompressedAlignment,
    assignment: &RankAssignment,
) -> Vec<(usize, exa_bio::patterns::CompressedPartition)> {
    assignment
        .shares
        .iter()
        .map(|s| {
            let part = &aln.partitions[s.global_index];
            let data = match &s.patterns {
                PatternSubset::All => part.clone(),
                PatternSubset::Indices(idx) => part.select_patterns(idx),
            };
            (s.global_index, data)
        })
        .collect()
}

/// Full-partition tip codes and pattern weights wrapped in `Arc`, built once
/// per process. Every in-process rank whose assignment holds an entire
/// partition ([`PatternSubset::All`]) gets its [`PartitionSlice`] by cloning
/// the `Arc` handles instead of the buffers, so an N-rank world holds one
/// copy of each full partition's data rather than N. Cyclic `Indices` shares
/// still materialize per rank — their pattern subsets genuinely differ.
///
/// [`PartitionSlice`]: exa_phylo::PartitionSlice
#[derive(Debug, Clone, Default)]
pub struct SharedSlices {
    tips: Vec<Arc<Vec<Vec<u8>>>>,
    weights: Vec<Arc<Vec<f64>>>,
}

impl SharedSlices {
    /// Wrap every partition's tip/weight buffers once.
    pub fn build(aln: &CompressedAlignment) -> SharedSlices {
        SharedSlices {
            tips: aln
                .partitions
                .iter()
                .map(|p| Arc::new(p.tips.clone()))
                .collect(),
            weights: aln
                .partitions
                .iter()
                .map(|p| Arc::new(p.weights.iter().map(|&w| w as f64).collect()))
                .collect(),
        }
    }

    /// A full-partition slice backed by the shared buffers (no data copy).
    pub fn slice(
        &self,
        aln: &CompressedAlignment,
        global_index: usize,
        freqs: [f64; 4],
    ) -> exa_phylo::PartitionSlice {
        exa_phylo::PartitionSlice::from_shared(
            global_index,
            aln.partitions[global_index].name.clone(),
            Arc::clone(&self.tips[global_index]),
            Arc::clone(&self.weights[global_index]),
            freqs,
        )
    }
}

/// Everything [`build_engine`] needs beyond the data distribution itself:
/// the rate model plus the negotiated backend knobs (kernel, site repeats,
/// intra-rank threads, batching).
#[derive(Debug, Clone, Copy)]
pub struct EngineSpec {
    pub rate_model: exa_phylo::RateModelKind,
    pub kernel: exa_phylo::KernelKind,
    pub site_repeats: exa_phylo::SiteRepeats,
    /// Intra-rank worker-pool width (1 = serial, the historical behavior).
    pub threads: usize,
    /// Pack small partitions into cache-sized kernel batches. Off = one
    /// dispatch per partition.
    pub batch: bool,
}

impl EngineSpec {
    /// A spec with the historical defaults: serial execution, batching on.
    pub fn new(
        rate_model: exa_phylo::RateModelKind,
        kernel: exa_phylo::KernelKind,
        site_repeats: exa_phylo::SiteRepeats,
    ) -> EngineSpec {
        EngineSpec {
            rate_model,
            kernel,
            site_repeats,
            threads: 1,
            batch: true,
        }
    }

    /// CLV rate categories per pattern under this spec's rate model (the
    /// unit `pack_batches` footprints are measured in).
    pub fn clv_categories(&self) -> usize {
        match self.rate_model {
            exa_phylo::RateModelKind::Gamma => exa_phylo::model::rates::GAMMA_CATEGORIES,
            exa_phylo::RateModelKind::Psr => 1,
        }
    }
}

/// CLV footprint budget per kernel batch: the working set of one batch
/// (CLV columns + P-matrix scratch for each member) should stay L2-resident,
/// so a batch's partitions reuse hot scratch instead of evicting each other.
pub const BATCH_BUDGET_BYTES: usize = 256 * 1024;

/// Pack consecutive local partitions into cache-sized batches: greedy fill
/// against `budget_bytes` of per-pattern CLV footprint
/// (`patterns × categories × 4 states × 8 bytes`). The result is an exact
/// consecutive cover of `0..slice_patterns.len()` — packing only groups,
/// never reorders or splits, so it is a pure function of the slice
/// assignment and every rank can derive it independently. Oversized
/// partitions get a singleton batch.
pub fn pack_batches(
    slice_patterns: &[usize],
    clv_categories: usize,
    budget_bytes: usize,
) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut fill = 0usize;
    for (i, &patterns) in slice_patterns.iter().enumerate() {
        let footprint = patterns * clv_categories * 4 * 8;
        if i > start && fill + footprint > budget_bytes {
            out.push(start..i);
            start = i;
            fill = 0;
        }
        fill += footprint;
    }
    if start < slice_patterns.len() {
        out.push(start..slice_patterns.len());
    }
    out
}

/// Build a rank's likelihood engine from its distribution assignment and an
/// [`EngineSpec`]. This is the one place a data distribution becomes an
/// [`Engine`](exa_phylo::Engine), shared by every execution scheme — and
/// therefore the one place the partition-packing pass runs. When `shared`
/// is given, full-partition shares reuse its `Arc`-backed buffers instead
/// of cloning them.
pub fn build_engine(
    aln: &CompressedAlignment,
    assignment: &RankAssignment,
    freqs: &[[f64; 4]],
    spec: &EngineSpec,
    shared: Option<&SharedSlices>,
) -> exa_phylo::Engine {
    let slices: Vec<exa_phylo::PartitionSlice> = assignment
        .shares
        .iter()
        .map(|s| {
            let gi = s.global_index;
            match (&s.patterns, shared) {
                (PatternSubset::All, Some(sh)) => sh.slice(aln, gi, freqs[gi]),
                (PatternSubset::All, None) => {
                    exa_phylo::PartitionSlice::from_subset(gi, &aln.partitions[gi], freqs[gi])
                }
                (PatternSubset::Indices(idx), _) => {
                    let part = aln.partitions[gi].select_patterns(idx);
                    exa_phylo::PartitionSlice::from_subset(gi, &part, freqs[gi])
                }
            }
        })
        .collect();
    let patterns: Vec<usize> = slices.iter().map(|s| s.n_patterns()).collect();
    let mut engine = exa_phylo::Engine::with_config(
        aln.n_taxa(),
        slices,
        spec.rate_model,
        1.0,
        spec.kernel,
        spec.site_repeats,
    );
    engine.set_threads(spec.threads);
    if spec.batch {
        engine.set_batches(pack_batches(
            &patterns,
            spec.clv_categories(),
            BATCH_BUDGET_BYTES,
        ));
    }
    engine
}

/// The global pattern indices of one share, in the local-engine pattern
/// order `materialize`/`build_engine` produce.
fn share_pattern_indices(aln: &CompressedAlignment, share: &PartShare) -> Vec<usize> {
    match &share.patterns {
        PatternSubset::All => (0..aln.partitions[share.global_index].n_patterns()).collect(),
        PatternSubset::Indices(idx) => idx.clone(),
    }
}

/// Capture this rank's per-pattern PSR rates as
/// `(global_partition, global_pattern_indices, rate_bits)` triples, one per
/// share, in share order (which is the engine's local partition order by
/// construction of [`build_engine`]). Returns an empty vector under Γ —
/// there is no per-pattern state to persist. Checkpoint writers gather
/// these triples from every rank and merge them with [`merge_site_rates`].
pub fn capture_site_rates(
    engine: &exa_phylo::Engine,
    assignment: &RankAssignment,
    aln: &CompressedAlignment,
) -> Vec<(usize, Vec<usize>, Vec<u64>)> {
    let mut out = Vec::new();
    for (local, share) in assignment.shares.iter().enumerate() {
        let (_, rates) = engine.model_state(local);
        if !matches!(
            rates,
            exa_phylo::model::rates::RateHeterogeneity::Psr { .. }
        ) {
            return Vec::new();
        }
        let indices = share_pattern_indices(aln, share);
        let bits: Vec<u64> = (0..indices.len())
            .map(|j| {
                rates
                    .pattern_rate(j)
                    .expect("PSR partition has a rate per pattern")
                    .to_bits()
            })
            .collect();
        out.push((share.global_index, indices, bits));
    }
    out
}

/// Merge per-rank [`capture_site_rates`] triples into one full
/// `[global_partition][global_pattern]` rate-bits table. Panics if the
/// shares do not cover every pattern exactly once — a rank assignment that
/// violates that is corrupt.
pub fn merge_site_rates(
    aln: &CompressedAlignment,
    parts: impl IntoIterator<Item = (usize, Vec<usize>, Vec<u64>)>,
) -> Vec<Vec<u64>> {
    let mut table: Vec<Vec<u64>> = aln
        .partitions
        .iter()
        .map(|p| vec![0u64; p.n_patterns()])
        .collect();
    let mut filled: Vec<Vec<bool>> = aln
        .partitions
        .iter()
        .map(|p| vec![false; p.n_patterns()])
        .collect();
    for (gi, indices, bits) in parts {
        assert_eq!(indices.len(), bits.len(), "rate blob length mismatch");
        for (&g, &b) in indices.iter().zip(&bits) {
            assert!(
                !filled[gi][g],
                "pattern {g} of partition {gi} covered twice"
            );
            table[gi][g] = b;
            filled[gi][g] = true;
        }
    }
    for (gi, f) in filled.iter().enumerate() {
        assert!(
            f.iter().all(|&x| x),
            "partition {gi} has uncovered patterns in the PSR rate table"
        );
    }
    table
}

/// Restore this rank's slice of a merged PSR rate table into its engine
/// (checkpoint resume). Rebuilds each share's `Psr` state directly from the
/// stored `f64` bits — first-appearance-unique category rates plus a
/// pattern→category map — so `pattern_rate` is bit-identical to the
/// checkpointed run regardless of how this rank's patterns are now
/// distributed. The caller is responsible for CLV invalidation afterwards
/// (the usual `restore` path does it).
pub fn apply_site_rates(
    engine: &mut exa_phylo::Engine,
    assignment: &RankAssignment,
    aln: &CompressedAlignment,
    table: &[Vec<u64>],
) {
    use std::collections::HashMap;
    for (local, share) in assignment.shares.iter().enumerate() {
        let indices = share_pattern_indices(aln, share);
        let mut category_rates: Vec<f64> = Vec::new();
        let mut by_bits: HashMap<u64, u32> = HashMap::new();
        let pattern_cat: Vec<u32> = indices
            .iter()
            .map(|&g| {
                let bits = table[share.global_index][g];
                *by_bits.entry(bits).or_insert_with(|| {
                    category_rates.push(f64::from_bits(bits));
                    (category_rates.len() - 1) as u32
                })
            })
            .collect();
        let (model, _) = engine.model_state(local);
        engine.set_model_state(
            local,
            model,
            exa_phylo::model::rates::RateHeterogeneity::Psr {
                category_rates,
                pattern_cat,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_bio::alignment::Alignment;
    use exa_bio::partition::PartitionScheme;

    /// Alignment with heterogeneous partition sizes (in unique patterns).
    fn test_alignment(part_lens: &[usize]) -> CompressedAlignment {
        let total: usize = part_lens.iter().sum();
        // Build rows whose columns are all distinct so patterns == sites.
        let n_taxa = 4;
        let mut rows = vec![String::new(); n_taxa];
        for site in 0..total {
            // Encode the site index in base 4 over the 4 taxa.
            let mut v = site;
            for row in rows.iter_mut() {
                row.push(['A', 'C', 'G', 'T'][v % 4]);
                v /= 4;
            }
        }
        let named: Vec<(String, String)> = rows
            .into_iter()
            .enumerate()
            .map(|(i, r)| (format!("t{i}"), r))
            .collect();
        let refs: Vec<(&str, &str)> = named
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_str()))
            .collect();
        let aln = Alignment::from_ascii(&refs).unwrap();
        let scheme = PartitionScheme::from_lengths(part_lens.iter().copied());
        CompressedAlignment::build(&aln, &scheme)
    }

    fn coverage_is_exact(aln: &CompressedAlignment, assignments: &[RankAssignment]) {
        for (pi, part) in aln.partitions.iter().enumerate() {
            let mut seen = vec![0u32; part.n_patterns()];
            for a in assignments {
                for s in &a.shares {
                    if s.global_index != pi {
                        continue;
                    }
                    match &s.patterns {
                        PatternSubset::All => {
                            for c in seen.iter_mut() {
                                *c += 1;
                            }
                        }
                        PatternSubset::Indices(v) => {
                            for &i in v {
                                seen[i] += 1;
                            }
                        }
                    }
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "partition {pi} coverage: {seen:?}"
            );
        }
    }

    #[test]
    fn cyclic_covers_everything_exactly_once() {
        let aln = test_alignment(&[7, 13, 5]);
        let a = distribute(&aln, 4, Strategy::Cyclic);
        coverage_is_exact(&aln, &a);
    }

    #[test]
    fn cyclic_is_balanced_within_one() {
        let aln = test_alignment(&[50, 30, 21]);
        let a = distribute(&aln, 8, Strategy::Cyclic);
        let counts: Vec<usize> = a.iter().map(|x| x.pattern_count(&aln)).collect();
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(mx - mn <= 1, "{counts:?}");
    }

    #[test]
    fn monolithic_covers_everything_exactly_once() {
        let aln = test_alignment(&[9, 4, 17, 3, 8, 8]);
        let a = distribute(&aln, 3, Strategy::MonolithicLpt);
        coverage_is_exact(&aln, &a);
    }

    #[test]
    fn monolithic_never_splits_partitions() {
        let aln = test_alignment(&[9, 4, 17, 3, 8, 8]);
        let a = distribute(&aln, 3, Strategy::MonolithicLpt);
        for rank in &a {
            for s in &rank.shares {
                assert_eq!(s.patterns, PatternSubset::All);
            }
        }
    }

    #[test]
    fn lpt_respects_list_scheduling_bound() {
        // Provable Graham bound: makespan <= total/m + max_item * (m-1)/m.
        let sizes = [37usize, 12, 9, 55, 23, 8, 41, 14, 6, 30, 18, 27];
        let aln = test_alignment(&sizes);
        for m in [2usize, 3, 4, 5] {
            let a = distribute(&aln, m, Strategy::MonolithicLpt);
            let makespan = a.iter().map(|x| x.pattern_count(&aln)).max().unwrap();
            let total: usize = sizes.iter().sum();
            let max_item = *sizes.iter().max().unwrap() as f64;
            let bound = total as f64 / m as f64 + max_item * (m as f64 - 1.0) / m as f64;
            assert!(
                makespan as f64 <= bound + 1e-9,
                "m={m}: makespan {makespan} > bound {bound}"
            );
            // For this instance LPT actually achieves near-perfect balance.
            let opt_lb = (total as f64 / m as f64).max(max_item);
            assert!(
                (makespan as f64) < 1.15 * opt_lb,
                "m={m}: makespan {makespan}"
            );
        }
    }

    #[test]
    fn lpt_separates_the_large_partitions() {
        let sizes = [100usize, 1, 1, 1, 100, 1, 1, 1];
        let aln = test_alignment(&sizes);
        let a = distribute(&aln, 2, Strategy::MonolithicLpt);
        let makespan = a.iter().map(|x| x.pattern_count(&aln)).max().unwrap();
        assert_eq!(makespan, 103);
        let big_owners: Vec<usize> = a
            .iter()
            .enumerate()
            .filter(|(_, x)| {
                x.shares
                    .iter()
                    .any(|s| aln.partitions[s.global_index].n_patterns() == 100)
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(big_owners.len(), 2, "each big partition on its own rank");
    }

    #[test]
    fn more_ranks_than_partitions_leaves_some_empty() {
        let aln = test_alignment(&[5, 5]);
        let a = distribute(&aln, 4, Strategy::MonolithicLpt);
        let nonempty = a.iter().filter(|x| !x.shares.is_empty()).count();
        assert_eq!(nonempty, 2);
        coverage_is_exact(&aln, &a);
    }

    #[test]
    fn single_rank_gets_everything() {
        let aln = test_alignment(&[3, 4, 5]);
        for strat in [Strategy::Cyclic, Strategy::MonolithicLpt] {
            let a = distribute(&aln, 1, strat);
            assert_eq!(a.len(), 1);
            assert_eq!(a[0].pattern_count(&aln), aln.total_patterns());
        }
    }

    #[test]
    fn materialize_builds_correct_subsets() {
        let aln = test_alignment(&[6, 4]);
        let a = distribute(&aln, 2, Strategy::Cyclic);
        let data0 = materialize(&aln, &a[0]);
        let data1 = materialize(&aln, &a[1]);
        let total: usize = data0
            .iter()
            .chain(&data1)
            .map(|(_, p)| p.n_patterns())
            .sum();
        assert_eq!(total, aln.total_patterns());
        // Weighted site counts preserved.
        let wsum: u32 = data0
            .iter()
            .chain(&data1)
            .flat_map(|(_, p)| p.weights.iter())
            .sum();
        assert_eq!(wsum as usize, aln.total_sites());
    }

    #[test]
    fn shared_slices_alias_full_partitions_across_engines() {
        let aln = test_alignment(&[9, 4, 17]);
        let a = distribute(&aln, 2, Strategy::MonolithicLpt);
        let freqs = vec![[0.25; 4]; aln.partitions.len()];
        let shared = SharedSlices::build(&aln);
        let engines: Vec<exa_phylo::Engine> = a
            .iter()
            .map(|asg| {
                build_engine(
                    &aln,
                    asg,
                    &freqs,
                    &EngineSpec::new(
                        exa_phylo::RateModelKind::Gamma,
                        exa_phylo::KernelKind::Scalar,
                        exa_phylo::SiteRepeats::Off,
                    ),
                    Some(&shared),
                )
            })
            .collect();
        for e in &engines {
            for li in 0..e.n_partitions() {
                let s = e.partition_slice(li);
                assert!(
                    Arc::ptr_eq(&s.tips, &shared.tips[s.global_index]),
                    "tips of partition {} are a private copy",
                    s.global_index
                );
                assert!(
                    Arc::ptr_eq(&s.weights, &shared.weights[s.global_index]),
                    "weights of partition {} are a private copy",
                    s.global_index
                );
            }
        }
    }

    #[test]
    fn deterministic_assignments() {
        let aln = test_alignment(&[9, 4, 17, 3, 8, 8]);
        let a = distribute(&aln, 3, Strategy::MonolithicLpt);
        let b = distribute(&aln, 3, Strategy::MonolithicLpt);
        assert_eq!(a, b);
    }

    fn psr_engine(aln: &CompressedAlignment, assignment: &RankAssignment) -> exa_phylo::Engine {
        let freqs = vec![[0.25; 4]; aln.partitions.len()];
        build_engine(
            aln,
            assignment,
            &freqs,
            &EngineSpec::new(
                exa_phylo::RateModelKind::Psr,
                exa_phylo::KernelKind::Scalar,
                exa_phylo::SiteRepeats::Off,
            ),
            None,
        )
    }

    #[test]
    fn site_rates_survive_capture_merge_apply_across_rank_counts() {
        let aln = test_alignment(&[7, 5]);
        // Two cyclic ranks with distinct per-pattern rates.
        let two = distribute(&aln, 2, Strategy::Cyclic);
        let mut engines: Vec<exa_phylo::Engine> = two.iter().map(|a| psr_engine(&aln, a)).collect();
        for (e, a) in engines.iter_mut().zip(&two) {
            for (local, share) in a.shares.iter().enumerate() {
                let globals = share_pattern_indices(&aln, share);
                let rates: Vec<f64> = globals
                    .iter()
                    .map(|&g| 0.25 + 0.125 * (share.global_index * 100 + g) as f64)
                    .collect();
                let pattern_cat: Vec<u32> = (0..rates.len() as u32).collect();
                let (model, _) = e.model_state(local);
                e.set_model_state(
                    local,
                    model,
                    exa_phylo::model::rates::RateHeterogeneity::Psr {
                        category_rates: rates,
                        pattern_cat,
                    },
                );
            }
        }

        // Gather + merge as a checkpoint writer would.
        let table = merge_site_rates(
            &aln,
            engines
                .iter()
                .zip(&two)
                .flat_map(|(e, a)| capture_site_rates(e, a, &aln)),
        );

        // Restore into a single-rank world (elastic resume) and re-capture.
        let one = distribute(&aln, 1, Strategy::Cyclic);
        let mut solo = psr_engine(&aln, &one[0]);
        apply_site_rates(&mut solo, &one[0], &aln, &table);
        let again = merge_site_rates(&aln, capture_site_rates(&solo, &one[0], &aln));
        assert_eq!(table, again, "rate bits must survive redistribution");
    }

    #[test]
    fn gamma_engines_capture_no_site_rates() {
        let aln = test_alignment(&[6]);
        let a = distribute(&aln, 1, Strategy::Cyclic);
        let freqs = vec![[0.25; 4]; 1];
        let e = build_engine(
            &aln,
            &a[0],
            &freqs,
            &EngineSpec::new(
                exa_phylo::RateModelKind::Gamma,
                exa_phylo::KernelKind::Scalar,
                exa_phylo::SiteRepeats::Off,
            ),
            None,
        );
        assert!(capture_site_rates(&e, &a[0], &aln).is_empty());
    }

    #[test]
    fn pack_batches_groups_small_and_isolates_large() {
        // 250-pattern Γ partitions footprint 32 KiB each → 8 per 256 KiB.
        let small = vec![250usize; 20];
        let b = pack_batches(&small, 4, BATCH_BUDGET_BYTES);
        assert_eq!(b, vec![0..8, 8..16, 16..20]);
        // An oversized partition gets its own batch without stalling packing.
        let mixed = [100usize, 50_000, 100, 100];
        let b = pack_batches(&mixed, 4, BATCH_BUDGET_BYTES);
        assert_eq!(b, vec![0..1, 1..2, 2..4]);
        assert!(pack_batches(&[], 4, BATCH_BUDGET_BYTES).is_empty());
    }

    #[test]
    fn build_engine_packs_batches_deterministically_from_the_assignment() {
        let aln = test_alignment(&[40, 40, 40, 40]);
        let a = distribute(&aln, 1, Strategy::MonolithicLpt);
        let freqs = vec![[0.25; 4]; aln.partitions.len()];
        let spec = EngineSpec::new(
            exa_phylo::RateModelKind::Gamma,
            exa_phylo::KernelKind::Scalar,
            exa_phylo::SiteRepeats::Off,
        );
        let e1 = build_engine(&aln, &a[0], &freqs, &spec, None);
        let e2 = build_engine(&aln, &a[0], &freqs, &spec, None);
        assert_eq!(e1.batch_count(), e2.batch_count());
        // 40 patterns × 4 cats × 32 B = 5120 B → all four fit one batch.
        assert_eq!(e1.batch_count(), 1);
        let unbatched = build_engine(
            &aln,
            &a[0],
            &freqs,
            &EngineSpec {
                batch: false,
                ..spec
            },
            None,
        );
        assert_eq!(unbatched.batch_count(), 4);
    }
}

#[cfg(test)]
mod pack_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Packing is a permutation-free exact cover: every partition index
        /// appears in exactly one batch, batches are consecutive and in
        /// order, and the per-partition pattern slices are untouched (the
        /// input is never reordered). Also deterministic across calls.
        #[test]
        fn packing_is_a_permutation_free_exact_cover(
            patterns in prop::collection::vec(0usize..4000, 0..80),
            cats in prop::sample::select(vec![1usize, 4]),
            budget in 1usize..(1 << 20),
        ) {
            let batches = pack_batches(&patterns, cats, budget);
            // Exact consecutive cover in input order.
            let mut next = 0usize;
            for r in &batches {
                prop_assert_eq!(r.start, next);
                prop_assert!(r.end > r.start);
                next = r.end;
            }
            prop_assert_eq!(next, patterns.len());
            // Deterministic.
            prop_assert_eq!(batches.clone(), pack_batches(&patterns, cats, budget));
            // Budget respected except for unavoidable singletons.
            for r in &batches {
                let fill: usize = patterns[r.start..r.end]
                    .iter()
                    .map(|&p| p * cats * 4 * 8)
                    .sum();
                prop_assert!(
                    fill <= budget || r.end - r.start == 1,
                    "over-budget multi-partition batch {:?}", r
                );
            }
        }
    }
}
