//! Load-balance metrics for rank assignments.

use crate::RankAssignment;
use exa_bio::patterns::CompressedAlignment;
use serde::{Deserialize, Serialize};

/// Balance summary of one distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalanceStats {
    /// Patterns on the most-loaded rank (the makespan — parallel runtime is
    /// proportional to this).
    pub max_load: usize,
    /// Patterns on the least-loaded rank.
    pub min_load: usize,
    /// Mean patterns per rank.
    pub mean_load: f64,
    /// `max_load / mean_load` — 1.0 is perfect balance.
    pub imbalance: f64,
    /// Total number of (rank, partition) shares — the per-partition
    /// bookkeeping overhead cyclic distribution multiplies up.
    pub total_shares: usize,
}

/// Compute balance statistics for a distribution.
pub fn balance_stats(aln: &CompressedAlignment, assignments: &[RankAssignment]) -> BalanceStats {
    assert!(!assignments.is_empty());
    let loads: Vec<usize> = assignments.iter().map(|a| a.pattern_count(aln)).collect();
    let max_load = *loads.iter().max().unwrap();
    let min_load = *loads.iter().min().unwrap();
    let mean_load = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
    let imbalance = if mean_load > 0.0 {
        max_load as f64 / mean_load
    } else {
        1.0
    };
    let total_shares = assignments.iter().map(|a| a.shares.len()).sum();
    BalanceStats {
        max_load,
        min_load,
        mean_load,
        imbalance,
        total_shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distribute, Strategy};
    use exa_bio::alignment::Alignment;
    use exa_bio::partition::PartitionScheme;
    use exa_bio::patterns::CompressedAlignment;

    fn alignment(part_lens: &[usize]) -> CompressedAlignment {
        let total: usize = part_lens.iter().sum();
        let mut rows = vec![String::new(); 4];
        for site in 0..total {
            let mut v = site;
            for row in rows.iter_mut() {
                row.push(['A', 'C', 'G', 'T'][v % 4]);
                v /= 4;
            }
        }
        let named: Vec<(String, String)> = rows
            .into_iter()
            .enumerate()
            .map(|(i, r)| (format!("t{i}"), r))
            .collect();
        let refs: Vec<(&str, &str)> = named
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_str()))
            .collect();
        let aln = Alignment::from_ascii(&refs).unwrap();
        CompressedAlignment::build(
            &aln,
            &PartitionScheme::from_lengths(part_lens.iter().copied()),
        )
    }

    #[test]
    fn cyclic_imbalance_is_near_one() {
        let aln = alignment(&[40, 30, 30]);
        let a = distribute(&aln, 8, Strategy::Cyclic);
        let s = balance_stats(&aln, &a);
        assert!(s.imbalance < 1.1, "{s:?}");
        assert!(s.max_load - s.min_load <= 1);
    }

    #[test]
    fn cyclic_has_many_more_shares_than_monolithic() {
        // The bookkeeping-overhead story behind MPS: with many partitions
        // and cyclic distribution, shares ~ partitions × ranks.
        let sizes: Vec<usize> = vec![12; 64];
        let aln = alignment(&sizes);
        let ranks = 8;
        let cyc = balance_stats(&aln, &distribute(&aln, ranks, Strategy::Cyclic));
        let mps = balance_stats(&aln, &distribute(&aln, ranks, Strategy::MonolithicLpt));
        assert_eq!(mps.total_shares, 64);
        assert!(
            cyc.total_shares > 4 * mps.total_shares,
            "{} vs {}",
            cyc.total_shares,
            mps.total_shares
        );
    }

    #[test]
    fn monolithic_imbalance_bounded_for_uniform_partitions() {
        let sizes: Vec<usize> = vec![10; 100];
        let aln = alignment(&sizes);
        let a = distribute(&aln, 4, Strategy::MonolithicLpt);
        let s = balance_stats(&aln, &a);
        assert!((s.imbalance - 1.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn mean_load_matches_total() {
        let aln = alignment(&[7, 9, 11]);
        let a = distribute(&aln, 3, Strategy::Cyclic);
        let s = balance_stats(&aln, &a);
        assert!((s.mean_load * 3.0 - aln.total_patterns() as f64).abs() < 1e-9);
    }
}
