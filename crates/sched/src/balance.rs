//! Load-balance metrics for rank assignments.

use crate::RankAssignment;
use exa_bio::patterns::CompressedAlignment;
use serde::{Deserialize, Serialize};

/// Balance summary of one distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalanceStats {
    /// Patterns on the most-loaded rank (the makespan — parallel runtime is
    /// proportional to this).
    pub max_load: usize,
    /// Patterns on the least-loaded rank.
    pub min_load: usize,
    /// Mean patterns per rank.
    pub mean_load: f64,
    /// `max_load / mean_load` — 1.0 is perfect balance.
    pub imbalance: f64,
    /// Total number of (rank, partition) shares — the per-partition
    /// bookkeeping overhead cyclic distribution multiplies up.
    pub total_shares: usize,
}

/// Compute balance statistics for a distribution.
pub fn balance_stats(aln: &CompressedAlignment, assignments: &[RankAssignment]) -> BalanceStats {
    assert!(!assignments.is_empty());
    let loads: Vec<usize> = assignments.iter().map(|a| a.pattern_count(aln)).collect();
    let max_load = *loads.iter().max().unwrap();
    let min_load = *loads.iter().min().unwrap();
    let mean_load = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
    let imbalance = if mean_load > 0.0 {
        max_load as f64 / mean_load
    } else {
        1.0
    };
    let total_shares = assignments.iter().map(|a| a.shares.len()).sum();
    BalanceStats {
        max_load,
        min_load,
        mean_load,
        imbalance,
        total_shares,
    }
}

/// Balance summary computed from **measured** per-rank kernel time rather
/// than predicted pattern counts. Input is the trace's kernel profile
/// (`exa_obs::KernelProfile::per_rank`), passed as plain slices so the
/// scheduler needs no dependency on the tracing crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredBalance {
    /// Total measured kernel nanoseconds per rank.
    pub per_rank_ns: Vec<u64>,
    /// Most-loaded rank's time (the measured makespan).
    pub max_ns: u64,
    /// Least-loaded rank's time.
    pub min_ns: u64,
    /// Mean time per rank.
    pub mean_ns: f64,
    /// `max_ns / mean_ns` — 1.0 is perfect balance, 0.0 means nothing was
    /// measured.
    pub imbalance: f64,
    /// The `top_n` hottest global partitions as `(partition, total ns)`
    /// summed across ranks, hottest first.
    pub hottest: Vec<(u32, u64)>,
}

/// Aggregate measured per-rank × per-partition kernel durations into a
/// balance summary. `per_rank[r]` holds rank `r`'s `(global partition,
/// total ns)` pairs (duplicate partition entries are summed).
pub fn measured_balance(per_rank: &[Vec<(u32, u64)>], top_n: usize) -> MeasuredBalance {
    let per_rank_ns: Vec<u64> = per_rank
        .iter()
        .map(|parts| parts.iter().map(|&(_, ns)| ns).sum())
        .collect();
    let max_ns = per_rank_ns.iter().copied().max().unwrap_or(0);
    let min_ns = per_rank_ns.iter().copied().min().unwrap_or(0);
    let total: u64 = per_rank_ns.iter().sum();
    let mean_ns = if per_rank_ns.is_empty() {
        0.0
    } else {
        total as f64 / per_rank_ns.len() as f64
    };
    let imbalance = if mean_ns > 0.0 {
        max_ns as f64 / mean_ns
    } else {
        0.0
    };
    let mut by_partition: Vec<(u32, u64)> = Vec::new();
    for parts in per_rank {
        for &(p, ns) in parts {
            match by_partition.binary_search_by_key(&p, |&(q, _)| q) {
                Ok(i) => by_partition[i].1 += ns,
                Err(i) => by_partition.insert(i, (p, ns)),
            }
        }
    }
    // Hottest first; ties broken by partition index for determinism.
    by_partition.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    by_partition.truncate(top_n);
    MeasuredBalance {
        per_rank_ns,
        max_ns,
        min_ns,
        mean_ns,
        imbalance,
        hottest: by_partition,
    }
}

impl MeasuredBalance {
    /// Measured-vs-predicted ratio: how much worse (or better) the real
    /// imbalance is than the scheduler's pattern-count prediction. `None`
    /// when either side has no data.
    pub fn ratio_to_predicted(&self, predicted: &BalanceStats) -> Option<f64> {
        if self.imbalance > 0.0 && predicted.imbalance > 0.0 {
            Some(self.imbalance / predicted.imbalance)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distribute, Strategy};
    use exa_bio::alignment::Alignment;
    use exa_bio::partition::PartitionScheme;
    use exa_bio::patterns::CompressedAlignment;

    fn alignment(part_lens: &[usize]) -> CompressedAlignment {
        let total: usize = part_lens.iter().sum();
        let mut rows = vec![String::new(); 4];
        for site in 0..total {
            let mut v = site;
            for row in rows.iter_mut() {
                row.push(['A', 'C', 'G', 'T'][v % 4]);
                v /= 4;
            }
        }
        let named: Vec<(String, String)> = rows
            .into_iter()
            .enumerate()
            .map(|(i, r)| (format!("t{i}"), r))
            .collect();
        let refs: Vec<(&str, &str)> = named
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_str()))
            .collect();
        let aln = Alignment::from_ascii(&refs).unwrap();
        CompressedAlignment::build(
            &aln,
            &PartitionScheme::from_lengths(part_lens.iter().copied()),
        )
    }

    #[test]
    fn cyclic_imbalance_is_near_one() {
        let aln = alignment(&[40, 30, 30]);
        let a = distribute(&aln, 8, Strategy::Cyclic);
        let s = balance_stats(&aln, &a);
        assert!(s.imbalance < 1.1, "{s:?}");
        assert!(s.max_load - s.min_load <= 1);
    }

    #[test]
    fn cyclic_has_many_more_shares_than_monolithic() {
        // The bookkeeping-overhead story behind MPS: with many partitions
        // and cyclic distribution, shares ~ partitions × ranks.
        let sizes: Vec<usize> = vec![12; 64];
        let aln = alignment(&sizes);
        let ranks = 8;
        let cyc = balance_stats(&aln, &distribute(&aln, ranks, Strategy::Cyclic));
        let mps = balance_stats(&aln, &distribute(&aln, ranks, Strategy::MonolithicLpt));
        assert_eq!(mps.total_shares, 64);
        assert!(
            cyc.total_shares > 4 * mps.total_shares,
            "{} vs {}",
            cyc.total_shares,
            mps.total_shares
        );
    }

    #[test]
    fn monolithic_imbalance_bounded_for_uniform_partitions() {
        let sizes: Vec<usize> = vec![10; 100];
        let aln = alignment(&sizes);
        let a = distribute(&aln, 4, Strategy::MonolithicLpt);
        let s = balance_stats(&aln, &a);
        assert!((s.imbalance - 1.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn measured_balance_aggregates_ranks_and_partitions() {
        // Rank 0: 300 ns total, rank 1: 100 ns → mean 200, imbalance 1.5.
        let per_rank = vec![vec![(0u32, 100u64), (2, 200)], vec![(1, 60), (2, 40)]];
        let m = measured_balance(&per_rank, 2);
        assert_eq!(m.per_rank_ns, vec![300, 100]);
        assert_eq!(m.max_ns, 300);
        assert_eq!(m.min_ns, 100);
        assert!((m.mean_ns - 200.0).abs() < 1e-12);
        assert!((m.imbalance - 1.5).abs() < 1e-12);
        // Partition totals: p2 = 240, p0 = 100, p1 = 60 → top-2 keeps p2, p0.
        assert_eq!(m.hottest, vec![(2, 240), (0, 100)]);
    }

    #[test]
    fn measured_balance_handles_empty_input() {
        let m = measured_balance(&[], 3);
        assert_eq!(m.imbalance, 0.0);
        assert!(m.hottest.is_empty());
        let m = measured_balance(&[vec![], vec![]], 3);
        assert_eq!(m.imbalance, 0.0);
        assert_eq!(m.per_rank_ns, vec![0, 0]);
    }

    #[test]
    fn measured_vs_predicted_ratio() {
        let aln = alignment(&[40, 30, 30]);
        let a = distribute(&aln, 2, Strategy::Cyclic);
        let predicted = balance_stats(&aln, &a);
        let m = measured_balance(&[vec![(0, 120)], vec![(0, 80)]], 1);
        let ratio = m.ratio_to_predicted(&predicted).unwrap();
        assert!((ratio - m.imbalance / predicted.imbalance).abs() < 1e-12);
        let empty = measured_balance(&[], 1);
        assert_eq!(empty.ratio_to_predicted(&predicted), None);
    }

    #[test]
    fn mean_load_matches_total() {
        let aln = alignment(&[7, 9, 11]);
        let a = distribute(&aln, 3, Strategy::Cyclic);
        let s = balance_stats(&aln, &a);
        assert!((s.mean_load * 3.0 - aln.total_patterns() as f64).abs() < 1e-9);
    }
}
