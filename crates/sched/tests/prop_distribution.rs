//! Property-based tests of the data-distribution strategies: exact
//! coverage, balance bounds, and the LPT approximation guarantee for
//! arbitrary partition-size profiles.

use exa_bio::alignment::Alignment;
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_sched::{distribute, PatternSubset, Strategy};
use proptest::prelude::*;

/// Alignment whose columns are all distinct so pattern counts equal the
/// requested per-partition lengths exactly.
fn alignment_with_sizes(sizes: &[usize]) -> CompressedAlignment {
    let total: usize = sizes.iter().sum();
    let mut rows = vec![String::new(); 6];
    for site in 0..total {
        let mut v = site;
        for row in rows.iter_mut() {
            row.push(['A', 'C', 'G', 'T'][v % 4]);
            v /= 4;
        }
    }
    let named: Vec<(String, String)> = rows
        .into_iter()
        .enumerate()
        .map(|(i, r)| (format!("t{i}"), r))
        .collect();
    let refs: Vec<(&str, &str)> = named
        .iter()
        .map(|(n, r)| (n.as_str(), r.as_str()))
        .collect();
    let aln = Alignment::from_ascii(&refs).unwrap();
    CompressedAlignment::build(&aln, &PartitionScheme::from_lengths(sizes.iter().copied()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_pattern_assigned_exactly_once(
        sizes in prop::collection::vec(1usize..30, 1..12),
        ranks in 1usize..9,
        strategy in prop::sample::select(vec![Strategy::Cyclic, Strategy::MonolithicLpt]),
    ) {
        let aln = alignment_with_sizes(&sizes);
        let assignments = distribute(&aln, ranks, strategy);
        prop_assert_eq!(assignments.len(), ranks);
        for (pi, part) in aln.partitions.iter().enumerate() {
            let mut seen = vec![0u32; part.n_patterns()];
            for a in &assignments {
                for s in &a.shares {
                    if s.global_index != pi { continue; }
                    match &s.patterns {
                        PatternSubset::All => seen.iter_mut().for_each(|c| *c += 1),
                        PatternSubset::Indices(v) => {
                            for &i in v { seen[i] += 1; }
                        }
                    }
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1), "partition {}: {:?}", pi, seen);
        }
    }

    #[test]
    fn cyclic_balances_within_one(
        sizes in prop::collection::vec(1usize..30, 1..12),
        ranks in 1usize..9,
    ) {
        let aln = alignment_with_sizes(&sizes);
        let assignments = distribute(&aln, ranks, Strategy::Cyclic);
        let loads: Vec<usize> = assignments.iter().map(|a| a.pattern_count(&aln)).collect();
        let mn = loads.iter().min().unwrap();
        let mx = loads.iter().max().unwrap();
        prop_assert!(mx - mn <= 1, "{:?}", loads);
    }

    #[test]
    fn lpt_meets_list_scheduling_bound(
        sizes in prop::collection::vec(1usize..50, 1..16),
        ranks in 1usize..7,
    ) {
        // Provable bound (Graham list scheduling, which LPT refines):
        //   makespan <= total/m + max_item * (m-1)/m.
        // (Graham's tighter 4/3 factor is relative to the true OPT, which
        // is NP-hard to compute, so it cannot be asserted directly.)
        let aln = alignment_with_sizes(&sizes);
        let assignments = distribute(&aln, ranks, Strategy::MonolithicLpt);
        let makespan = assignments.iter().map(|a| a.pattern_count(&aln)).max().unwrap();
        let total: usize = sizes.iter().sum();
        let m = ranks as f64;
        let max_item = *sizes.iter().max().unwrap() as f64;
        let bound = total as f64 / m + max_item * (m - 1.0) / m;
        prop_assert!(makespan as f64 <= bound + 1e-9,
            "makespan {} exceeds list-scheduling bound {} (sizes {:?}, ranks {})",
            makespan, bound, sizes, ranks);
        // And never below the trivial lower bounds.
        let opt_lb = (total as f64 / m).max(max_item);
        prop_assert!(makespan as f64 >= opt_lb - 1e-9);
    }

    #[test]
    fn monolithic_keeps_partitions_whole(
        sizes in prop::collection::vec(1usize..30, 1..12),
        ranks in 1usize..9,
    ) {
        let aln = alignment_with_sizes(&sizes);
        let assignments = distribute(&aln, ranks, Strategy::MonolithicLpt);
        for a in &assignments {
            for s in &a.shares {
                prop_assert_eq!(&s.patterns, &PatternSubset::All);
            }
        }
    }
}
