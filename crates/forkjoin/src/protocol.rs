//! The master→worker command protocol and its compact binary wire format.
//!
//! Sizes follow the paper's byte-counting conventions (Table I): node ids
//! are 4 bytes, branch lengths and parameters 8 bytes. The one-byte command
//! tag and small fixed headers are included — they are what a real
//! implementation would send too.

use exa_phylo::tree::traversal::{
    GradSource, GradStep, GradientPlan, TraversalDescriptor, TraversalEntry,
};

/// Commands the master broadcasts to the workers.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerCmd {
    /// Execute a traversal descriptor, then evaluate at its virtual root
    /// and reduce the overall log-likelihood (one double) to the master.
    Evaluate(TraversalDescriptor),
    /// As `Evaluate`, but reduce the full per-partition log-likelihood
    /// vector (model optimization).
    EvaluatePartitioned(TraversalDescriptor),
    /// Execute a descriptor and build derivative sumtables for its root.
    PrepareDerivatives(TraversalDescriptor),
    /// Compute derivatives at the candidate branch length(s) and reduce.
    Derivatives(Vec<f64>),
    /// Install new Γ shapes for all partitions.
    SetAlphas(Vec<f64>),
    /// Install new values of free GTR rate `index` for all partitions.
    SetGtrRate { index: u8, values: Vec<f64> },
    /// Optimize PSR per-site rates locally (full descriptor supplied) and
    /// reduce the normalization sums.
    OptimizeSiteRates(TraversalDescriptor),
    /// Apply the PSR normalization scale.
    SetPsrScale(f64),
    /// End of run.
    Shutdown,
    /// Checkpoint support: gather each worker's data-local PSR per-pattern
    /// rates to the master (workers answer with a
    /// [`encode_site_rate_capture`] blob on a gather).
    GatherSiteRates,
    /// Restart support: install a full per-pattern PSR rate table
    /// (`table[partition][pattern]` = rate bits); each worker applies its
    /// own slice.
    SetSiteRates(Vec<Vec<u64>>),
    /// Execute the descriptor (orienting every inward CLV toward the plan's
    /// root edge), then run the one-pass full-tree gradient sweep over the
    /// plan and join the single fat `[d1 | d2]` reduction. One broadcast +
    /// one collective replace a whole smoothing pass's per-edge
    /// prepare/derivative command pairs.
    Gradient {
        descriptor: TraversalDescriptor,
        plan: GradientPlan,
    },
}

const TAG_EVALUATE: u8 = 1;
const TAG_PREPARE: u8 = 2;
const TAG_DERIVATIVES: u8 = 3;
const TAG_SET_ALPHAS: u8 = 4;
const TAG_SET_GTR: u8 = 5;
const TAG_OPT_SITE_RATES: u8 = 6;
const TAG_SET_PSR_SCALE: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_EVALUATE_PARTITIONED: u8 = 9;
const TAG_GATHER_SITE_RATES: u8 = 10;
const TAG_SET_SITE_RATES: u8 = 11;
const TAG_GRADIENT: u8 = 12;

/// Wire encoding of [`GradSource::from_outside`]'s `None` (node ids are
/// bounded by `2n - 2`, so the sentinel can never collide).
const NO_OUTSIDE: u32 = u32::MAX;

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f64(v);
        }
    }
    fn descriptor(&mut self, d: &TraversalDescriptor) {
        self.u32(d.entries.len() as u32);
        for e in &d.entries {
            self.u32(e.parent as u32);
            self.u32(e.left as u32);
            self.u32(e.right as u32);
            self.f64s(&e.left_lengths);
            self.f64s(&e.right_lengths);
        }
        self.u32(d.root_a as u32);
        self.u32(d.root_b as u32);
        self.f64s(&d.root_lengths);
    }
    fn grad_source(&mut self, s: &GradSource) {
        self.u32(s.node as u32);
        self.u32(s.from_outside.map_or(NO_OUTSIDE, |e| e as u32));
        self.f64s(&s.lengths);
    }
    fn plan(&mut self, p: &GradientPlan) {
        self.u32(p.root_edge as u32);
        self.u32(p.root_a as u32);
        self.u32(p.root_b as u32);
        self.f64s(&p.root_lengths);
        self.u32(p.n_edges as u32);
        self.u32(p.steps.len() as u32);
        for s in &p.steps {
            self.u32(s.edge as u32);
            self.u32(s.parent as u32);
            self.u32(s.child as u32);
            self.u8(s.swap_sides as u8);
            self.f64s(&s.lengths);
            self.grad_source(&s.left);
            self.grad_source(&s.right);
        }
    }
}

struct R<'a> {
    b: &'a [u8],
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.b.len() {
            return Err(DecodeError(format!(
                "truncated command at byte {}",
                self.pos
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64s(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.b.len() {
            return Err(DecodeError(format!("implausible f64 array length {n}")));
        }
        (0..n).map(|_| self.f64()).collect()
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u64s(&mut self) -> Result<Vec<u64>, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.b.len() {
            return Err(DecodeError(format!("implausible u64 array length {n}")));
        }
        (0..n).map(|_| self.u64()).collect()
    }
    fn descriptor(&mut self) -> Result<TraversalDescriptor, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.b.len() {
            return Err(DecodeError(format!("implausible entry count {n}")));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let parent = self.u32()? as usize;
            let left = self.u32()? as usize;
            let right = self.u32()? as usize;
            let left_lengths = self.f64s()?;
            let right_lengths = self.f64s()?;
            entries.push(TraversalEntry {
                parent,
                left,
                right,
                left_lengths,
                right_lengths,
            });
        }
        let root_a = self.u32()? as usize;
        let root_b = self.u32()? as usize;
        let root_lengths = self.f64s()?;
        Ok(TraversalDescriptor {
            entries,
            root_a,
            root_b,
            root_lengths,
        })
    }
    fn grad_source(&mut self) -> Result<GradSource, DecodeError> {
        let node = self.u32()? as usize;
        let outside = self.u32()?;
        let lengths = self.f64s()?;
        Ok(GradSource {
            node,
            lengths,
            from_outside: (outside != NO_OUTSIDE).then_some(outside as usize),
        })
    }
    fn plan(&mut self) -> Result<GradientPlan, DecodeError> {
        let root_edge = self.u32()? as usize;
        let root_a = self.u32()? as usize;
        let root_b = self.u32()? as usize;
        let root_lengths = self.f64s()?;
        let n_edges = self.u32()? as usize;
        let n_steps = self.u32()? as usize;
        if n_steps > self.b.len() {
            return Err(DecodeError(format!("implausible step count {n_steps}")));
        }
        let mut steps = Vec::with_capacity(n_steps);
        for _ in 0..n_steps {
            let edge = self.u32()? as usize;
            let parent = self.u32()? as usize;
            let child = self.u32()? as usize;
            let swap_sides = self.u8()? != 0;
            let lengths = self.f64s()?;
            let left = self.grad_source()?;
            let right = self.grad_source()?;
            steps.push(GradStep {
                edge,
                parent,
                child,
                lengths,
                swap_sides,
                left,
                right,
            });
        }
        Ok(GradientPlan {
            root_edge,
            root_a,
            root_b,
            root_lengths,
            n_edges,
            steps,
        })
    }
}

/// Encode a command for broadcast.
pub fn encode(cmd: &WorkerCmd) -> Vec<u8> {
    let mut w = W(Vec::new());
    match cmd {
        WorkerCmd::Evaluate(d) => {
            w.u8(TAG_EVALUATE);
            w.descriptor(d);
        }
        WorkerCmd::EvaluatePartitioned(d) => {
            w.u8(TAG_EVALUATE_PARTITIONED);
            w.descriptor(d);
        }
        WorkerCmd::PrepareDerivatives(d) => {
            w.u8(TAG_PREPARE);
            w.descriptor(d);
        }
        WorkerCmd::Derivatives(ts) => {
            w.u8(TAG_DERIVATIVES);
            w.f64s(ts);
        }
        WorkerCmd::SetAlphas(a) => {
            w.u8(TAG_SET_ALPHAS);
            w.f64s(a);
        }
        WorkerCmd::SetGtrRate { index, values } => {
            w.u8(TAG_SET_GTR);
            w.u8(*index);
            w.f64s(values);
        }
        WorkerCmd::OptimizeSiteRates(d) => {
            w.u8(TAG_OPT_SITE_RATES);
            w.descriptor(d);
        }
        WorkerCmd::SetPsrScale(s) => {
            w.u8(TAG_SET_PSR_SCALE);
            w.f64(*s);
        }
        WorkerCmd::Gradient { descriptor, plan } => {
            w.u8(TAG_GRADIENT);
            w.descriptor(descriptor);
            w.plan(plan);
        }
        WorkerCmd::Shutdown => w.u8(TAG_SHUTDOWN),
        WorkerCmd::GatherSiteRates => w.u8(TAG_GATHER_SITE_RATES),
        WorkerCmd::SetSiteRates(table) => {
            w.u8(TAG_SET_SITE_RATES);
            w.u32(table.len() as u32);
            for part in table {
                w.u64s(part);
            }
        }
    }
    w.0
}

/// One share's PSR rate capture: the global partition index, its global
/// pattern indices, and the rate bits.
pub type SiteRateShare = (usize, Vec<usize>, Vec<u64>);

/// Encode one rank's data-local PSR rate capture (the gather payload
/// answering [`WorkerCmd::GatherSiteRates`]): per share, the global
/// partition index, its global pattern indices, and the rate bits.
pub fn encode_site_rate_capture(parts: &[SiteRateShare]) -> Vec<u8> {
    let mut w = W(Vec::new());
    w.u32(parts.len() as u32);
    for (global, patterns, rates) in parts {
        w.u32(*global as u32);
        w.u32(patterns.len() as u32);
        for &p in patterns {
            w.u32(p as u32);
        }
        w.u64s(rates);
    }
    w.0
}

/// Decode a [`encode_site_rate_capture`] blob.
pub fn decode_site_rate_capture(bytes: &[u8]) -> Result<Vec<SiteRateShare>, DecodeError> {
    let mut r = R { b: bytes, pos: 0 };
    let n = r.u32()? as usize;
    if n > bytes.len() {
        return Err(DecodeError(format!("implausible share count {n}")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let global = r.u32()? as usize;
        let np = r.u32()? as usize;
        if np > bytes.len() {
            return Err(DecodeError(format!("implausible pattern count {np}")));
        }
        let patterns = (0..np)
            .map(|_| r.u32().map(|v| v as usize))
            .collect::<Result<Vec<_>, _>>()?;
        let rates = r.u64s()?;
        out.push((global, patterns, rates));
    }
    if r.pos != bytes.len() {
        return Err(DecodeError(format!(
            "{} trailing bytes",
            bytes.len() - r.pos
        )));
    }
    Ok(out)
}

/// Decode a broadcast command.
pub fn decode(bytes: &[u8]) -> Result<WorkerCmd, DecodeError> {
    let mut r = R { b: bytes, pos: 0 };
    let cmd = match r.u8()? {
        TAG_EVALUATE => WorkerCmd::Evaluate(r.descriptor()?),
        TAG_EVALUATE_PARTITIONED => WorkerCmd::EvaluatePartitioned(r.descriptor()?),
        TAG_PREPARE => WorkerCmd::PrepareDerivatives(r.descriptor()?),
        TAG_DERIVATIVES => WorkerCmd::Derivatives(r.f64s()?),
        TAG_SET_ALPHAS => WorkerCmd::SetAlphas(r.f64s()?),
        TAG_SET_GTR => {
            let index = r.u8()?;
            WorkerCmd::SetGtrRate {
                index,
                values: r.f64s()?,
            }
        }
        TAG_OPT_SITE_RATES => WorkerCmd::OptimizeSiteRates(r.descriptor()?),
        TAG_SET_PSR_SCALE => WorkerCmd::SetPsrScale(r.f64()?),
        TAG_SHUTDOWN => WorkerCmd::Shutdown,
        TAG_GATHER_SITE_RATES => WorkerCmd::GatherSiteRates,
        TAG_SET_SITE_RATES => {
            let n = r.u32()? as usize;
            if n > bytes.len() {
                return Err(DecodeError(format!("implausible partition count {n}")));
            }
            let table = (0..n).map(|_| r.u64s()).collect::<Result<Vec<_>, _>>()?;
            WorkerCmd::SetSiteRates(table)
        }
        TAG_GRADIENT => WorkerCmd::Gradient {
            descriptor: r.descriptor()?,
            plan: r.plan()?,
        },
        t => return Err(DecodeError(format!("unknown command tag {t}"))),
    };
    if r.pos != bytes.len() {
        return Err(DecodeError(format!(
            "{} trailing bytes",
            bytes.len() - r.pos
        )));
    }
    Ok(cmd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_phylo::tree::Tree;

    fn sample_descriptor(blens: usize) -> TraversalDescriptor {
        let mut t = Tree::random(8, blens, 3);
        t.full_traversal_descriptor(2)
    }

    #[test]
    fn roundtrip_all_commands() {
        let cmds = vec![
            WorkerCmd::Evaluate(sample_descriptor(1)),
            WorkerCmd::EvaluatePartitioned(sample_descriptor(2)),
            WorkerCmd::PrepareDerivatives(sample_descriptor(3)),
            WorkerCmd::Derivatives(vec![0.1, 0.2, 0.3]),
            WorkerCmd::SetAlphas(vec![0.5; 10]),
            WorkerCmd::SetGtrRate {
                index: 3,
                values: vec![1.0, 2.0],
            },
            WorkerCmd::OptimizeSiteRates(sample_descriptor(1)),
            WorkerCmd::SetPsrScale(1.25),
            WorkerCmd::Shutdown,
            WorkerCmd::GatherSiteRates,
            WorkerCmd::SetSiteRates(vec![
                vec![1.0f64.to_bits(), 2.5f64.to_bits()],
                vec![0.25f64.to_bits()],
            ]),
            WorkerCmd::Gradient {
                descriptor: sample_descriptor(1),
                plan: Tree::random(8, 1, 3).gradient_plan(2),
            },
            WorkerCmd::Gradient {
                descriptor: sample_descriptor(4),
                plan: Tree::random(8, 4, 3).gradient_plan(2),
            },
        ];
        for cmd in cmds {
            let bytes = encode(&cmd);
            let back = decode(&bytes).unwrap();
            assert_eq!(cmd, back);
        }
    }

    #[test]
    fn descriptor_wire_size_tracks_paper_convention() {
        // Encoded size should be within a small constant of the paper's
        // theoretical wire_bytes (tag + per-entry/array length prefixes).
        let d = sample_descriptor(1);
        let bytes = encode(&WorkerCmd::Evaluate(d.clone()));
        let theoretical = d.wire_bytes();
        let overhead = bytes.len() as u64 - theoretical;
        // 1 tag + 3 u32 array-length prefixes per entry + 1 for root.
        assert!(
            overhead <= 1 + 8 * (d.entries.len() as u64 + 1),
            "overhead {overhead} too large for {} entries",
            d.entries.len()
        );
    }

    #[test]
    fn per_partition_lengths_inflate_descriptor() {
        let d1 = encode(&WorkerCmd::Evaluate(sample_descriptor(1)));
        let d10 = encode(&WorkerCmd::Evaluate(sample_descriptor(10)));
        assert!(d10.len() > 4 * d1.len(), "{} vs {}", d10.len(), d1.len());
    }

    #[test]
    fn rejects_corrupt_input() {
        let good = encode(&WorkerCmd::SetAlphas(vec![1.0, 2.0]));
        assert!(decode(&good[..good.len() - 3]).is_err());
        assert!(decode(&[99]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err());
    }

    #[test]
    fn site_rate_capture_roundtrips_and_rejects_corruption() {
        let parts = vec![
            (0usize, vec![0usize, 2, 4], vec![1.0f64.to_bits(); 3]),
            (3usize, vec![1usize], vec![0.5f64.to_bits()]),
        ];
        let bytes = encode_site_rate_capture(&parts);
        assert_eq!(decode_site_rate_capture(&bytes).unwrap(), parts);
        assert!(decode_site_rate_capture(&bytes[..bytes.len() - 2]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(7);
        assert!(decode_site_rate_capture(&trailing).is_err());
    }
}
