//! The worker loop: §III-A's tree-agnostic kernel executor.
//!
//! "The worker processes are agnostic regarding the semantics of the tree
//! search and only execute one of the three likelihood functions […] on the
//! fraction of the data that has been assigned to them."

use crate::protocol::{decode, encode_site_rate_capture, WorkerCmd};
use exa_bio::patterns::CompressedAlignment;
use exa_comm::{BinnedSum, CommCategory, Rank, ReduceKind};
use exa_phylo::engine::{Engine, WorkCounters};
use exa_phylo::tree::traversal::TraversalDescriptor;
use exa_search::BranchMode;

/// Cached handle for the worker-pool command counter: one relaxed atomic
/// add per broadcast command once resolved.
fn commands_counter() -> &'static std::sync::Arc<exa_obs::metrics::Counter> {
    static HANDLE: std::sync::OnceLock<std::sync::Arc<exa_obs::metrics::Counter>> =
        std::sync::OnceLock::new();
    HANDLE.get_or_init(|| {
        exa_obs::metrics::global().counter(
            "exa_forkjoin_commands_total",
            "Master commands executed by fork-join workers, summed over workers.",
            &[],
        )
    })
}

/// Run the worker until the master broadcasts `Shutdown`. Returns the
/// worker's kernel-work counters and CLV memory footprint. The worker's
/// data `assignment` (and the alignment) are needed for the checkpoint
/// commands, which translate local PSR rates to/from global pattern
/// indices.
pub fn worker_loop(
    rank: Rank,
    mut engine: Engine,
    branch_mode: BranchMode,
    n_partitions: usize,
    reduce: ReduceKind,
    assignment: &exa_sched::RankAssignment,
    aln: &CompressedAlignment,
) -> (WorkCounters, u64) {
    loop {
        let mut buf = Vec::new();
        rank.broadcast_bytes(0, &mut buf, CommCategory::TraversalDescriptor)
            .expect("fork-join has no failure recovery (master is a single point of failure)");
        let cmd = decode(&buf).expect("malformed master command");
        if exa_obs::metrics::enabled() {
            commands_counter().inc();
        }
        match cmd {
            WorkerCmd::Evaluate(d) => {
                engine.execute(&d);
                match reduce {
                    ReduceKind::Fast => {
                        let per_local = engine.evaluate(&d);
                        let mut total = vec![per_local.iter().sum::<f64>()];
                        rank.reduce_sum(0, &mut total, CommCategory::SiteLikelihoods)
                            .expect("reduce failed");
                    }
                    ReduceKind::Reproducible => {
                        let bins = evaluate_bins(&mut engine, &d, 1);
                        rank.collective(CommCategory::SiteLikelihoods)
                            .reduce_binned(bins)
                            .expect("reduce failed");
                    }
                }
            }
            WorkerCmd::EvaluatePartitioned(d) => {
                engine.execute(&d);
                match reduce {
                    ReduceKind::Fast => {
                        let per_local = engine.evaluate(&d);
                        let mut lnls = vec![0.0; n_partitions];
                        for (local, global) in engine.global_indices().into_iter().enumerate() {
                            lnls[global] += per_local[local];
                        }
                        rank.reduce_sum(0, &mut lnls, CommCategory::SiteLikelihoods)
                            .expect("reduce failed");
                    }
                    ReduceKind::Reproducible => {
                        let bins = evaluate_bins(&mut engine, &d, n_partitions);
                        rank.collective(CommCategory::SiteLikelihoods)
                            .reduce_binned(bins)
                            .expect("reduce failed");
                    }
                }
            }
            WorkerCmd::PrepareDerivatives(d) => {
                engine.execute(&d);
                engine.prepare_derivatives(&d);
            }
            WorkerCmd::Derivatives(lengths) => match reduce {
                ReduceKind::Fast => {
                    let (d1, d2) = engine.derivatives(&lengths);
                    let mut buf = derivative_buffer(&engine, branch_mode, n_partitions, &d1, &d2);
                    rank.reduce_sum(0, &mut buf, CommCategory::BranchLength)
                        .expect("reduce failed");
                }
                ReduceKind::Reproducible => {
                    let bins = derivative_bins(&mut engine, branch_mode, n_partitions, &lengths);
                    rank.collective(CommCategory::BranchLength)
                        .reduce_binned(bins)
                        .expect("reduce failed");
                }
            },
            WorkerCmd::SetAlphas(alphas) => {
                for (local, global) in engine.global_indices().into_iter().enumerate() {
                    engine.set_alpha(local, alphas[global]);
                }
            }
            WorkerCmd::SetGtrRate { index, values } => {
                for (local, global) in engine.global_indices().into_iter().enumerate() {
                    engine.set_gtr_rate(local, index as usize, values[global]);
                }
            }
            WorkerCmd::OptimizeSiteRates(d) => {
                engine.execute(&d);
                match reduce {
                    ReduceKind::Fast => {
                        let (num, den) = engine.optimize_site_rates(&d);
                        let mut buf = vec![num, den];
                        rank.reduce_sum(0, &mut buf, CommCategory::ModelParams)
                            .expect("reduce failed");
                    }
                    ReduceKind::Reproducible => {
                        let bins = site_rate_bins(&mut engine, &d);
                        rank.collective(CommCategory::ModelParams)
                            .reduce_binned(bins)
                            .expect("reduce failed");
                    }
                }
            }
            WorkerCmd::SetPsrScale(scale) => {
                engine.finalize_site_rates(scale);
            }
            WorkerCmd::GatherSiteRates => {
                let local = exa_sched::capture_site_rates(&engine, assignment, aln);
                let blob = encode_site_rate_capture(&local);
                rank.gather_bytes(0, blob, CommCategory::Control)
                    .expect("site-rate gather failed");
            }
            WorkerCmd::SetSiteRates(table) => {
                exa_sched::apply_site_rates(&mut engine, assignment, aln, &table);
            }
            WorkerCmd::Gradient { descriptor, plan } => {
                engine.execute(&descriptor);
                match reduce {
                    ReduceKind::Fast => {
                        let sweep = engine.edge_gradient(&plan);
                        let mut buf = gradient_buffer(
                            &engine,
                            branch_mode,
                            n_partitions,
                            &sweep,
                            plan.n_edges,
                        );
                        rank.reduce_sum(0, &mut buf, CommCategory::BranchLength)
                            .expect("reduce failed");
                    }
                    ReduceKind::Reproducible => {
                        let bins = gradient_bins(&mut engine, branch_mode, n_partitions, &plan);
                        rank.collective(CommCategory::BranchLength)
                            .reduce_binned(bins)
                            .expect("reduce failed");
                    }
                }
            }
            WorkerCmd::Shutdown => break,
        }
    }
    let work = engine.work();
    let mem = engine.clv_bytes();
    (work, mem)
}

/// Assemble the superaccumulators for a likelihood evaluation: one bin
/// total (`n_slots = 1`) or one per global partition. Shared with the
/// master so every rank contributes the same layout. The caller must have
/// run `engine.execute(&d)` first.
pub(crate) fn evaluate_bins(
    engine: &mut Engine,
    d: &TraversalDescriptor,
    n_slots: usize,
) -> Vec<BinnedSum> {
    let globals = engine.global_indices();
    let mut bins = vec![BinnedSum::new(); n_slots];
    engine.evaluate_with_terms(d, &mut |local, terms| {
        let slot = if n_slots == 1 { 0 } else { globals[local] };
        bins[slot].add_slice(terms);
    });
    bins
}

/// [`derivative_buffer`]'s superaccumulator analogue: the `[d1 | d2]`
/// layout with every slot fed the raw per-site addends.
pub(crate) fn derivative_bins(
    engine: &mut Engine,
    branch_mode: BranchMode,
    n_partitions: usize,
    lengths: &[f64],
) -> Vec<BinnedSum> {
    let p = match branch_mode {
        BranchMode::Joint => 1,
        BranchMode::PerPartition => n_partitions,
    };
    let globals = engine.global_indices();
    let mut bins = vec![BinnedSum::new(); 2 * p];
    engine.derivatives_with_terms(lengths, &mut |local, t1, t2| {
        let slot = if p == 1 { 0 } else { globals[local] };
        bins[slot].add_slice(t1);
        bins[p + slot].add_slice(t2);
    });
    bins
}

/// The PSR normalization pair `[numerator, denominator]` as
/// superaccumulators. The caller must have run `engine.execute(&d)` first.
pub(crate) fn site_rate_bins(engine: &mut Engine, d: &TraversalDescriptor) -> Vec<BinnedSum> {
    let mut bins = vec![BinnedSum::new(); 2];
    engine.optimize_site_rates_with_terms(d, &mut |_, tn, td| {
        bins[0].add_slice(tn);
        bins[1].add_slice(td);
    });
    bins
}

/// Assemble the full-tree gradient reduction buffer from a local
/// [`Engine::edge_gradient`] sweep: `[d1 of every edge | d2 of every edge]`
/// with [`derivative_buffer`]'s per-edge slot convention, so each edge's
/// reduced pair carries exactly the bits the per-edge route would have
/// produced. Shared with the master so the wire layout matches exactly.
pub(crate) fn gradient_buffer(
    engine: &Engine,
    branch_mode: BranchMode,
    n_partitions: usize,
    sweep: &[Vec<(f64, f64)>],
    n_edges: usize,
) -> Vec<f64> {
    let p = match branch_mode {
        BranchMode::Joint => 1,
        BranchMode::PerPartition => n_partitions,
    };
    let mut buf = vec![0.0; 2 * p * n_edges];
    match branch_mode {
        BranchMode::Joint => {
            // Same local-partition summation order as `derivative_buffer`.
            for e in 0..n_edges {
                buf[e] = sweep.iter().map(|part| part[e].0).sum();
                buf[n_edges + e] = sweep.iter().map(|part| part[e].1).sum();
            }
        }
        BranchMode::PerPartition => {
            for (local, global) in engine.global_indices().into_iter().enumerate() {
                for (e, &(d1, d2)) in sweep[local].iter().enumerate() {
                    buf[e * p + global] += d1;
                    buf[(n_edges + e) * p + global] += d2;
                }
            }
        }
    }
    buf
}

/// [`gradient_buffer`]'s superaccumulator analogue: `2 · p · n_edges` bins
/// fed the raw per-site addends of every edge. Each slot receives exactly
/// the addend multiset the per-edge [`derivative_bins`] slot would, so the
/// rendered reduction is bitwise identical to `n_edges` separate binned
/// collectives.
pub(crate) fn gradient_bins(
    engine: &mut Engine,
    branch_mode: BranchMode,
    n_partitions: usize,
    plan: &exa_phylo::tree::traversal::GradientPlan,
) -> Vec<BinnedSum> {
    let p = match branch_mode {
        BranchMode::Joint => 1,
        BranchMode::PerPartition => n_partitions,
    };
    let globals = engine.global_indices();
    let n_edges = plan.n_edges;
    let mut bins = vec![BinnedSum::new(); 2 * p * n_edges];
    engine.edge_gradient_with_terms(plan, &mut |local, edge, t1, t2| {
        let slot = if p == 1 { 0 } else { globals[local] };
        bins[edge * p + slot].add_slice(t1);
        bins[(n_edges + edge) * p + slot].add_slice(t2);
    });
    bins
}

/// Assemble the derivative reduction buffer (shared with the master so the
/// wire layout matches exactly).
pub(crate) fn derivative_buffer(
    engine: &Engine,
    branch_mode: BranchMode,
    n_partitions: usize,
    d1: &[f64],
    d2: &[f64],
) -> Vec<f64> {
    match branch_mode {
        BranchMode::Joint => vec![d1.iter().sum::<f64>(), d2.iter().sum::<f64>()],
        BranchMode::PerPartition => {
            let mut buf = vec![0.0; 2 * n_partitions];
            for (local, global) in engine.global_indices().into_iter().enumerate() {
                buf[global] += d1[local];
                buf[n_partitions + global] += d2[local];
            }
            buf
        }
    }
}
