//! `exa-forkjoin` — the **fork-join** parallelization baseline
//! (RAxML-Light's scheme, §III-A of the paper).
//!
//! A dedicated *master* rank owns the tree and steers the search; worker
//! ranks are agnostic of tree semantics and only execute likelihood kernels
//! on their data slice, driven by broadcast commands:
//!
//! * every likelihood operation broadcasts a **traversal descriptor**,
//! * every model-parameter change broadcasts the new parameter arrays,
//! * every Newton–Raphson step broadcasts candidate branch lengths and
//!   reduces derivative sums back to the master,
//! * likelihood evaluation reduces per-partition log-likelihoods to the
//!   master.
//!
//! All of this traffic is recorded by `exa-comm` under the Table I
//! categories, which is how the `table1` harness regenerates the paper's
//! communication-cost breakdown. The search algorithm itself is byte-for-
//! byte the one ExaML runs (`exa-search`), per §III-B's "exactly the same
//! tree search algorithm".

pub mod master;
pub mod protocol;
pub mod worker;

pub use master::ForkJoinEvaluator;

use exa_bio::patterns::CompressedAlignment;
use exa_comm::{CommStats, World};
use exa_obs::Recorder;
use exa_phylo::engine::{KernelChoice, KernelKind, RepeatsChoice, SiteRepeats, WorkCounters};
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::GlobalState;
use exa_search::{
    build_starting_tree, run_search, BranchMode, NoHooks, SearchConfig, SearchResult, StartingTree,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a fork-join run (mirror of the de-centralized one,
/// minus fault tolerance — a master failure is catastrophic by design,
/// which is one of the paper's arguments *against* fork-join).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForkJoinConfig {
    pub n_ranks: usize,
    pub rate_model: RateModelKind,
    pub branch_mode: BranchMode,
    pub strategy: exa_sched::Strategy,
    pub search: SearchConfig,
    pub seed: u64,
    /// Starting-tree policy (must match across comparison runs).
    pub starting_tree: StartingTree,
    /// Resolved likelihood-kernel backend every rank computes with. The
    /// ranks of an in-process fork-join world share one machine, so there
    /// is no capability negotiation here — callers resolve `auto` locally
    /// (see `KernelChoice::resolve_local`).
    pub kernel: KernelKind,
    /// Resolved subtree-repeat compression setting, uniform across the
    /// ranks for the same reason the kernel is (callers resolve `auto`
    /// locally; see `RepeatsChoice::resolve_local`).
    pub site_repeats: SiteRepeats,
}

impl ForkJoinConfig {
    /// Defaults for `n_ranks` ranks under Γ.
    pub fn new(n_ranks: usize) -> ForkJoinConfig {
        ForkJoinConfig {
            n_ranks,
            rate_model: RateModelKind::Gamma,
            branch_mode: BranchMode::Joint,
            strategy: exa_sched::Strategy::Cyclic,
            search: SearchConfig::default(),
            seed: 42,
            starting_tree: StartingTree::Random,
            kernel: KernelChoice::from_env().resolve_local(),
            site_repeats: RepeatsChoice::from_env().resolve_local(),
        }
    }
}

/// Result of a fork-join run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub result: SearchResult,
    pub state: GlobalState,
    pub tree_newick: String,
    pub comm_stats: CommStats,
    pub work: WorkCounters,
    pub mem_bytes: u64,
}

enum RankReport {
    Master {
        result: SearchResult,
        state: Box<GlobalState>,
        work: WorkCounters,
        mem: u64,
        stats: CommStats,
    },
    Worker {
        work: WorkCounters,
        mem: u64,
    },
}

/// Run a fork-join inference: rank 0 is the master, the rest are workers.
#[deprecated(
    since = "0.4.0",
    note = "use `examl_core::RunConfig::new(n_ranks).scheme(Scheme::ForkJoin).run(&aln)` \
            or `exa_forkjoin::execute` directly"
)]
pub fn run_forkjoin(aln: &CompressedAlignment, cfg: &ForkJoinConfig) -> RunOutput {
    execute(aln, cfg, None)
}

/// [`run_forkjoin`] with an optional [`Recorder`].
#[deprecated(
    since = "0.4.0",
    note = "use `examl_core::RunConfig` with `collect_trace(true)`, or `exa_forkjoin::execute`"
)]
pub fn run_forkjoin_traced(
    aln: &CompressedAlignment,
    cfg: &ForkJoinConfig,
    recorder: Option<&std::sync::Arc<Recorder>>,
) -> RunOutput {
    execute(aln, cfg, recorder)
}

/// Execute a fork-join inference: rank 0 is the master, the rest are
/// workers. With a [`Recorder`], each rank claims its tracer slot so
/// kernels, search phases and collectives emit events.
pub fn execute(
    aln: &CompressedAlignment,
    cfg: &ForkJoinConfig,
    recorder: Option<&std::sync::Arc<Recorder>>,
) -> RunOutput {
    assert!(
        aln.n_taxa() >= 4,
        "need at least 4 taxa for a meaningful search"
    );
    let aln = Arc::new(aln.clone());
    let freqs = Arc::new(exa_bio::stats::global_frequencies(&aln));
    let cfg = Arc::new(cfg.clone());
    let shared = Arc::new(exa_sched::SharedSlices::build(&aln));

    let reports: Vec<RankReport> = World::run_traced(cfg.n_ranks, recorder, |rank| {
        let assignments = exa_sched::distribute(&aln, rank.world_size(), cfg.strategy);
        let engine = exa_sched::build_engine(
            &aln,
            &assignments[rank.id()],
            &freqs,
            cfg.rate_model,
            cfg.kernel,
            cfg.site_repeats,
            Some(&shared),
        );
        exa_obs::mark(|| format!("{}{}", exa_obs::KERNEL_BACKEND_MARK, cfg.kernel.label()));
        exa_obs::mark(|| format!("{}{}", exa_obs::SITE_REPEATS_MARK, cfg.site_repeats.label()));
        if rank.id() == 0 {
            // Account the initial data distribution (modeled; see the
            // de-centralized driver for the rationale).
            let bytes: u64 = assignments
                .iter()
                .flat_map(|a| exa_sched::materialize(&aln, a))
                .map(|(_, p)| {
                    (p.tips.iter().map(Vec::len).sum::<usize>() + 4 * p.weights.len()) as u64
                })
                .sum();
            rank.account(
                exa_comm::CommCategory::Control,
                exa_comm::OpKind::Scatter,
                bytes,
            );
            // Master: owns the tree and runs the search; the evaluator
            // broadcasts work to the workers.
            let blens = match cfg.branch_mode {
                BranchMode::Joint => 1,
                BranchMode::PerPartition => aln.n_partitions(),
            };
            let tree = build_starting_tree(&aln, &cfg.starting_tree, blens, cfg.seed);
            let mut eval = ForkJoinEvaluator::new(
                rank.clone(),
                tree,
                engine,
                aln.n_partitions(),
                cfg.branch_mode,
            );
            let result = run_search(&mut eval, &cfg.search, &mut NoHooks);
            eval.shutdown_workers();
            use exa_search::Evaluator as _;
            RankReport::Master {
                result,
                state: Box::new(eval.snapshot()),
                work: eval.engine().work(),
                mem: eval.engine().clv_bytes(),
                stats: rank.stats(),
            }
        } else {
            // Worker: tree-agnostic kernel executor.
            let (work, mem) =
                worker::worker_loop(rank, engine, cfg.branch_mode, aln.n_partitions());
            RankReport::Worker { work, mem }
        }
    });

    let mut total_work = WorkCounters::default();
    let mut total_mem = 0u64;
    let mut master: Option<(SearchResult, Box<GlobalState>, CommStats)> = None;
    for r in reports {
        match r {
            RankReport::Master {
                result,
                state,
                work,
                mem,
                stats,
            } => {
                total_work = total_work.merge(&work);
                total_mem += mem;
                master = Some((result, state, stats));
            }
            RankReport::Worker { work, mem } => {
                total_work = total_work.merge(&work);
                total_mem += mem;
            }
        }
    }
    let (result, state, stats) = master.expect("master rank must report");
    RunOutput {
        tree_newick: state.tree.to_newick(&aln.taxa),
        result,
        state: *state,
        comm_stats: stats,
        work: total_work,
        mem_bytes: total_mem,
    }
}
