//! `exa-forkjoin` — the **fork-join** parallelization baseline
//! (RAxML-Light's scheme, §III-A of the paper).
//!
//! A dedicated *master* rank owns the tree and steers the search; worker
//! ranks are agnostic of tree semantics and only execute likelihood kernels
//! on their data slice, driven by broadcast commands:
//!
//! * every likelihood operation broadcasts a **traversal descriptor**,
//! * every model-parameter change broadcasts the new parameter arrays,
//! * every Newton–Raphson step broadcasts candidate branch lengths and
//!   reduces derivative sums back to the master,
//! * likelihood evaluation reduces per-partition log-likelihoods to the
//!   master.
//!
//! All of this traffic is recorded by `exa-comm` under the Table I
//! categories, which is how the `table1` harness regenerates the paper's
//! communication-cost breakdown. The search algorithm itself is byte-for-
//! byte the one ExaML runs (`exa-search`), per §III-B's "exactly the same
//! tree search algorithm".

pub mod master;
pub mod protocol;
pub mod worker;

pub use master::ForkJoinEvaluator;

use exa_bio::patterns::CompressedAlignment;
use exa_comm::{CommStats, ReduceKind, World};
use exa_obs::Recorder;
use exa_phylo::engine::{
    GradientChoice, GradientMode, KernelChoice, KernelKind, RepeatsChoice, SiteRepeats,
    ThreadsChoice, WorkCounters,
};
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::{CommFailurePanic, Evaluator, GlobalState, SearchSnapshot};
use exa_search::{
    build_starting_tree, run_search_from, BoundaryInfo, BranchMode, KillPanic, KillSpec,
    PreemptPanic, PreemptSignal, SearchConfig, SearchHooks, SearchResult, StartingTree,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a fork-join run (mirror of the de-centralized one,
/// minus fault tolerance — a master failure is catastrophic by design,
/// which is one of the paper's arguments *against* fork-join).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForkJoinConfig {
    pub n_ranks: usize,
    pub rate_model: RateModelKind,
    pub branch_mode: BranchMode,
    pub strategy: exa_sched::Strategy,
    pub search: SearchConfig,
    pub seed: u64,
    /// Starting-tree policy (must match across comparison runs).
    pub starting_tree: StartingTree,
    /// Resolved likelihood-kernel backend every rank computes with. The
    /// ranks of an in-process fork-join world share one machine, so there
    /// is no capability negotiation here — callers resolve `auto` locally
    /// (see `KernelChoice::resolve_local`).
    pub kernel: KernelKind,
    /// Resolved subtree-repeat compression setting, uniform across the
    /// ranks for the same reason the kernel is (callers resolve `auto`
    /// locally; see `RepeatsChoice::resolve_local`).
    pub site_repeats: SiteRepeats,
    /// Resolved collective reduction mode, uniform across the ranks (the
    /// command stream carries the master's resolution, so workers never
    /// negotiate). `Reproducible` makes every summed reduction
    /// rank-count-invariant.
    pub reduce: ReduceKind,
    /// Resolved intra-rank worker-pool width, uniform across the ranks
    /// (resolved locally like the kernel; bitwise result-neutral).
    pub threads: usize,
    /// Pack small partitions into cache-sized kernel batches (bitwise
    /// result-neutral; purely a dispatch-overhead optimization).
    pub batch: bool,
    /// Resolved gradient-BLO mode, uniform across the ranks (the master's
    /// command stream drives the workers, so no negotiation). `On` replaces
    /// the per-edge seed collectives of each smoothing pass with one
    /// full-tree sweep + one fat reduction; bitwise result-neutral.
    pub gradient: GradientMode,
}

impl ForkJoinConfig {
    /// Defaults for `n_ranks` ranks under Γ.
    pub fn new(n_ranks: usize) -> ForkJoinConfig {
        ForkJoinConfig {
            n_ranks,
            rate_model: RateModelKind::Gamma,
            branch_mode: BranchMode::Joint,
            strategy: exa_sched::Strategy::Cyclic,
            search: SearchConfig::default(),
            seed: 42,
            starting_tree: StartingTree::Random,
            kernel: KernelChoice::from_env().resolve_local(),
            site_repeats: RepeatsChoice::from_env().resolve_local(),
            reduce: ReduceKind::Fast,
            threads: ThreadsChoice::from_env().resolve_local().get(),
            batch: true,
            gradient: GradientChoice::from_env().resolve_local(),
        }
    }
}

/// Result of a fork-join run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub result: SearchResult,
    pub state: GlobalState,
    pub tree_newick: String,
    pub comm_stats: CommStats,
    pub work: WorkCounters,
    pub mem_bytes: u64,
}

enum RankReport {
    Master {
        result: SearchResult,
        state: Box<GlobalState>,
        work: WorkCounters,
        mem: u64,
        stats: CommStats,
    },
    Worker {
        work: WorkCounters,
        mem: u64,
    },
    /// The master stopped early (kill injection or preemption), after
    /// releasing the workers.
    Stopped(Stop),
}

/// An injected kill terminated the run (checkpoint/restart chaos testing):
/// the master died after `after_checkpoints` committed checkpoints, at
/// iteration boundary `iteration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KilledRun {
    pub after_checkpoints: u64,
    pub iteration: usize,
}

/// A cooperative preemption stopped the run at iteration boundary
/// `iteration`; `checkpoints` generations (including the preemption
/// checkpoint, when the sink was armed) were committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptedRun {
    pub iteration: usize,
    pub checkpoints: u64,
}

/// Why [`execute_controlled`] stopped without producing a [`RunOutput`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// An injected [`KillSpec`] fired (simulated crash — nothing graceful).
    Killed(KilledRun),
    /// A [`PreemptSignal`] was honoured at a boundary (graceful stop,
    /// resumable from the final checkpoint).
    Preempted(PreemptedRun),
}

/// Checkpoint/restart controls for [`execute_controlled`]. The fork-join
/// crate owns *when* (boundary cadence, PSR rate gathers, kill points);
/// the caller owns *what* goes on disk — `sink` receives the master's
/// [`SearchSnapshot`] and persists it however it likes.
pub struct RestartControl<'a> {
    /// Is the sink backed by real storage? When false (resume-only or
    /// kill-only controls) no checkpoint is ever written, including on
    /// preemption.
    pub checkpoint_armed: bool,
    /// Commit a checkpoint every `every` iterations (0 = no iteration
    /// cadence; resume-only controls use 0).
    pub every: usize,
    /// Also commit whenever at least this many wall-clock seconds have
    /// elapsed since the last commit, evaluated at boundaries. Only set
    /// when the sink is armed (the caller has a checkpoint directory).
    pub every_secs: Option<f64>,
    /// Called on the master thread with each checkpoint snapshot.
    pub sink: &'a (dyn Fn(&SearchSnapshot) -> std::io::Result<()> + Sync),
    /// Snapshot to resume from, applied before the search starts.
    pub resume: Option<SearchSnapshot>,
    /// Kill the master after this many committed checkpoints. The master
    /// broadcasts `Shutdown` *before* dying so the workers drain instead of
    /// deadlocking on the next command broadcast.
    pub inject_kill: Option<KillSpec>,
    /// Cooperative preemption handle, polled at boundaries. The fork-join
    /// master owns the only search state, so no collective agreement is
    /// needed: the master's local read is authoritative, and the workers
    /// are released via `Shutdown` before it unwinds.
    pub preempt: Option<PreemptSignal>,
}

/// Master-side boundary hooks implementing [`RestartControl`].
struct MasterHooks<'a> {
    aln: &'a CompressedAlignment,
    assignments: &'a [exa_sched::RankAssignment],
    ctrl: Option<&'a RestartControl<'a>>,
    checkpoints: u64,
    last_checkpoint: Instant,
}

impl SearchHooks for MasterHooks<'_> {
    fn at_boundary(&mut self, eval: &mut dyn Evaluator, info: &BoundaryInfo) {
        let Some(ctrl) = self.ctrl else { return };
        let fj = eval
            .as_any_mut()
            .downcast_mut::<ForkJoinEvaluator>()
            .expect("fork-join hooks require the fork-join evaluator");
        let preempt = ctrl.preempt.as_ref().is_some_and(|p| p.is_requested());
        let on_cadence = ctrl.every > 0 && info.iteration.is_multiple_of(ctrl.every);
        let time_due = ctrl
            .every_secs
            .is_some_and(|secs| self.last_checkpoint.elapsed().as_secs_f64() >= secs);
        if ctrl.checkpoint_armed && (on_cadence || time_due || preempt) {
            let psr_rates = fj.collect_site_rates(self.aln, self.assignments);
            let snap = SearchSnapshot {
                iteration: info.iteration,
                lnl_bits: info.lnl.to_bits(),
                spr_moves: info.spr_moves,
                state: fj.snapshot(),
                psr_rates,
            };
            (ctrl.sink)(&snap).expect("checkpoint write failed");
            self.checkpoints += 1;
            self.last_checkpoint = Instant::now();
            exa_obs::mark(|| format!("{}{}", exa_obs::CHECKPOINT_MARK, info.iteration));
        }
        if preempt {
            // Master death would strand the workers mid-broadcast: release
            // them first, then unwind.
            fj.shutdown_workers();
            exa_obs::mark(|| format!("preempt:{}", info.iteration));
            std::panic::panic_any(PreemptPanic {
                iteration: info.iteration,
                checkpoints: self.checkpoints,
            });
        }
        if let Some(kill) = ctrl.inject_kill {
            if self.checkpoints >= kill.after_checkpoints {
                fj.shutdown_workers();
                std::panic::panic_any(KillPanic {
                    after_checkpoints: kill.after_checkpoints,
                    iteration: info.iteration,
                });
            }
        }
    }

    fn on_failure(&mut self, _eval: &mut dyn Evaluator, _failure: &CommFailurePanic) -> bool {
        // A master failure is catastrophic by design (§III-A).
        false
    }
}

/// Run a fork-join inference: rank 0 is the master, the rest are workers.
#[deprecated(
    since = "0.4.0",
    note = "use `examl_core::RunConfig::new(n_ranks).scheme(Scheme::ForkJoin).run(&aln)` \
            or `exa_forkjoin::execute` directly"
)]
pub fn run_forkjoin(aln: &CompressedAlignment, cfg: &ForkJoinConfig) -> RunOutput {
    execute(aln, cfg, None)
}

/// [`run_forkjoin`] with an optional [`Recorder`].
#[deprecated(
    since = "0.4.0",
    note = "use `examl_core::RunConfig` with `collect_trace(true)`, or `exa_forkjoin::execute`"
)]
pub fn run_forkjoin_traced(
    aln: &CompressedAlignment,
    cfg: &ForkJoinConfig,
    recorder: Option<&std::sync::Arc<Recorder>>,
) -> RunOutput {
    execute(aln, cfg, recorder)
}

/// Execute a fork-join inference: rank 0 is the master, the rest are
/// workers. With a [`Recorder`], each rank claims its tracer slot so
/// kernels, search phases and collectives emit events.
pub fn execute(
    aln: &CompressedAlignment,
    cfg: &ForkJoinConfig,
    recorder: Option<&std::sync::Arc<Recorder>>,
) -> RunOutput {
    match execute_controlled(aln, cfg, recorder, None) {
        Ok(out) => out,
        Err(_) => unreachable!("no kill or preemption can fire without a RestartControl"),
    }
}

/// Record the batch-packing outcome of one rank's engine in the metrics
/// registry (`/metrics`). Per-rank batch counts differ under MPS, so these
/// go to metrics rather than trace marks (which must stay rank-uniform).
fn examl_obs_batch_metrics(engine: &exa_phylo::Engine) {
    if !exa_obs::metrics::enabled() {
        return;
    }
    let m = exa_obs::metrics::global();
    m.counter(
        "exa_batches_total",
        "Kernel batches created by partition packing",
        &[],
    )
    .add(engine.batch_count() as u64);
    if engine.batch_count() > 0 {
        m.gauge(
            "exa_batch_fill_ratio",
            "Mean partitions per kernel batch",
            &[],
        )
        .set(engine.n_partitions() as f64 / engine.batch_count() as f64);
    }
}

/// [`execute`] with checkpoint/restart controls: boundary-cadence (and
/// wall-clock-cadence) checkpoints fed to `ctrl.sink`, resume from a
/// snapshot, deterministic master kills for the restart chaos harness, and
/// cooperative checkpoint-preemption.
pub fn execute_controlled(
    aln: &CompressedAlignment,
    cfg: &ForkJoinConfig,
    recorder: Option<&std::sync::Arc<Recorder>>,
    ctrl: Option<RestartControl<'_>>,
) -> Result<RunOutput, Stop> {
    assert!(
        aln.n_taxa() >= 4,
        "need at least 4 taxa for a meaningful search"
    );
    let aln = Arc::new(aln.clone());
    let freqs = Arc::new(exa_bio::stats::global_frequencies(&aln));
    let cfg = Arc::new(cfg.clone());
    let shared = Arc::new(exa_sched::SharedSlices::build(&aln));

    let reports: Vec<RankReport> = World::run_traced(cfg.n_ranks, recorder, |rank| {
        let assignments = exa_sched::distribute(&aln, rank.world_size(), cfg.strategy);
        let engine = exa_sched::build_engine(
            &aln,
            &assignments[rank.id()],
            &freqs,
            &exa_sched::EngineSpec {
                rate_model: cfg.rate_model,
                kernel: cfg.kernel,
                site_repeats: cfg.site_repeats,
                threads: cfg.threads,
                batch: cfg.batch,
            },
            Some(&shared),
        );
        examl_obs_batch_metrics(&engine);
        exa_obs::mark(|| format!("{}{}", exa_obs::KERNEL_BACKEND_MARK, cfg.kernel.label()));
        exa_obs::mark(|| format!("{}{}", exa_obs::SITE_REPEATS_MARK, cfg.site_repeats.label()));
        exa_obs::mark(|| format!("{}{}", exa_obs::REDUCE_MODE_MARK, cfg.reduce.label()));
        exa_obs::mark(|| format!("{}{}", exa_obs::THREADS_MARK, engine.threads()));
        exa_obs::mark(|| format!("{}{}", exa_obs::GRADIENT_MARK, cfg.gradient.label()));
        exa_obs::mark(|| {
            format!(
                "{}{}",
                exa_obs::BATCH_MARK,
                if cfg.batch { "on" } else { "off" }
            )
        });
        if rank.id() == 0 {
            // Account the initial data distribution (modeled; see the
            // de-centralized driver for the rationale).
            let bytes: u64 = assignments
                .iter()
                .flat_map(|a| exa_sched::materialize(&aln, a))
                .map(|(_, p)| {
                    (p.tips.iter().map(Vec::len).sum::<usize>() + 4 * p.weights.len()) as u64
                })
                .sum();
            rank.account(
                exa_comm::CommCategory::Control,
                exa_comm::OpKind::Scatter,
                bytes,
            );
            // Master: owns the tree and runs the search; the evaluator
            // broadcasts work to the workers.
            let blens = match cfg.branch_mode {
                BranchMode::Joint => 1,
                BranchMode::PerPartition => aln.n_partitions(),
            };
            let tree = build_starting_tree(&aln, &cfg.starting_tree, blens, cfg.seed);
            let mut eval = ForkJoinEvaluator::new(
                rank.clone(),
                tree,
                engine,
                aln.n_partitions(),
                cfg.branch_mode,
                cfg.reduce,
            )
            .with_gradient(cfg.gradient);
            // Resume: install the checkpointed PSR rates on every rank
            // (broadcast), then the replicated master state.
            let resume_point = ctrl.as_ref().and_then(|c| c.resume.as_ref()).map(|snap| {
                eval.distribute_site_rates(&snap.psr_rates, &aln, &assignments);
                eval.restore(&snap.state);
                exa_obs::mark(|| format!("resume:{}", snap.iteration));
                snap.resume_point()
            });
            let mut hooks = MasterHooks {
                aln: &aln,
                assignments: &assignments,
                ctrl: ctrl.as_ref(),
                checkpoints: 0,
                last_checkpoint: Instant::now(),
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_search_from(&mut eval, &cfg.search, &mut hooks, resume_point.as_ref())
            }));
            match outcome {
                Ok(result) => {
                    eval.shutdown_workers();
                    RankReport::Master {
                        result,
                        state: Box::new(eval.snapshot()),
                        work: eval.engine().work(),
                        mem: eval.engine().clv_bytes(),
                        stats: rank.stats(),
                    }
                }
                Err(payload) => match payload.downcast::<KillPanic>() {
                    Ok(k) => RankReport::Stopped(Stop::Killed(KilledRun {
                        after_checkpoints: k.after_checkpoints,
                        iteration: k.iteration,
                    })),
                    Err(payload) => match payload.downcast::<PreemptPanic>() {
                        Ok(p) => RankReport::Stopped(Stop::Preempted(PreemptedRun {
                            iteration: p.iteration,
                            checkpoints: p.checkpoints,
                        })),
                        Err(payload) => std::panic::resume_unwind(payload),
                    },
                },
            }
        } else {
            // Worker: tree-agnostic kernel executor.
            let (work, mem) = worker::worker_loop(
                rank.clone(),
                engine,
                cfg.branch_mode,
                aln.n_partitions(),
                cfg.reduce,
                &assignments[rank.id()],
                &aln,
            );
            RankReport::Worker { work, mem }
        }
    });

    let mut total_work = WorkCounters::default();
    let mut total_mem = 0u64;
    let mut master: Option<(SearchResult, Box<GlobalState>, CommStats)> = None;
    let mut stopped: Option<Stop> = None;
    for r in reports {
        match r {
            RankReport::Master {
                result,
                state,
                work,
                mem,
                stats,
            } => {
                total_work = total_work.merge(&work);
                total_mem += mem;
                master = Some((result, state, stats));
            }
            RankReport::Worker { work, mem } => {
                total_work = total_work.merge(&work);
                total_mem += mem;
            }
            RankReport::Stopped(s) => stopped = Some(s),
        }
    }
    if let Some(s) = stopped {
        return Err(s);
    }
    let (result, state, stats) = master.expect("master rank must report");
    Ok(RunOutput {
        tree_newick: state.tree.to_newick(&aln.taxa),
        result,
        state: *state,
        comm_stats: stats,
        work: total_work,
        mem_bytes: total_mem,
    })
}
