//! The fork-join master: owns the tree and the search state, broadcasts
//! every likelihood operation to the workers as a command + traversal
//! descriptor, and reduces results back — §III-A's architecture, including
//! its communication costs.

use crate::protocol::{decode_site_rate_capture, encode, WorkerCmd};
use crate::worker::{
    derivative_bins, derivative_buffer, evaluate_bins, gradient_bins, gradient_buffer,
    site_rate_bins,
};
use exa_bio::patterns::CompressedAlignment;
use exa_comm::{CommCategory, Rank, ReduceKind};
use exa_phylo::engine::Engine;
use exa_phylo::model::gtr::NUM_FREE_RATES;
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::{EdgeId, Tree};
use exa_phylo::GradientMode;
use exa_search::evaluator::{
    apply_global_params, per_edge_full_gradient, BranchMode, Evaluator, FullGradient, GlobalState,
};

/// Evaluator back-end for the fork-join master (rank 0).
pub struct ForkJoinEvaluator {
    rank: Rank,
    tree: Tree,
    engine: Engine,
    n_partitions: usize,
    branch_mode: BranchMode,
    reduce: ReduceKind,
    gradient: GradientMode,
    alphas: Vec<f64>,
    gtr_rates: Vec<[f64; NUM_FREE_RATES]>,
    last_lnl: Vec<f64>,
    shut_down: bool,
}

impl ForkJoinEvaluator {
    /// Wrap the master's tree and its local data slice.
    pub fn new(
        rank: Rank,
        tree: Tree,
        engine: Engine,
        n_partitions: usize,
        branch_mode: BranchMode,
        reduce: ReduceKind,
    ) -> ForkJoinEvaluator {
        assert_eq!(rank.id(), 0, "the fork-join master must be rank 0");
        let expected = match branch_mode {
            BranchMode::Joint => 1,
            BranchMode::PerPartition => n_partitions,
        };
        assert_eq!(
            tree.blen_count(),
            expected,
            "tree branch-length arity mismatch"
        );
        let alphas = match engine.rate_kind() {
            RateModelKind::Gamma => vec![1.0; n_partitions],
            RateModelKind::Psr => Vec::new(),
        };
        ForkJoinEvaluator {
            rank,
            tree,
            engine,
            n_partitions,
            branch_mode,
            reduce,
            gradient: GradientMode::Off,
            alphas,
            gtr_rates: vec![[1.0; NUM_FREE_RATES]; n_partitions],
            last_lnl: vec![0.0; n_partitions],
            shut_down: false,
        }
    }

    /// Select the full-tree gradient mode (builder style). Fork-join needs
    /// no negotiation — workers are command-driven and simply see
    /// [`WorkerCmd::Gradient`] broadcasts when the master runs with `On`.
    pub fn with_gradient(mut self, gradient: GradientMode) -> Self {
        self.gradient = gradient;
        self
    }

    /// The master's local engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Broadcast a command under the given Table I traffic category.
    fn command(&self, cmd: &WorkerCmd, category: CommCategory) {
        let mut bytes = encode(cmd);
        self.rank
            .broadcast_bytes(0, &mut bytes, category)
            .expect("fork-join master cannot survive rank failure");
    }

    /// Tell the workers the run is over. Must be called exactly once after
    /// the search finishes.
    pub fn shutdown_workers(&mut self) {
        if !self.shut_down {
            self.command(&WorkerCmd::Shutdown, CommCategory::Control);
            self.shut_down = true;
        }
    }

    /// Checkpoint support: gather the data-local PSR per-pattern rates
    /// from every rank (workers + the master's own slice) into the full
    /// `table[partition][pattern]` rate-bits table. Empty under Γ.
    pub fn collect_site_rates(
        &mut self,
        aln: &CompressedAlignment,
        assignments: &[exa_sched::RankAssignment],
    ) -> Vec<Vec<u64>> {
        if self.engine.rate_kind() != RateModelKind::Psr {
            return Vec::new();
        }
        self.command(&WorkerCmd::GatherSiteRates, CommCategory::Control);
        let own = exa_sched::capture_site_rates(&self.engine, &assignments[0], aln);
        let blob = crate::protocol::encode_site_rate_capture(&own);
        let blobs = self
            .rank
            .gather_bytes(0, blob, CommCategory::Control)
            .expect("fork-join master cannot survive rank failure");
        let parts = blobs
            .iter()
            .filter(|b| !b.is_empty())
            .flat_map(|b| decode_site_rate_capture(b).expect("malformed site-rate capture"));
        exa_sched::merge_site_rates(aln, parts)
    }

    /// Restart support: broadcast a full PSR rate table so every worker
    /// (and the master's own engine) installs its slice, then invalidate
    /// all CLVs. No-op for an empty table (Γ checkpoints).
    pub fn distribute_site_rates(
        &mut self,
        table: &[Vec<u64>],
        aln: &CompressedAlignment,
        assignments: &[exa_sched::RankAssignment],
    ) {
        if table.is_empty() {
            return;
        }
        self.command(
            &WorkerCmd::SetSiteRates(table.to_vec()),
            CommCategory::ModelParams,
        );
        exa_sched::apply_site_rates(&mut self.engine, &assignments[0], aln, table);
        self.tree.invalidate_all();
    }
}

impl Evaluator for ForkJoinEvaluator {
    fn n_taxa(&self) -> usize {
        self.tree.n_taxa()
    }

    fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    fn branch_mode(&self) -> BranchMode {
        self.branch_mode
    }

    fn rate_kind(&self) -> RateModelKind {
        self.engine.rate_kind()
    }

    fn tree(&self) -> &Tree {
        &self.tree
    }

    fn tree_mut(&mut self) -> &mut Tree {
        &mut self.tree
    }

    fn evaluate(&mut self, edge: EdgeId) -> f64 {
        // The master computes the traversal order and must BROADCAST it —
        // the traffic the de-centralized scheme eliminates.
        let d = self.tree.traversal_descriptor(edge);
        self.command(
            &WorkerCmd::Evaluate(d.clone()),
            CommCategory::TraversalDescriptor,
        );
        self.engine.execute(&d);
        match self.reduce {
            ReduceKind::Fast => {
                let per_local = self.engine.evaluate(&d);
                let mut total = vec![per_local.iter().sum::<f64>()];
                self.rank
                    .reduce_sum(0, &mut total, CommCategory::SiteLikelihoods)
                    .expect("reduce failed");
                total[0]
            }
            ReduceKind::Reproducible => {
                let bins = evaluate_bins(&mut self.engine, &d, 1);
                self.rank
                    .collective(CommCategory::SiteLikelihoods)
                    .reduce_binned(bins)
                    .expect("reduce failed")[0]
            }
        }
    }

    fn evaluate_partitioned(&mut self, edge: EdgeId) -> f64 {
        let d = self.tree.traversal_descriptor(edge);
        self.command(
            &WorkerCmd::EvaluatePartitioned(d.clone()),
            CommCategory::TraversalDescriptor,
        );
        self.engine.execute(&d);
        self.last_lnl = match self.reduce {
            ReduceKind::Fast => {
                let per_local = self.engine.evaluate(&d);
                let mut lnls = vec![0.0; self.n_partitions];
                for (local, global) in self.engine.global_indices().into_iter().enumerate() {
                    lnls[global] += per_local[local];
                }
                self.rank
                    .reduce_sum(0, &mut lnls, CommCategory::SiteLikelihoods)
                    .expect("reduce failed");
                lnls
            }
            ReduceKind::Reproducible => {
                let bins = evaluate_bins(&mut self.engine, &d, self.n_partitions);
                self.rank
                    .collective(CommCategory::SiteLikelihoods)
                    .reduce_binned(bins)
                    .expect("reduce failed")
            }
        };
        self.last_lnl.iter().sum()
    }

    fn last_per_partition(&self) -> &[f64] {
        &self.last_lnl
    }

    fn prepare_derivatives(&mut self, edge: EdgeId) {
        let d = self.tree.traversal_descriptor(edge);
        self.command(
            &WorkerCmd::PrepareDerivatives(d.clone()),
            CommCategory::TraversalDescriptor,
        );
        self.engine.execute(&d);
        self.engine.prepare_derivatives(&d);
    }

    fn derivatives(&mut self, lengths: &[f64]) -> (Vec<f64>, Vec<f64>) {
        // Candidate branch length(s) out…
        self.command(
            &WorkerCmd::Derivatives(lengths.to_vec()),
            CommCategory::BranchLength,
        );
        // …derivative sums back.
        let buf = match self.reduce {
            ReduceKind::Fast => {
                let (d1, d2) = self.engine.derivatives(lengths);
                let mut buf =
                    derivative_buffer(&self.engine, self.branch_mode, self.n_partitions, &d1, &d2);
                self.rank
                    .reduce_sum(0, &mut buf, CommCategory::BranchLength)
                    .expect("reduce failed");
                buf
            }
            ReduceKind::Reproducible => {
                let bins = derivative_bins(
                    &mut self.engine,
                    self.branch_mode,
                    self.n_partitions,
                    lengths,
                );
                self.rank
                    .collective(CommCategory::BranchLength)
                    .reduce_binned(bins)
                    .expect("reduce failed")
            }
        };
        match self.branch_mode {
            BranchMode::Joint => (vec![buf[0]], vec![buf[1]]),
            BranchMode::PerPartition => {
                let p = self.n_partitions;
                (buf[..p].to_vec(), buf[p..].to_vec())
            }
        }
    }

    fn full_gradient(&mut self) -> FullGradient {
        if self.gradient == GradientMode::Off {
            return per_edge_full_gradient(self);
        }
        // One broadcast carries the orientation descriptor and the sweep
        // plan; one fat reduction brings back every edge's pair.
        let d = self.tree.traversal_descriptor(0);
        let plan = self.tree.gradient_plan(0);
        self.command(
            &WorkerCmd::Gradient {
                descriptor: d.clone(),
                plan: plan.clone(),
            },
            CommCategory::TraversalDescriptor,
        );
        self.engine.execute(&d);
        let p = match self.branch_mode {
            BranchMode::Joint => 1,
            BranchMode::PerPartition => self.n_partitions,
        };
        let buf = match self.reduce {
            ReduceKind::Fast => {
                let sweep = self.engine.edge_gradient(&plan);
                let mut buf = gradient_buffer(
                    &self.engine,
                    self.branch_mode,
                    self.n_partitions,
                    &sweep,
                    plan.n_edges,
                );
                self.rank
                    .reduce_sum(0, &mut buf, CommCategory::BranchLength)
                    .expect("reduce failed");
                buf
            }
            ReduceKind::Reproducible => {
                let bins =
                    gradient_bins(&mut self.engine, self.branch_mode, self.n_partitions, &plan);
                self.rank
                    .collective(CommCategory::BranchLength)
                    .reduce_binned(bins)
                    .expect("reduce failed")
            }
        };
        let mut d1 = Vec::with_capacity(plan.n_edges);
        let mut d2 = Vec::with_capacity(plan.n_edges);
        for e in 0..plan.n_edges {
            d1.push(buf[e * p..(e + 1) * p].to_vec());
            d2.push(buf[(plan.n_edges + e) * p..][..p].to_vec());
        }
        FullGradient {
            d1,
            d2,
            collectives: 1,
            swept: true,
        }
    }

    fn alphas(&self) -> Vec<f64> {
        self.alphas.clone()
    }

    fn set_alphas(&mut self, alphas: &[f64]) {
        assert_eq!(alphas.len(), self.n_partitions);
        // Fork-join must broadcast the full parameter array — with 1000
        // partitions this is the 8 kB-per-region traffic of §III-A.
        self.command(
            &WorkerCmd::SetAlphas(alphas.to_vec()),
            CommCategory::ModelParams,
        );
        self.alphas = alphas.to_vec();
        for (local, global) in self.engine.global_indices().into_iter().enumerate() {
            self.engine.set_alpha(local, alphas[global]);
        }
        self.tree.invalidate_all();
    }

    fn gtr_rate(&self, rate_index: usize) -> Vec<f64> {
        self.gtr_rates.iter().map(|r| r[rate_index]).collect()
    }

    fn set_gtr_rate(&mut self, rate_index: usize, values: &[f64]) {
        assert_eq!(values.len(), self.n_partitions);
        self.command(
            &WorkerCmd::SetGtrRate {
                index: rate_index as u8,
                values: values.to_vec(),
            },
            CommCategory::ModelParams,
        );
        for (g, &v) in values.iter().enumerate() {
            self.gtr_rates[g][rate_index] = v;
        }
        for (local, global) in self.engine.global_indices().into_iter().enumerate() {
            self.engine.set_gtr_rate(local, rate_index, values[global]);
        }
        self.tree.invalidate_all();
    }

    fn optimize_site_rates(&mut self) {
        if self.engine.rate_kind() != RateModelKind::Psr {
            return;
        }
        let d = self.tree.full_traversal_descriptor(0);
        self.command(
            &WorkerCmd::OptimizeSiteRates(d.clone()),
            CommCategory::TraversalDescriptor,
        );
        self.engine.execute(&d);
        let buf = match self.reduce {
            ReduceKind::Fast => {
                let (num, den) = self.engine.optimize_site_rates(&d);
                let mut buf = vec![num, den];
                self.rank
                    .reduce_sum(0, &mut buf, CommCategory::ModelParams)
                    .expect("reduce failed");
                buf
            }
            ReduceKind::Reproducible => {
                let bins = site_rate_bins(&mut self.engine, &d);
                self.rank
                    .collective(CommCategory::ModelParams)
                    .reduce_binned(bins)
                    .expect("reduce failed")
            }
        };
        let scale = if buf[0] > 0.0 { buf[1] / buf[0] } else { 1.0 };
        // PSR rate values themselves stay data-local on each worker; only
        // the scale is broadcast.
        self.command(&WorkerCmd::SetPsrScale(scale), CommCategory::ModelParams);
        if buf[0] > 0.0 {
            self.engine.finalize_site_rates(scale);
        }
        self.tree.invalidate_all();
    }

    fn snapshot(&self) -> GlobalState {
        GlobalState {
            tree: self.tree.clone(),
            alphas: self.alphas.clone(),
            gtr_rates: self.gtr_rates.clone(),
        }
    }

    fn restore(&mut self, state: &GlobalState) {
        self.tree = state.tree.clone();
        self.alphas = state.alphas.clone();
        self.gtr_rates = state.gtr_rates.clone();
        // Workers must see the restored parameters too.
        if !self.alphas.is_empty() {
            self.command(
                &WorkerCmd::SetAlphas(self.alphas.clone()),
                CommCategory::ModelParams,
            );
        }
        for i in 0..NUM_FREE_RATES {
            let values: Vec<f64> = self.gtr_rates.iter().map(|r| r[i]).collect();
            self.command(
                &WorkerCmd::SetGtrRate {
                    index: i as u8,
                    values,
                },
                CommCategory::ModelParams,
            );
        }
        apply_global_params(&mut self.engine, state);
        self.tree.invalidate_all();
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn backend_fingerprint(&self) -> u64 {
        exa_search::kernel_fingerprint(
            self.engine.kernel_kind(),
            self.engine.site_repeats(),
            self.reduce.label(),
            self.engine.threads(),
            self.gradient,
        )
    }
}
