//! Fork-join driver tests at crate level (the cross-scheme equivalence
//! lives in the workspace integration suite).

use exa_comm::CommCategory;
use exa_forkjoin::{execute, ForkJoinConfig};
use exa_search::SearchConfig;
use exa_simgen::workloads;

fn quick() -> SearchConfig {
    SearchConfig {
        max_iterations: 1,
        ..SearchConfig::fast()
    }
}

#[test]
fn single_rank_forkjoin_works() {
    // Degenerate fork-join: master with zero workers.
    let w = workloads::partitioned(6, 2, 60, 3);
    let mut cfg = ForkJoinConfig::new(1);
    cfg.search = quick();
    let out = execute(&w.compressed, &cfg, None);
    assert!(out.result.lnl.is_finite() && out.result.lnl < 0.0);
    out.state.tree.check_invariants().unwrap();
}

#[test]
fn worker_count_does_not_change_result() {
    // Under `--reduce reproducible` the guarantee is exact: every summed
    // collective is rank-count-invariant, so the whole search trajectory
    // (including the gradient-seeded smoothing passes) replays bitwise.
    let w = workloads::partitioned(6, 2, 60, 5);
    let mut lnls = Vec::new();
    for ranks in [1usize, 2, 3] {
        let mut cfg = ForkJoinConfig::new(ranks);
        cfg.search = quick();
        cfg.seed = 9;
        cfg.reduce = exa_comm::ReduceKind::Reproducible;
        lnls.push(execute(&w.compressed, &cfg, None).result.lnl);
    }
    for pair in lnls.windows(2) {
        assert!(pair[0].to_bits() == pair[1].to_bits(), "{lnls:?}");
    }
}

#[test]
fn worker_count_is_benign_under_fast_reduce() {
    // Fast reductions are only approximately rank-count-invariant (the
    // summation tree depends on the world size), and the branch-length
    // smoother's seeded Newton steps can amplify those last-bit differences
    // across convergence boundaries. The searches must still agree to well
    // within biological significance.
    let w = workloads::partitioned(6, 2, 60, 5);
    let mut lnls = Vec::new();
    for ranks in [1usize, 2, 3] {
        let mut cfg = ForkJoinConfig::new(ranks);
        cfg.search = quick();
        cfg.seed = 9;
        lnls.push(execute(&w.compressed, &cfg, None).result.lnl);
    }
    for pair in lnls.windows(2) {
        assert!((pair[0] - pair[1]).abs() < 1e-2, "{lnls:?}");
    }
}

#[test]
fn every_operation_broadcasts_a_descriptor_or_parameters() {
    // The defining property of fork-join: all coordination flows through
    // master broadcasts.
    let w = workloads::partitioned(6, 3, 60, 7);
    let mut cfg = ForkJoinConfig::new(3);
    cfg.search = quick();
    let out = execute(&w.compressed, &cfg, None);
    let s = &out.comm_stats;
    assert!(s.get(CommCategory::TraversalDescriptor).regions > 0);
    assert!(s.get(CommCategory::ModelParams).regions > 0);
    assert!(s.get(CommCategory::BranchLength).regions > 0);
    assert!(s.get(CommCategory::SiteLikelihoods).regions > 0);
    // Broadcast count >= reduce count is NOT generally true (NR iterations
    // reduce per candidate); but every reduce has a commanding broadcast.
    let broadcasts = s.ops_of_kind(exa_comm::OpKind::Broadcast);
    let reduces = s.ops_of_kind(exa_comm::OpKind::Reduce);
    assert!(
        broadcasts >= reduces,
        "broadcasts {broadcasts} vs reduces {reduces}"
    );
}

#[test]
fn mps_strategy_works_under_forkjoin() {
    let w = workloads::partitioned(6, 8, 40, 11);
    let mut cyc = ForkJoinConfig::new(3);
    cyc.search = quick();
    cyc.seed = 3;
    let mut mps = cyc.clone();
    mps.strategy = exa_sched::Strategy::MonolithicLpt;
    let a = execute(&w.compressed, &cyc, None);
    let b = execute(&w.compressed, &mps, None);
    assert!((a.result.lnl - b.result.lnl).abs() < 1e-6);
}

#[test]
fn parsimony_start_beats_or_matches_random_start() {
    use exa_search::StartingTree;
    let w = workloads::partitioned(8, 2, 120, 13);
    let mut random = ForkJoinConfig::new(2);
    random.search = quick();
    random.starting_tree = StartingTree::Random;
    let mut pars = random.clone();
    pars.starting_tree = StartingTree::Parsimony;
    let lr = execute(&w.compressed, &random, None).result.lnl;
    let lp = execute(&w.compressed, &pars, None).result.lnl;
    // With only 1 search iteration, a better start shows through.
    assert!(lp >= lr - 1.0, "parsimony {lp} vs random {lr}");
}
