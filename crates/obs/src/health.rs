//! Run-health reporting: heartbeat records and the end-of-run summary.
//!
//! A long de-centralized run is opaque from the outside: stdout shows the
//! final tree hours later, and a stalled or diverged run looks identical to
//! a slow one. The heartbeat monitor emits one JSON-lines
//! [`HeartbeatRecord`] per search-iteration boundary (behind
//! `--health-out FILE`), cheap enough to tail from another terminal or feed
//! a dashboard; [`HealthReport`] condenses the same signals into the CLI's
//! end-of-run summary.

use crate::aggregate::CriticalPathSummary;
use crate::fingerprint::ReplicaDivergence;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One periodic status record, serialized as a single JSON line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatRecord {
    /// Search iteration this boundary precedes (0 = before the first).
    pub iteration: u64,
    /// Current total log likelihood.
    pub lnl: f64,
    /// Accepted SPR moves so far.
    pub spr_accepts: u64,
    /// Collectives per wall-clock second since the previous heartbeat.
    pub collectives_per_sec: f64,
    /// Cumulative theoretical payload bytes across all collectives.
    pub comm_bytes: u64,
    /// Measured kernel-time imbalance (max rank / mean rank) since the
    /// previous heartbeat; 1.0 is perfect balance, 0.0 means no kernel
    /// time was measured in the interval.
    pub imbalance: f64,
    /// Fingerprint syncs completed so far (0 when the sentinel is off).
    pub sentinel_syncs: u64,
    /// `"ok"` while replicas agree. A run that trips the sentinel aborts
    /// before the next heartbeat, so a diverged status never appears here —
    /// the field documents that the run was verified up to this record.
    pub divergence: String,
    /// Label of the likelihood-kernel backend in use (`"scalar"`/`"simd"`).
    /// `None` when absent, so heartbeat files written before the field
    /// existed still parse.
    pub kernel: Option<String>,
    /// Subtree-repeat compression ratio so far:
    /// `(clv_updates + clv_saved) / clv_updates`, i.e. how many times more
    /// CLV columns a repeat-blind run would have computed. 1.0 when
    /// compression is off; `None` on legacy records.
    pub repeat_ratio: Option<f64>,
    /// Cumulative CLV pattern-category updates skipped by subtree-repeat
    /// compression. `None` on legacy records.
    pub clv_saved: Option<u64>,
    /// Search iteration captured by the most recent committed checkpoint
    /// generation. `None` on legacy records or before the first checkpoint.
    pub last_checkpoint_iter: Option<u64>,
    /// Wall-clock milliseconds the most recent checkpoint write took
    /// (gather + encode + fsync + rename). `None` on legacy records or
    /// before the first checkpoint.
    pub checkpoint_write_ms: Option<f64>,
    /// Label of the negotiated reduction mode (`"fast"`/`"reproducible"`).
    /// `None` on legacy records.
    pub reduce: Option<String>,
    /// Intra-rank worker threads the run negotiated. `None` on legacy
    /// records.
    pub threads: Option<u64>,
    /// Label of the negotiated gradient-BLO mode (`"on"`/`"off"`). `None`
    /// on legacy records.
    pub gradient: Option<String>,
}

impl HeartbeatRecord {
    /// One-line JSON encoding (no interior newlines), ready to append to a
    /// JSON-lines file.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("heartbeat serialization cannot fail")
    }

    /// Parse a line produced by [`HeartbeatRecord::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<HeartbeatRecord, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }
}

/// One daemon-level status record from `exa-serve`: queue and worker-pool
/// gauges, serialized as a single JSON line (`GET /health` returns the
/// latest one; `GET /stream-health` emits them as ndjson). The daemon owns
/// the counters; this type only fixes the wire format so dashboards and the
/// verify harness can `jq` it without knowing daemon internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeHeartbeat {
    /// Monotonic record index within this daemon process.
    pub seq: u64,
    /// Jobs waiting in the scheduler (not running, not terminal).
    pub queue_depth: u64,
    /// Jobs currently executing on a worker.
    pub running: u64,
    /// Workers parked waiting for dispatchable jobs.
    pub workers_idle: u64,
    /// Terminal-state counters since daemon start (journal replay included).
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    /// Checkpoint-preemptions performed (a job may contribute several).
    pub preemptions: u64,
    /// Runs started from a checkpoint left by a previous attempt.
    pub resumes: u64,
    /// Worst queue wait so far, submit → first dispatch, in milliseconds.
    pub max_wait_ms: f64,
    /// Mean queue wait over all first dispatches, in milliseconds.
    pub mean_wait_ms: f64,
    /// Per-tenant gauges, in tenant-name order.
    pub tenants: Vec<TenantGauge>,
    /// Daemon build version (`CARGO_PKG_VERSION`). `None` on legacy
    /// records.
    pub version: Option<String>,
    /// Locally-negotiated likelihood-kernel capability (`"scalar"`/
    /// `"simd"` — what a single-node job would resolve `auto` to). `None`
    /// on legacy records.
    pub kernel: Option<String>,
    /// Locally-resolved site-repeats capability (`"on"`/`"off"`). `None`
    /// on legacy records.
    pub site_repeats: Option<String>,
    /// Seconds since this daemon process started. `None` on legacy
    /// records.
    pub uptime_secs: Option<f64>,
    /// Locally-resolved reduction-mode capability (`"fast"`/
    /// `"reproducible"` — what a single-node job would resolve `auto` to).
    /// `None` on legacy records.
    pub reduce: Option<String>,
    /// Locally-resolved gradient-BLO capability (`"on"`/`"off"`). `None`
    /// on legacy records.
    pub gradient: Option<String>,
}

/// Per-tenant slice of a [`ServeHeartbeat`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantGauge {
    pub tenant: String,
    /// Jobs of this tenant waiting in the scheduler.
    pub queued: u64,
    /// Jobs of this tenant currently running.
    pub running: u64,
    /// Dispatches granted to this tenant since daemon start.
    pub dispatched: u64,
}

impl ServeHeartbeat {
    /// One-line JSON encoding, ready for an ndjson stream.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("serve heartbeat serialization cannot fail")
    }

    /// Parse a line produced by [`ServeHeartbeat::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<ServeHeartbeat, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }
}

/// A run heartbeat multiplexed onto a shared stream: the owning job's id
/// wrapped around the job's own [`HeartbeatRecord`]. The daemon gives every
/// job a private `health.jsonl` spool file; when their lines are merged into
/// one feed this wrapper keeps them attributable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobHeartbeat {
    /// Daemon-assigned job id.
    pub job: u64,
    /// The job's own per-iteration record, unchanged.
    pub record: HeartbeatRecord,
}

impl JobHeartbeat {
    /// One-line JSON encoding, ready for an ndjson stream.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("job heartbeat serialization cannot fail")
    }

    /// Parse a line produced by [`JobHeartbeat::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<JobHeartbeat, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }
}

/// Measured kernel-time imbalance: max over ranks divided by the mean.
/// Returns 0.0 when no time was measured (so callers can distinguish "no
/// data" from "perfectly balanced").
pub fn imbalance_ratio(per_rank_ns: &[u64]) -> f64 {
    if per_rank_ns.is_empty() {
        return 0.0;
    }
    let total: u64 = per_rank_ns.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / per_rank_ns.len() as f64;
    *per_rank_ns.iter().max().unwrap() as f64 / mean
}

/// End-of-run health summary for the CLI.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Sentinel cadence in collectives (0 = sentinel off).
    pub sentinel_cadence: u64,
    /// Fingerprint syncs completed.
    pub sentinel_syncs: u64,
    /// The divergence that aborted the run, if any.
    pub divergence: Option<ReplicaDivergence>,
    /// Measured kernel-time imbalance over the whole run (from the trace),
    /// when tracing was on.
    pub measured_imbalance: Option<f64>,
    /// The scheduler's predicted imbalance (pattern counts).
    pub predicted_imbalance: Option<f64>,
    /// Heartbeat records written.
    pub heartbeats: u64,
    /// Label of the likelihood-kernel backend the run used (`None` when
    /// the producing layer predates kernel selection).
    pub kernel: Option<String>,
    /// Site-repeats setting the run used (`"on"`/`"off"`; `None` when the
    /// producing layer predates repeat compression).
    pub site_repeats: Option<String>,
    /// Subtree-repeat compression ratio over the whole run:
    /// `(clv_updates + clv_saved) / clv_updates`.
    pub repeat_ratio: Option<f64>,
    /// Per-iteration wall-time attribution (compute vs collective-wait vs
    /// straggler-induced idle), from [`crate::RunTrace::critical_path`].
    /// `None` when tracing was off or the trace had no iteration marks.
    pub critical_path: Option<CriticalPathSummary>,
    /// Reduction mode the run negotiated (`"fast"`/`"reproducible"`;
    /// `None` when the producing layer predates reduce-mode selection).
    pub reduce: Option<String>,
    /// Intra-rank worker threads per rank the run negotiated (`None` when
    /// the producing layer predates the worker pool).
    pub threads: Option<u64>,
    /// Gradient-BLO mode the run negotiated (`"on"`/`"off"`; `None` when
    /// the producing layer predates the gradient sweep).
    pub gradient: Option<String>,
}

impl HealthReport {
    /// Multi-line plain-text rendering for the end-of-run summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run health");
        if let Some(kernel) = &self.kernel {
            let _ = writeln!(out, "  kernel: {kernel}");
        }
        if let Some(reduce) = &self.reduce {
            let _ = writeln!(out, "  reduce: {reduce}");
        }
        if let Some(threads) = self.threads {
            let _ = writeln!(out, "  threads: {threads}");
        }
        if let Some(gradient) = &self.gradient {
            let _ = writeln!(out, "  gradient: {gradient}");
        }
        match (&self.site_repeats, self.repeat_ratio) {
            (Some(setting), Some(ratio)) => {
                let _ = writeln!(
                    out,
                    "  site repeats: {setting} (compression ratio {ratio:.3})"
                );
            }
            (Some(setting), None) => {
                let _ = writeln!(out, "  site repeats: {setting}");
            }
            (None, _) => {}
        }
        match (self.sentinel_cadence, &self.divergence) {
            (0, _) => {
                let _ = writeln!(out, "  sentinel: off");
            }
            (n, None) => {
                let _ = writeln!(
                    out,
                    "  sentinel: {} fingerprint sync(s) at cadence {n}, replicas bit-identical",
                    self.sentinel_syncs
                );
            }
            (n, Some(d)) => {
                let _ = writeln!(
                    out,
                    "  sentinel: TRIPPED after {} sync(s) at cadence {n}",
                    self.sentinel_syncs
                );
                let _ = writeln!(out, "  {d}");
            }
        }
        match (self.measured_imbalance, self.predicted_imbalance) {
            (Some(m), Some(p)) if p > 0.0 => {
                let _ = writeln!(
                    out,
                    "  load imbalance: measured {m:.3}, predicted {p:.3} (ratio {:.3})",
                    m / p
                );
            }
            (Some(m), _) => {
                let _ = writeln!(out, "  load imbalance: measured {m:.3}");
            }
            (None, Some(p)) => {
                let _ = writeln!(out, "  load imbalance: predicted {p:.3} (no trace)");
            }
            (None, None) => {}
        }
        if self.heartbeats > 0 {
            let _ = writeln!(out, "  heartbeats: {} record(s)", self.heartbeats);
        }
        if let Some(cp) = &self.critical_path {
            let _ = writeln!(
                out,
                "  critical path: {} iteration(s), compute {:.1}%, collective {:.1}%, \
                 straggler {:.1}%",
                cp.iterations,
                cp.compute_frac() * 100.0,
                cp.collective_frac() * 100.0,
                cp.straggler_frac() * 100.0,
            );
            match (cp.slowest_rank, cp.hottest_partition) {
                (Some(r), Some(p)) => {
                    let _ = writeln!(out, "    slowest rank {r}, hottest partition {p}");
                }
                (Some(r), None) => {
                    let _ = writeln!(out, "    slowest rank {r}");
                }
                (None, Some(p)) => {
                    let _ = writeln!(out, "    hottest partition {p}");
                }
                (None, None) => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Component;

    fn record() -> HeartbeatRecord {
        HeartbeatRecord {
            iteration: 3,
            lnl: -1234.5678,
            spr_accepts: 7,
            collectives_per_sec: 812.5,
            comm_bytes: 65536,
            imbalance: 1.25,
            sentinel_syncs: 4,
            divergence: "ok".into(),
            kernel: Some("simd".into()),
            repeat_ratio: Some(2.5),
            clv_saved: Some(1200),
            last_checkpoint_iter: Some(2),
            checkpoint_write_ms: Some(0.75),
            reduce: Some("fast".into()),
            threads: Some(2),
            gradient: Some("on".into()),
        }
    }

    #[test]
    fn heartbeat_roundtrips_as_one_json_line() {
        let r = record();
        let line = r.to_json_line();
        assert!(!line.contains('\n'), "must be a single line: {line}");
        let back = HeartbeatRecord::from_json_line(&line).unwrap();
        assert_eq!(r, back);
        assert!(HeartbeatRecord::from_json_line("not json").is_err());

        // Lines written before the kernel/repeat fields existed still parse.
        let legacy = line
            .replace(",\"kernel\":\"simd\"", "")
            .replace(",\"repeat_ratio\":2.5", "")
            .replace(",\"clv_saved\":1200", "")
            .replace(",\"last_checkpoint_iter\":2", "")
            .replace(",\"checkpoint_write_ms\":0.75", "")
            .replace(",\"reduce\":\"fast\"", "")
            .replace(",\"threads\":2", "")
            .replace(",\"gradient\":\"on\"", "");
        assert_ne!(legacy, line);
        let back = HeartbeatRecord::from_json_line(&legacy).unwrap();
        assert_eq!(back.kernel, None);
        assert_eq!(back.repeat_ratio, None);
        assert_eq!(back.clv_saved, None);
        assert_eq!(back.last_checkpoint_iter, None);
        assert_eq!(back.checkpoint_write_ms, None);
        assert_eq!(back.reduce, None);
        assert_eq!(back.threads, None);
        assert_eq!(back.gradient, None);
    }

    #[test]
    fn serve_and_job_heartbeats_roundtrip() {
        let hb = ServeHeartbeat {
            seq: 9,
            queue_depth: 42,
            running: 3,
            workers_idle: 1,
            completed: 17,
            failed: 1,
            cancelled: 2,
            preemptions: 5,
            resumes: 4,
            max_wait_ms: 812.5,
            mean_wait_ms: 90.25,
            tenants: vec![
                TenantGauge {
                    tenant: "batch".into(),
                    queued: 40,
                    running: 1,
                    dispatched: 12,
                },
                TenantGauge {
                    tenant: "interactive".into(),
                    queued: 2,
                    running: 2,
                    dispatched: 8,
                },
            ],
            version: Some("0.1.0".into()),
            kernel: Some("simd".into()),
            site_repeats: Some("on".into()),
            uptime_secs: Some(12.5),
            reduce: Some("fast".into()),
            gradient: Some("on".into()),
        };
        let line = hb.to_json_line();
        assert!(!line.contains('\n'), "must be a single line: {line}");
        assert_eq!(ServeHeartbeat::from_json_line(&line).unwrap(), hb);
        assert!(ServeHeartbeat::from_json_line("not json").is_err());

        // Lines written before the capability fields existed still parse.
        let legacy = line
            .replace(",\"version\":\"0.1.0\"", "")
            .replace(",\"kernel\":\"simd\"", "")
            .replace(",\"site_repeats\":\"on\"", "")
            .replace(",\"uptime_secs\":12.5", "")
            .replace(",\"reduce\":\"fast\"", "")
            .replace(",\"gradient\":\"on\"", "");
        assert_ne!(legacy, line);
        let back = ServeHeartbeat::from_json_line(&legacy).unwrap();
        assert_eq!(back.version, None);
        assert_eq!(back.kernel, None);
        assert_eq!(back.site_repeats, None);
        assert_eq!(back.uptime_secs, None);
        assert_eq!(back.reduce, None);
        assert_eq!(back.gradient, None);

        let tagged = JobHeartbeat {
            job: 7,
            record: record(),
        };
        let line = tagged.to_json_line();
        assert!(!line.contains('\n'), "must be a single line: {line}");
        assert_eq!(JobHeartbeat::from_json_line(&line).unwrap(), tagged);
    }

    #[test]
    fn imbalance_ratio_is_max_over_mean() {
        assert_eq!(imbalance_ratio(&[]), 0.0);
        assert_eq!(imbalance_ratio(&[0, 0]), 0.0);
        assert!((imbalance_ratio(&[100, 100, 100]) - 1.0).abs() < 1e-12);
        // mean = 150, max = 200.
        assert!((imbalance_ratio(&[100, 200]) - 200.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn report_renders_clean_and_tripped_states() {
        let clean = HealthReport {
            sentinel_cadence: 64,
            sentinel_syncs: 12,
            divergence: None,
            measured_imbalance: Some(1.08),
            predicted_imbalance: Some(1.05),
            heartbeats: 5,
            kernel: Some("simd".into()),
            site_repeats: Some("on".into()),
            repeat_ratio: Some(2.125),
            critical_path: Some(CriticalPathSummary {
                iterations: 4,
                wall_ns: 1_000,
                compute_ns: 600,
                collective_ns: 100,
                straggler_ns: 50,
                other_ns: 250,
                slowest_rank: Some(1),
                hottest_partition: Some(3),
                hottest_partition_ns: 400,
            }),
            reduce: Some("reproducible".into()),
            threads: Some(2),
            gradient: Some("on".into()),
        };
        let text = clean.render();
        assert!(text.contains("kernel: simd"), "{text}");
        assert!(text.contains("reduce: reproducible"), "{text}");
        assert!(text.contains("threads: 2"), "{text}");
        assert!(text.contains("gradient: on"), "{text}");
        assert!(text.contains("site repeats: on"), "{text}");
        assert!(text.contains("compression ratio 2.125"), "{text}");
        assert!(text.contains("replicas bit-identical"), "{text}");
        assert!(text.contains("cadence 64"), "{text}");
        assert!(text.contains("measured 1.080"), "{text}");
        assert!(text.contains("heartbeats: 5"), "{text}");
        assert!(
            text.contains("critical path: 4 iteration(s), compute 60.0%"),
            "{text}"
        );
        assert!(
            text.contains("slowest rank 1, hottest partition 3"),
            "{text}"
        );

        let tripped = HealthReport {
            sentinel_cadence: 8,
            sentinel_syncs: 2,
            divergence: Some(ReplicaDivergence {
                collective_index: 16,
                sync_index: 2,
                minority_ranks: vec![1],
                components: vec![Component::ModelParams],
            }),
            ..HealthReport::default()
        };
        let text = tripped.render();
        assert!(text.contains("TRIPPED"), "{text}");
        assert!(text.contains("rank(s) {1}"), "{text}");

        let off = HealthReport::default();
        assert!(off.render().contains("sentinel: off"));
    }
}
