//! `exa-obs`: per-rank tracing & metrics for parallel phylogenetic runs.
//!
//! The paper's central argument is about *parallel regions*: the fork-join
//! scheme opens one region per traversal-descriptor broadcast while the
//! de-centralized scheme needs only the two allreduces of §III-B. Verifying
//! that claim (and localizing where wall time goes) requires seeing every
//! region, kernel invocation and collective per rank. This crate provides:
//!
//! - [`Recorder`]/[`Tracer`]: span-style events written to per-rank
//!   append-only buffers. The hot path takes no lock — each rank thread owns
//!   its buffer exclusively — and a disabled recorder costs one relaxed
//!   atomic load per event site.
//! - a thread-local current tracer ([`install_tracer`]) so deep layers
//!   (likelihood kernels, the tree search) can emit events without the
//!   tracer being plumbed through every signature; the free functions
//!   [`region`], [`collective`] and [`mark`] are no-ops when no tracer is
//!   installed.
//! - aggregation ([`RunTrace::aggregate`]) into run-level metrics: duration
//!   histograms per region kind, byte totals per [`CommCategory`], event
//!   counts — plus [`Snapshot`]s of [`CommStats`] with a `diff` API.
//! - exporters: Chrome `trace_event` JSON (openable in Perfetto /
//!   `chrome://tracing`) and a plain JSON summary.
//! - [`metrics`]: a process-wide registry of counters, gauges and
//!   log-linear histograms rendered in Prometheus text exposition format —
//!   the *live* counterpart of the offline trace, scraped via the daemon's
//!   `GET /metrics` or dumped by `examl --metrics-out`.
//! - [`RunTrace::critical_path`]: per-iteration wall-time attribution into
//!   compute vs collective-wait vs straggler-induced idle, naming the
//!   slowest rank and hottest partition per window.
//!
//! The communication bookkeeping types ([`CommCategory`], [`OpKind`],
//! [`CommStats`]) live here — at the bottom of the crate stack — and are
//! re-exported by `exa-comm` for compatibility with existing call sites.

mod aggregate;
mod events;
mod export;
mod fingerprint;
mod health;
pub mod metrics;
mod recorder;
mod stats;

pub use aggregate::{
    CriticalPath, CriticalPathSummary, IterationWindow, KernelProfile, RegionStats, RunMetrics,
    RunTrace,
};
pub use events::{EventKind, RegionKind, TraceEvent};
pub use export::{
    chrome_trace, summary_table, write_chrome_trace, BATCH_MARK, CHECKPOINT_MARK, GRADIENT_MARK,
    ITERATION_MARK, KERNEL_BACKEND_MARK, REDUCE_MODE_MARK, SITE_REPEATS_MARK, THREADS_MARK,
};
pub use fingerprint::{
    check_agreement, fnv1a, Component, Fnv1a, ReplicaDivergence, StateFingerprint, FNV_OFFSET,
    FNV_PRIME,
};
pub use health::{
    imbalance_ratio, HealthReport, HeartbeatRecord, JobHeartbeat, ServeHeartbeat, TenantGauge,
};
pub use recorder::{
    collective, install_tracer, kernel, mark, region, tracing_active, with_tracer, Recorder,
    RegionGuard, TlsGuard, Tracer,
};
pub use stats::{CategoryStats, CommCategory, CommStats, OpKind, Snapshot};
