//! Merge per-rank event buffers into run-level metrics.

use crate::events::{EventKind, RegionKind, TraceEvent};
use crate::stats::CommStats;
use serde::{Deserialize, Serialize};

/// The merged output of one run's [`crate::Recorder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    pub per_rank: Vec<Vec<TraceEvent>>,
}

impl RunTrace {
    pub fn n_ranks(&self) -> usize {
        self.per_rank.len()
    }

    pub fn events(&self, rank: usize) -> &[TraceEvent] {
        &self.per_rank[rank]
    }

    /// Timestamp-free event signatures of one rank (see
    /// [`TraceEvent::signature`]); the unit of determinism comparisons.
    pub fn signatures(&self, rank: usize) -> Vec<String> {
        self.per_rank[rank]
            .iter()
            .map(TraceEvent::signature)
            .collect()
    }

    /// Total recorded events across ranks.
    pub fn total_events(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// Reduce to run-level metrics.
    pub fn aggregate(&self) -> RunMetrics {
        let mut regions = vec![RegionStats::default(); RegionKind::ALL.len()];
        let mut comm = CommStats::default();
        let mut collective_events = 0u64;
        let mut marks = 0u64;
        let mut kernel_events = 0u64;
        let mut unmatched = 0u64;
        let mut span_ns = 0u64;
        // Collectives are symmetric: every rank logs the same operation, so
        // run-level comm stats come from rank 0's view (matching how the
        // communicator's own `CommStats` counts each collective once).
        for (rank, events) in self.per_rank.iter().enumerate() {
            // Begin-events awaiting their end, per kind (regions of
            // different kinds may nest arbitrarily).
            let mut open: Vec<Vec<u64>> = vec![Vec::new(); RegionKind::ALL.len()];
            for e in events {
                span_ns = span_ns.max(e.ts_ns);
                match &e.kind {
                    EventKind::RegionBegin { region } => {
                        open[region.index()].push(e.ts_ns);
                    }
                    EventKind::RegionEnd { region } => match open[region.index()].pop() {
                        Some(begin_ns) => {
                            regions[region.index()].observe(e.ts_ns.saturating_sub(begin_ns));
                        }
                        None => unmatched += 1,
                    },
                    EventKind::Collective {
                        op,
                        category,
                        bytes,
                    } => {
                        collective_events += 1;
                        if rank == 0 {
                            comm.record(*category, *op, *bytes);
                        }
                    }
                    EventKind::Mark { .. } => marks += 1,
                    // Kernel spans are complete at emission; they carry no
                    // begin/end pair and stay out of the region stacks.
                    EventKind::Kernel { .. } => kernel_events += 1,
                }
            }
            unmatched += open.iter().map(|v| v.len() as u64).sum::<u64>();
        }
        RunMetrics {
            n_ranks: self.n_ranks(),
            regions,
            comm,
            collective_events,
            marks,
            kernel_events,
            unmatched_regions: unmatched,
            span_ns,
        }
    }

    /// Sum per-partition kernel durations per rank: the *measured* load the
    /// scheduler's pattern-count prediction can be checked against.
    pub fn kernel_profile(&self) -> KernelProfile {
        let per_rank = self
            .per_rank
            .iter()
            .map(|events| {
                let mut acc: Vec<(u32, u64)> = Vec::new();
                for e in events {
                    if let EventKind::Kernel {
                        partition, dur_ns, ..
                    } = &e.kind
                    {
                        match acc.binary_search_by_key(partition, |&(p, _)| p) {
                            Ok(i) => acc[i].1 += dur_ns,
                            Err(i) => acc.insert(i, (*partition, *dur_ns)),
                        }
                    }
                }
                acc
            })
            .collect();
        KernelProfile { per_rank }
    }
}

/// Measured kernel time per (rank, global partition), summed over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// `per_rank[r]` is rank `r`'s `(global partition, total ns)` pairs,
    /// sorted by partition index.
    pub per_rank: Vec<Vec<(u32, u64)>>,
}

impl KernelProfile {
    /// Total measured kernel nanoseconds per rank.
    pub fn rank_totals(&self) -> Vec<u64> {
        self.per_rank
            .iter()
            .map(|parts| parts.iter().map(|&(_, ns)| ns).sum())
            .collect()
    }

    /// Total measured kernel nanoseconds per global partition, summed
    /// across ranks, sorted by partition index.
    pub fn partition_totals(&self) -> Vec<(u32, u64)> {
        let mut acc: Vec<(u32, u64)> = Vec::new();
        for parts in &self.per_rank {
            for &(p, ns) in parts {
                match acc.binary_search_by_key(&p, |&(q, _)| q) {
                    Ok(i) => acc[i].1 += ns,
                    Err(i) => acc.insert(i, (p, ns)),
                }
            }
        }
        acc
    }
}

/// Duration statistics of one [`RegionKind`] across all ranks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionStats {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Log₂ duration histogram: bucket `i` counts durations in
    /// `[2^i, 2^(i+1))` ns (bucket 0 additionally holds 0 ns).
    pub hist: [u64; 32],
}

impl RegionStats {
    fn observe(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
        let bucket = if dur_ns == 0 {
            0
        } else {
            (63 - dur_ns.leading_zeros() as usize).min(self.hist.len() - 1)
        };
        self.hist[bucket] += 1;
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Run-level metrics: the aggregation of every rank's events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    pub n_ranks: usize,
    /// Indexed by [`RegionKind::ALL`] order.
    pub regions: Vec<RegionStats>,
    /// Comm traffic reconstructed from collective events (rank 0's view,
    /// each collective counted once).
    pub comm: CommStats,
    /// Collective events across **all** ranks (≈ regions × ranks).
    pub collective_events: u64,
    pub marks: u64,
    /// Complete kernel spans across all ranks (see [`EventKind::Kernel`]).
    pub kernel_events: u64,
    /// `RegionEnd` without begin or vice versa — nonzero indicates a rank
    /// died mid-region or a driver bug.
    pub unmatched_regions: u64,
    /// Largest timestamp seen (run span on the recorder's clock).
    pub span_ns: u64,
}

impl RunMetrics {
    pub fn region(&self, kind: RegionKind) -> &RegionStats {
        &self.regions[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CommCategory, OpKind};

    fn ev(ts_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { ts_ns, kind }
    }

    #[test]
    fn aggregates_nested_regions() {
        let trace = RunTrace {
            per_rank: vec![vec![
                ev(
                    0,
                    EventKind::RegionBegin {
                        region: RegionKind::SprRound,
                    },
                ),
                ev(
                    10,
                    EventKind::RegionBegin {
                        region: RegionKind::Newview,
                    },
                ),
                ev(
                    30,
                    EventKind::RegionEnd {
                        region: RegionKind::Newview,
                    },
                ),
                ev(
                    40,
                    EventKind::RegionBegin {
                        region: RegionKind::Newview,
                    },
                ),
                ev(
                    100,
                    EventKind::RegionEnd {
                        region: RegionKind::Newview,
                    },
                ),
                ev(
                    200,
                    EventKind::RegionEnd {
                        region: RegionKind::SprRound,
                    },
                ),
            ]],
        };
        let m = trace.aggregate();
        assert_eq!(m.region(RegionKind::Newview).count, 2);
        assert_eq!(m.region(RegionKind::Newview).total_ns, 80);
        assert_eq!(m.region(RegionKind::Newview).min_ns, 20);
        assert_eq!(m.region(RegionKind::Newview).max_ns, 60);
        assert_eq!(m.region(RegionKind::SprRound).count, 1);
        assert_eq!(m.region(RegionKind::SprRound).total_ns, 200);
        assert_eq!(m.unmatched_regions, 0);
        assert_eq!(m.span_ns, 200);
        assert!((m.region(RegionKind::Newview).mean_ns() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn comm_stats_count_each_collective_once() {
        let coll = EventKind::Collective {
            op: OpKind::Allreduce,
            category: CommCategory::SiteLikelihoods,
            bytes: 8,
        };
        let trace = RunTrace {
            per_rank: vec![
                vec![ev(1, coll.clone()), ev(2, coll.clone())],
                vec![ev(1, coll.clone()), ev(2, coll.clone())],
                vec![ev(1, coll.clone()), ev(2, coll)],
            ],
        };
        let m = trace.aggregate();
        // 6 events across ranks, but 2 logical collectives.
        assert_eq!(m.collective_events, 6);
        assert_eq!(m.comm.total_regions(), 2);
        assert_eq!(m.comm.get(CommCategory::SiteLikelihoods).bytes, 16);
    }

    #[test]
    fn unmatched_regions_are_counted_not_fatal() {
        let trace = RunTrace {
            per_rank: vec![vec![
                ev(
                    0,
                    EventKind::RegionBegin {
                        region: RegionKind::Evaluate,
                    },
                ),
                ev(
                    5,
                    EventKind::RegionEnd {
                        region: RegionKind::Newview,
                    },
                ),
            ]],
        };
        let m = trace.aggregate();
        // One dangling begin + one end without begin.
        assert_eq!(m.unmatched_regions, 2);
        assert_eq!(m.region(RegionKind::Evaluate).count, 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = RegionStats::default();
        s.observe(0); // bucket 0
        s.observe(1); // bucket 0
        s.observe(2); // bucket 1
        s.observe(3); // bucket 1
        s.observe(1024); // bucket 10
        assert_eq!(s.hist[0], 2);
        assert_eq!(s.hist[1], 2);
        assert_eq!(s.hist[10], 1);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn kernel_profile_sums_per_rank_and_partition() {
        let k = |ts, partition, dur_ns| {
            ev(
                ts,
                EventKind::Kernel {
                    region: RegionKind::Newview,
                    partition,
                    dur_ns,
                },
            )
        };
        let trace = RunTrace {
            per_rank: vec![
                vec![k(0, 2, 100), k(1, 0, 50), k(2, 2, 25)],
                vec![k(0, 1, 10), k(1, 1, 30)],
            ],
        };
        let profile = trace.kernel_profile();
        assert_eq!(profile.per_rank[0], vec![(0, 50), (2, 125)]);
        assert_eq!(profile.per_rank[1], vec![(1, 40)]);
        assert_eq!(profile.rank_totals(), vec![175, 40]);
        assert_eq!(profile.partition_totals(), vec![(0, 50), (1, 40), (2, 125)]);

        let m = trace.aggregate();
        assert_eq!(m.kernel_events, 5);
        // Kernel spans carry their own duration; region stats stay empty.
        assert_eq!(m.region(RegionKind::Newview).count, 0);
        assert_eq!(m.unmatched_regions, 0);
    }

    #[test]
    fn metrics_roundtrip_through_json() {
        let trace = RunTrace {
            per_rank: vec![vec![
                ev(
                    0,
                    EventKind::RegionBegin {
                        region: RegionKind::NrIteration,
                    },
                ),
                ev(
                    4,
                    EventKind::RegionEnd {
                        region: RegionKind::NrIteration,
                    },
                ),
                ev(
                    6,
                    EventKind::Mark {
                        label: "pass:1".into(),
                    },
                ),
            ]],
        };
        let m = trace.aggregate();
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(m, back);
    }
}
