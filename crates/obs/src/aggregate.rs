//! Merge per-rank event buffers into run-level metrics, including the
//! per-iteration critical-path attribution (compute vs collective-wait vs
//! straggler-induced idle).

use crate::events::{EventKind, RegionKind, TraceEvent};
use crate::stats::CommStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The merged output of one run's [`crate::Recorder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    pub per_rank: Vec<Vec<TraceEvent>>,
}

impl RunTrace {
    pub fn n_ranks(&self) -> usize {
        self.per_rank.len()
    }

    pub fn events(&self, rank: usize) -> &[TraceEvent] {
        &self.per_rank[rank]
    }

    /// Timestamp-free event signatures of one rank (see
    /// [`TraceEvent::signature`]); the unit of determinism comparisons.
    pub fn signatures(&self, rank: usize) -> Vec<String> {
        self.per_rank[rank]
            .iter()
            .map(TraceEvent::signature)
            .collect()
    }

    /// Total recorded events across ranks.
    pub fn total_events(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// Reduce to run-level metrics.
    pub fn aggregate(&self) -> RunMetrics {
        let mut regions = vec![RegionStats::default(); RegionKind::ALL.len()];
        let mut comm = CommStats::default();
        let mut collective_events = 0u64;
        let mut marks = 0u64;
        let mut kernel_events = 0u64;
        let mut unmatched = 0u64;
        let mut span_ns = 0u64;
        // Collectives are symmetric: every rank logs the same operation, so
        // run-level comm stats come from rank 0's view (matching how the
        // communicator's own `CommStats` counts each collective once).
        for (rank, events) in self.per_rank.iter().enumerate() {
            // Begin-events awaiting their end, per kind (regions of
            // different kinds may nest arbitrarily).
            let mut open: Vec<Vec<u64>> = vec![Vec::new(); RegionKind::ALL.len()];
            for e in events {
                span_ns = span_ns.max(e.ts_ns);
                match &e.kind {
                    EventKind::RegionBegin { region } => {
                        open[region.index()].push(e.ts_ns);
                    }
                    EventKind::RegionEnd { region } => match open[region.index()].pop() {
                        Some(begin_ns) => {
                            regions[region.index()].observe(e.ts_ns.saturating_sub(begin_ns));
                        }
                        None => unmatched += 1,
                    },
                    EventKind::Collective {
                        op,
                        category,
                        bytes,
                    } => {
                        collective_events += 1;
                        if rank == 0 {
                            comm.record(*category, *op, *bytes);
                        }
                    }
                    EventKind::Mark { .. } => marks += 1,
                    // Kernel spans are complete at emission; they carry no
                    // begin/end pair and stay out of the region stacks.
                    EventKind::Kernel { .. } => kernel_events += 1,
                }
            }
            unmatched += open.iter().map(|v| v.len() as u64).sum::<u64>();
        }
        RunMetrics {
            n_ranks: self.n_ranks(),
            regions,
            comm,
            collective_events,
            marks,
            kernel_events,
            unmatched_regions: unmatched,
            span_ns,
        }
    }

    /// Attribute each search iteration's wall time to compute,
    /// collective-wait, straggler-induced idle, and other (bookkeeping).
    ///
    /// Windows are cut at the `iteration:N` marks the search driver emits
    /// at every boundary. All ranks of a run share the recorder's clock, so
    /// the boundaries are global: the window for iteration `N` opens at the
    /// earliest rank's mark and closes at the next iteration's (the last
    /// window closes at the final event). This also covers the fork-join
    /// scheme, where only the master thread runs the driver and emits the
    /// marks — worker events still fall into the master's windows.
    ///
    /// Per window and rank, compute is the sum of kernel span durations and
    /// collective-wait is the summed [`RegionKind::CollectiveWait`] region
    /// time. The straggler share is the part of the mean collective wait
    /// explained by kernel imbalance (the fastest ranks idle inside
    /// collectives while the slowest one computes): `min(max_compute −
    /// mean_compute, mean_collective_wait)`. The four components sum to the
    /// window's wall time exactly; when measured compute + wait exceeds the
    /// wall (clock-edge straddle), components are scaled down
    /// proportionally rather than over-attributing.
    ///
    /// Returns `None` when the trace carries no iteration marks (e.g. a
    /// zero-iteration run).
    pub fn critical_path(&self) -> Option<CriticalPath> {
        // Iteration → earliest mark timestamp across ranks.
        let mut bounds: BTreeMap<u64, u64> = BTreeMap::new();
        let mut end_ns = 0u64;
        for events in &self.per_rank {
            for e in events {
                end_ns = end_ns.max(e.ts_ns);
                if let EventKind::Mark { label } = &e.kind {
                    if let Some(n) = label
                        .strip_prefix(crate::ITERATION_MARK)
                        .and_then(|s| s.parse::<u64>().ok())
                    {
                        let slot = bounds.entry(n).or_insert(e.ts_ns);
                        *slot = (*slot).min(e.ts_ns);
                    }
                }
            }
        }
        if bounds.is_empty() {
            return None;
        }
        let starts: Vec<(u64, u64)> = bounds.into_iter().collect(); // (iteration, ts)
        let n_windows = starts.len();
        let n_ranks = self.n_ranks().max(1);
        // Window index of a timestamp; events before the first boundary
        // (setup, data distribution) are outside every window.
        let window_of = |ts: u64| -> Option<usize> {
            let idx = starts.partition_point(|&(_, b)| b <= ts);
            idx.checked_sub(1)
        };
        let mut compute = vec![vec![0u64; n_ranks]; n_windows];
        let mut collwait = vec![vec![0u64; n_ranks]; n_windows];
        let mut partitions: Vec<BTreeMap<u32, u64>> = vec![BTreeMap::new(); n_windows];
        for (rank, events) in self.per_rank.iter().enumerate() {
            let mut open_wait: Vec<u64> = Vec::new();
            for e in events {
                match &e.kind {
                    EventKind::Kernel {
                        partition, dur_ns, ..
                    } => {
                        if let Some(w) = window_of(e.ts_ns) {
                            compute[w][rank] += dur_ns;
                            *partitions[w].entry(*partition).or_insert(0) += dur_ns;
                        }
                    }
                    EventKind::RegionBegin {
                        region: RegionKind::CollectiveWait,
                    } => open_wait.push(e.ts_ns),
                    EventKind::RegionEnd {
                        region: RegionKind::CollectiveWait,
                    } => {
                        if let Some(begin) = open_wait.pop() {
                            if let Some(w) = window_of(begin) {
                                collwait[w][rank] += e.ts_ns.saturating_sub(begin);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        let windows = (0..n_windows)
            .map(|w| {
                let wall_ns = if w + 1 < n_windows {
                    starts[w + 1].1 - starts[w].1
                } else {
                    end_ns.saturating_sub(starts[w].1)
                };
                let compute_mean = compute[w].iter().sum::<u64>() / n_ranks as u64;
                let wait_mean = collwait[w].iter().sum::<u64>() / n_ranks as u64;
                let (slowest_rank, slowest_ns) = compute[w]
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, ns)| *ns)
                    .map(|(r, &ns)| (r as u32, ns))
                    .unwrap_or((0, 0));
                let mut straggler_ns = (slowest_ns - compute_mean).min(wait_mean);
                let mut collective_ns = wait_mean - straggler_ns;
                let mut compute_ns = compute_mean;
                let attributed = compute_ns + wait_mean;
                if attributed > wall_ns && attributed > 0 {
                    // Scale proportionally (u128: products can exceed u64).
                    let fit = |x: u64| ((x as u128 * wall_ns as u128) / attributed as u128) as u64;
                    compute_ns = fit(compute_ns);
                    collective_ns = fit(collective_ns);
                    straggler_ns = fit(straggler_ns);
                }
                let other_ns = wall_ns.saturating_sub(compute_ns + collective_ns + straggler_ns);
                let hottest = partitions[w]
                    .iter()
                    .max_by_key(|&(_, ns)| *ns)
                    .map(|(&p, &ns)| (p, ns));
                IterationWindow {
                    iteration: starts[w].0,
                    wall_ns,
                    compute_ns,
                    collective_ns,
                    straggler_ns,
                    other_ns,
                    slowest_rank,
                    slowest_rank_kernel_ns: slowest_ns,
                    hottest_partition: hottest.map(|(p, _)| p),
                    hottest_partition_ns: hottest.map(|(_, ns)| ns).unwrap_or(0),
                }
            })
            .collect();
        Some(CriticalPath {
            n_ranks: self.n_ranks(),
            windows,
        })
    }

    /// Sum per-partition kernel durations per rank: the *measured* load the
    /// scheduler's pattern-count prediction can be checked against.
    pub fn kernel_profile(&self) -> KernelProfile {
        let per_rank = self
            .per_rank
            .iter()
            .map(|events| {
                let mut acc: Vec<(u32, u64)> = Vec::new();
                for e in events {
                    if let EventKind::Kernel {
                        partition, dur_ns, ..
                    } = &e.kind
                    {
                        match acc.binary_search_by_key(partition, |&(p, _)| p) {
                            Ok(i) => acc[i].1 += dur_ns,
                            Err(i) => acc.insert(i, (*partition, *dur_ns)),
                        }
                    }
                }
                acc
            })
            .collect();
        KernelProfile { per_rank }
    }
}

/// Measured kernel time per (rank, global partition), summed over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// `per_rank[r]` is rank `r`'s `(global partition, total ns)` pairs,
    /// sorted by partition index.
    pub per_rank: Vec<Vec<(u32, u64)>>,
}

impl KernelProfile {
    /// Total measured kernel nanoseconds per rank.
    pub fn rank_totals(&self) -> Vec<u64> {
        self.per_rank
            .iter()
            .map(|parts| parts.iter().map(|&(_, ns)| ns).sum())
            .collect()
    }

    /// Total measured kernel nanoseconds per global partition, summed
    /// across ranks, sorted by partition index.
    pub fn partition_totals(&self) -> Vec<(u32, u64)> {
        let mut acc: Vec<(u32, u64)> = Vec::new();
        for parts in &self.per_rank {
            for &(p, ns) in parts {
                match acc.binary_search_by_key(&p, |&(q, _)| q) {
                    Ok(i) => acc[i].1 += ns,
                    Err(i) => acc.insert(i, (p, ns)),
                }
            }
        }
        acc
    }
}

/// One iteration window of the critical-path attribution. All components
/// are rank-averaged nanoseconds and sum exactly to `wall_ns`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationWindow {
    /// Search iteration this window covers (from the boundary mark).
    pub iteration: u64,
    /// Window wall time on the recorder's shared clock.
    pub wall_ns: u64,
    /// Mean per-rank kernel time.
    pub compute_ns: u64,
    /// Mean collective time *not* explained by kernel imbalance: the
    /// genuine synchronization + payload-exchange cost.
    pub collective_ns: u64,
    /// Idle time induced by the slowest rank: the part of the mean
    /// collective wait that vanishes under perfect kernel balance.
    pub straggler_ns: u64,
    /// Residual (search bookkeeping, tree surgery, model-opt scalar code).
    pub other_ns: u64,
    /// Rank with the most kernel time in this window.
    pub slowest_rank: u32,
    pub slowest_rank_kernel_ns: u64,
    /// Global partition with the most kernel time in this window (summed
    /// across ranks); `None` when no kernel span landed in the window.
    pub hottest_partition: Option<u32>,
    pub hottest_partition_ns: u64,
}

/// Per-iteration wall-time attribution over a whole run (see
/// [`RunTrace::critical_path`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    pub n_ranks: usize,
    pub windows: Vec<IterationWindow>,
}

impl CriticalPath {
    /// Condense the windows into the run-level block embedded in health
    /// JSON: component totals plus the overall slowest rank and hottest
    /// partition.
    pub fn summary(&self) -> CriticalPathSummary {
        let mut s = CriticalPathSummary {
            iterations: self.windows.len() as u64,
            ..CriticalPathSummary::default()
        };
        let mut rank_ns: BTreeMap<u32, u64> = BTreeMap::new();
        let mut part_ns: BTreeMap<u32, u64> = BTreeMap::new();
        for w in &self.windows {
            s.wall_ns += w.wall_ns;
            s.compute_ns += w.compute_ns;
            s.collective_ns += w.collective_ns;
            s.straggler_ns += w.straggler_ns;
            s.other_ns += w.other_ns;
            *rank_ns.entry(w.slowest_rank).or_insert(0) += w.slowest_rank_kernel_ns;
            if let Some(p) = w.hottest_partition {
                *part_ns.entry(p).or_insert(0) += w.hottest_partition_ns;
            }
        }
        if let Some((&r, _)) = rank_ns.iter().max_by_key(|&(_, ns)| *ns) {
            s.slowest_rank = Some(r);
        }
        if let Some((&p, &ns)) = part_ns.iter().max_by_key(|&(_, ns)| *ns) {
            s.hottest_partition = Some(p);
            s.hottest_partition_ns = ns;
        }
        s
    }
}

/// Run-level critical-path block: totals over every iteration window. The
/// four component fields sum to `wall_ns` exactly (each window's do, and
/// totals are plain sums).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPathSummary {
    /// Iteration windows attributed.
    pub iterations: u64,
    /// Total attributed wall time, ns.
    pub wall_ns: u64,
    pub compute_ns: u64,
    pub collective_ns: u64,
    pub straggler_ns: u64,
    pub other_ns: u64,
    /// Rank most often on the critical path (weighted by its kernel time
    /// in the windows it dominated).
    pub slowest_rank: Option<u32>,
    /// Partition most often the hottest, and its kernel time in those
    /// windows.
    pub hottest_partition: Option<u32>,
    pub hottest_partition_ns: u64,
}

impl CriticalPathSummary {
    /// Fraction of attributed wall time, 0.0 when no wall time was seen.
    fn frac(&self, part: u64) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            part as f64 / self.wall_ns as f64
        }
    }

    pub fn compute_frac(&self) -> f64 {
        self.frac(self.compute_ns)
    }

    pub fn collective_frac(&self) -> f64 {
        self.frac(self.collective_ns)
    }

    pub fn straggler_frac(&self) -> f64 {
        self.frac(self.straggler_ns)
    }
}

/// Duration statistics of one [`RegionKind`] across all ranks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionStats {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Log₂ duration histogram: bucket `i` counts durations in
    /// `[2^i, 2^(i+1))` ns (bucket 0 additionally holds 0 ns).
    pub hist: [u64; 32],
}

impl RegionStats {
    fn observe(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
        let bucket = if dur_ns == 0 {
            0
        } else {
            (63 - dur_ns.leading_zeros() as usize).min(self.hist.len() - 1)
        };
        self.hist[bucket] += 1;
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Run-level metrics: the aggregation of every rank's events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    pub n_ranks: usize,
    /// Indexed by [`RegionKind::ALL`] order.
    pub regions: Vec<RegionStats>,
    /// Comm traffic reconstructed from collective events (rank 0's view,
    /// each collective counted once).
    pub comm: CommStats,
    /// Collective events across **all** ranks (≈ regions × ranks).
    pub collective_events: u64,
    pub marks: u64,
    /// Complete kernel spans across all ranks (see [`EventKind::Kernel`]).
    pub kernel_events: u64,
    /// `RegionEnd` without begin or vice versa — nonzero indicates a rank
    /// died mid-region or a driver bug.
    pub unmatched_regions: u64,
    /// Largest timestamp seen (run span on the recorder's clock).
    pub span_ns: u64,
}

impl RunMetrics {
    pub fn region(&self, kind: RegionKind) -> &RegionStats {
        &self.regions[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CommCategory, OpKind};

    fn ev(ts_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { ts_ns, kind }
    }

    #[test]
    fn aggregates_nested_regions() {
        let trace = RunTrace {
            per_rank: vec![vec![
                ev(
                    0,
                    EventKind::RegionBegin {
                        region: RegionKind::SprRound,
                    },
                ),
                ev(
                    10,
                    EventKind::RegionBegin {
                        region: RegionKind::Newview,
                    },
                ),
                ev(
                    30,
                    EventKind::RegionEnd {
                        region: RegionKind::Newview,
                    },
                ),
                ev(
                    40,
                    EventKind::RegionBegin {
                        region: RegionKind::Newview,
                    },
                ),
                ev(
                    100,
                    EventKind::RegionEnd {
                        region: RegionKind::Newview,
                    },
                ),
                ev(
                    200,
                    EventKind::RegionEnd {
                        region: RegionKind::SprRound,
                    },
                ),
            ]],
        };
        let m = trace.aggregate();
        assert_eq!(m.region(RegionKind::Newview).count, 2);
        assert_eq!(m.region(RegionKind::Newview).total_ns, 80);
        assert_eq!(m.region(RegionKind::Newview).min_ns, 20);
        assert_eq!(m.region(RegionKind::Newview).max_ns, 60);
        assert_eq!(m.region(RegionKind::SprRound).count, 1);
        assert_eq!(m.region(RegionKind::SprRound).total_ns, 200);
        assert_eq!(m.unmatched_regions, 0);
        assert_eq!(m.span_ns, 200);
        assert!((m.region(RegionKind::Newview).mean_ns() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn comm_stats_count_each_collective_once() {
        let coll = EventKind::Collective {
            op: OpKind::Allreduce,
            category: CommCategory::SiteLikelihoods,
            bytes: 8,
        };
        let trace = RunTrace {
            per_rank: vec![
                vec![ev(1, coll.clone()), ev(2, coll.clone())],
                vec![ev(1, coll.clone()), ev(2, coll.clone())],
                vec![ev(1, coll.clone()), ev(2, coll)],
            ],
        };
        let m = trace.aggregate();
        // 6 events across ranks, but 2 logical collectives.
        assert_eq!(m.collective_events, 6);
        assert_eq!(m.comm.total_regions(), 2);
        assert_eq!(m.comm.get(CommCategory::SiteLikelihoods).bytes, 16);
    }

    #[test]
    fn unmatched_regions_are_counted_not_fatal() {
        let trace = RunTrace {
            per_rank: vec![vec![
                ev(
                    0,
                    EventKind::RegionBegin {
                        region: RegionKind::Evaluate,
                    },
                ),
                ev(
                    5,
                    EventKind::RegionEnd {
                        region: RegionKind::Newview,
                    },
                ),
            ]],
        };
        let m = trace.aggregate();
        // One dangling begin + one end without begin.
        assert_eq!(m.unmatched_regions, 2);
        assert_eq!(m.region(RegionKind::Evaluate).count, 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = RegionStats::default();
        s.observe(0); // bucket 0
        s.observe(1); // bucket 0
        s.observe(2); // bucket 1
        s.observe(3); // bucket 1
        s.observe(1024); // bucket 10
        assert_eq!(s.hist[0], 2);
        assert_eq!(s.hist[1], 2);
        assert_eq!(s.hist[10], 1);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn kernel_profile_sums_per_rank_and_partition() {
        let k = |ts, partition, dur_ns| {
            ev(
                ts,
                EventKind::Kernel {
                    region: RegionKind::Newview,
                    partition,
                    dur_ns,
                },
            )
        };
        let trace = RunTrace {
            per_rank: vec![
                vec![k(0, 2, 100), k(1, 0, 50), k(2, 2, 25)],
                vec![k(0, 1, 10), k(1, 1, 30)],
            ],
        };
        let profile = trace.kernel_profile();
        assert_eq!(profile.per_rank[0], vec![(0, 50), (2, 125)]);
        assert_eq!(profile.per_rank[1], vec![(1, 40)]);
        assert_eq!(profile.rank_totals(), vec![175, 40]);
        assert_eq!(profile.partition_totals(), vec![(0, 50), (1, 40), (2, 125)]);

        let m = trace.aggregate();
        assert_eq!(m.kernel_events, 5);
        // Kernel spans carry their own duration; region stats stay empty.
        assert_eq!(m.region(RegionKind::Newview).count, 0);
        assert_eq!(m.unmatched_regions, 0);
    }

    #[test]
    fn metrics_roundtrip_through_json() {
        let trace = RunTrace {
            per_rank: vec![vec![
                ev(
                    0,
                    EventKind::RegionBegin {
                        region: RegionKind::NrIteration,
                    },
                ),
                ev(
                    4,
                    EventKind::RegionEnd {
                        region: RegionKind::NrIteration,
                    },
                ),
                ev(
                    6,
                    EventKind::Mark {
                        label: "pass:1".into(),
                    },
                ),
            ]],
        };
        let m = trace.aggregate();
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(m, back);
    }

    fn mark(ts: u64, label: &str) -> TraceEvent {
        ev(
            ts,
            EventKind::Mark {
                label: label.into(),
            },
        )
    }

    fn kernel(ts: u64, partition: u32, dur_ns: u64) -> TraceEvent {
        ev(
            ts,
            EventKind::Kernel {
                region: RegionKind::Newview,
                partition,
                dur_ns,
            },
        )
    }

    fn wait(begin: u64, end: u64) -> [TraceEvent; 2] {
        [
            ev(
                begin,
                EventKind::RegionBegin {
                    region: RegionKind::CollectiveWait,
                },
            ),
            ev(
                end,
                EventKind::RegionEnd {
                    region: RegionKind::CollectiveWait,
                },
            ),
        ]
    }

    #[test]
    fn critical_path_attribution_sums_to_wall_time() {
        let [w0b, w0e] = wait(850, 900);
        let [w1b, w1e] = wait(600, 950);
        let [w2b, w2e] = wait(1500, 1600);
        let trace = RunTrace {
            per_rank: vec![
                vec![
                    mark(100, "iteration:0"),
                    kernel(200, 0, 600),
                    w0b,
                    w0e,
                    mark(1100, "iteration:1"),
                    kernel(1200, 0, 200),
                    w2b,
                    w2e,
                ],
                vec![
                    mark(110, "iteration:0"),
                    kernel(250, 1, 300),
                    w1b,
                    w1e,
                    mark(1105, "iteration:1"),
                ],
            ],
        };
        let cp = trace.critical_path().expect("marks present");
        assert_eq!(cp.n_ranks, 2);
        assert_eq!(cp.windows.len(), 2);

        // Window 0: [100, 1100) — wall 1000. Mean compute 450, mean wait
        // 200 of which 150 is straggler idle (rank 0 computed 600 vs mean
        // 450).
        let w = &cp.windows[0];
        assert_eq!(w.iteration, 0);
        assert_eq!(w.wall_ns, 1000);
        assert_eq!(w.compute_ns, 450);
        assert_eq!(w.straggler_ns, 150);
        assert_eq!(w.collective_ns, 50);
        assert_eq!(w.other_ns, 350);
        assert_eq!(w.slowest_rank, 0);
        assert_eq!(w.slowest_rank_kernel_ns, 600);
        assert_eq!(w.hottest_partition, Some(0));
        assert_eq!(w.hottest_partition_ns, 600);

        // Every window's components sum to its wall time exactly.
        for w in &cp.windows {
            assert_eq!(
                w.compute_ns + w.collective_ns + w.straggler_ns + w.other_ns,
                w.wall_ns,
                "window {} does not sum to wall",
                w.iteration
            );
        }

        let s = cp.summary();
        assert_eq!(s.iterations, 2);
        assert_eq!(s.wall_ns, cp.windows.iter().map(|w| w.wall_ns).sum::<u64>());
        assert_eq!(
            s.compute_ns + s.collective_ns + s.straggler_ns + s.other_ns,
            s.wall_ns
        );
        assert_eq!(s.slowest_rank, Some(0));
        assert_eq!(s.hottest_partition, Some(0));
        assert!(s.compute_frac() > 0.0 && s.compute_frac() < 1.0);
    }

    #[test]
    fn critical_path_scales_down_clock_edge_overattribution() {
        // A kernel span longer than the window itself (clock-edge straddle)
        // must not attribute more than the wall.
        let trace = RunTrace {
            per_rank: vec![vec![
                mark(0, "iteration:0"),
                kernel(10, 3, 1000),
                mark(500, "end_sentinel_not_a_boundary"),
            ]],
        };
        let cp = trace.critical_path().unwrap();
        let w = &cp.windows[0];
        assert_eq!(w.wall_ns, 500);
        assert_eq!(w.compute_ns, 500);
        assert_eq!(w.collective_ns + w.straggler_ns + w.other_ns, 0);
    }

    #[test]
    fn critical_path_is_none_without_iteration_marks() {
        let trace = RunTrace {
            per_rank: vec![vec![kernel(0, 0, 10)]],
        };
        assert!(trace.critical_path().is_none());
    }
}
