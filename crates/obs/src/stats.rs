//! Communication accounting.
//!
//! Table I of the paper decomposes the fork-join baseline's MPI traffic into
//! four categories of parallel regions and counts the *theoretical* bytes
//! moved by each (payload size, independent of rank count). This module is
//! that bookkeeping: every collective records one *parallel region* and its
//! payload bytes under a [`CommCategory`]. It lives in `exa-obs` (the bottom
//! of the crate stack) so both the communicator and the trace aggregation
//! can use it; `exa-comm` re-exports everything here.

use serde::{Deserialize, Serialize};

/// The collective operation kinds the engine drivers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    Allreduce,
    Reduce,
    Broadcast,
    Gather,
    Allgather,
    Scatter,
    Barrier,
}

impl OpKind {
    /// All kinds, in [`CommStats`] counter order.
    pub const ALL: [OpKind; 7] = [
        OpKind::Allreduce,
        OpKind::Reduce,
        OpKind::Broadcast,
        OpKind::Gather,
        OpKind::Allgather,
        OpKind::Scatter,
        OpKind::Barrier,
    ];

    /// Lower-case name for traces and tables.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Allreduce => "allreduce",
            OpKind::Reduce => "reduce",
            OpKind::Broadcast => "broadcast",
            OpKind::Gather => "gather",
            OpKind::Allgather => "allgather",
            OpKind::Scatter => "scatter",
            OpKind::Barrier => "barrier",
        }
    }
}

/// Table I's four traffic classes, plus `Control` for setup traffic that the
/// paper does not attribute to the likelihood kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommCategory {
    /// Newton–Raphson branch-length optimization traffic: candidate branch
    /// lengths out, derivative pairs back.
    BranchLength,
    /// Per-site / per-partition log-likelihood reductions at the virtual
    /// root.
    SiteLikelihoods,
    /// Broadcasts of changed model parameters (α, GTR rates, PSR rates).
    ModelParams,
    /// Traversal-descriptor broadcasts (fork-join only).
    TraversalDescriptor,
    /// Setup, checkpoint and recovery traffic.
    Control,
}

impl CommCategory {
    /// All categories in Table I's presentation order (Control last).
    pub const ALL: [CommCategory; 5] = [
        CommCategory::BranchLength,
        CommCategory::SiteLikelihoods,
        CommCategory::ModelParams,
        CommCategory::TraversalDescriptor,
        CommCategory::Control,
    ];

    /// Table I row label.
    pub fn label(&self) -> &'static str {
        match self {
            CommCategory::BranchLength => "branch length optimization",
            CommCategory::SiteLikelihoods => "per-site/per-partition likelihoods",
            CommCategory::ModelParams => "model parameters",
            CommCategory::TraversalDescriptor => "traversal descriptor",
            CommCategory::Control => "control/setup",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            CommCategory::BranchLength => 0,
            CommCategory::SiteLikelihoods => 1,
            CommCategory::ModelParams => 2,
            CommCategory::TraversalDescriptor => 3,
            CommCategory::Control => 4,
        }
    }
}

/// Regions and bytes accumulated under one category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryStats {
    /// Number of parallel regions (collective operations).
    pub regions: u64,
    /// Theoretical payload bytes.
    pub bytes: u64,
}

/// Full communication statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    per_category: [CategoryStats; 5],
    /// Collective-call-site style counter per op kind (the paper's "<50 MPI
    /// calls in ExaML vs >100 in RAxML-Light" is about static call sites;
    /// we track dynamic ops per kind, which the harness reports alongside).
    per_kind: [u64; 7],
}

impl CommStats {
    /// Record one collective.
    pub fn record(&mut self, category: CommCategory, kind: OpKind, bytes: u64) {
        let c = &mut self.per_category[category.index()];
        c.regions += 1;
        c.bytes += bytes;
        self.per_kind[Self::kind_index(kind)] += 1;
    }

    fn kind_index(kind: OpKind) -> usize {
        match kind {
            OpKind::Allreduce => 0,
            OpKind::Reduce => 1,
            OpKind::Broadcast => 2,
            OpKind::Gather => 3,
            OpKind::Allgather => 4,
            OpKind::Scatter => 5,
            OpKind::Barrier => 6,
        }
    }

    /// Stats of one category.
    pub fn get(&self, category: CommCategory) -> CategoryStats {
        self.per_category[category.index()]
    }

    /// Total parallel regions across categories.
    pub fn total_regions(&self) -> u64 {
        self.per_category.iter().map(|c| c.regions).sum()
    }

    /// Total bytes across categories.
    pub fn total_bytes(&self) -> u64 {
        self.per_category.iter().map(|c| c.bytes).sum()
    }

    /// Dynamic op count of one kind.
    pub fn ops_of_kind(&self, kind: OpKind) -> u64 {
        self.per_kind[Self::kind_index(kind)]
    }

    /// Percentage of total bytes attributable to `category` (0 when no
    /// traffic at all).
    pub fn byte_share(&self, category: CommCategory) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.get(category).bytes as f64 / total as f64
    }

    /// Field-wise sum (merging independent runs).
    pub fn merge(&self, other: &CommStats) -> CommStats {
        let mut out = self.clone();
        for (a, b) in out.per_category.iter_mut().zip(&other.per_category) {
            a.regions += b.regions;
            a.bytes += b.bytes;
        }
        for (a, b) in out.per_kind.iter_mut().zip(&other.per_kind) {
            *a += b;
        }
        out
    }

    /// Field-wise delta `self - earlier` (saturating, so a reset between
    /// snapshots degrades to zeros instead of wrapping).
    pub fn diff(&self, earlier: &CommStats) -> CommStats {
        let mut out = self.clone();
        for (a, b) in out.per_category.iter_mut().zip(&earlier.per_category) {
            a.regions = a.regions.saturating_sub(b.regions);
            a.bytes = a.bytes.saturating_sub(b.bytes);
        }
        for (a, b) in out.per_kind.iter_mut().zip(&earlier.per_kind) {
            *a = a.saturating_sub(*b);
        }
        out
    }
}

/// A labelled point-in-time capture of [`CommStats`], for attributing
/// traffic to a phase of the run ("after model optimization", "SPR round
/// 3", …) by diffing consecutive snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    pub label: String,
    pub stats: CommStats,
}

impl Snapshot {
    pub fn capture(label: impl Into<String>, stats: &CommStats) -> Snapshot {
        Snapshot {
            label: label.into(),
            stats: stats.clone(),
        }
    }

    /// Per-category / per-kind deltas accumulated since `earlier`.
    pub fn diff(&self, earlier: &Snapshot) -> CommStats {
        self.stats.diff(&earlier.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = CommStats::default();
        s.record(CommCategory::BranchLength, OpKind::Allreduce, 16);
        s.record(CommCategory::BranchLength, OpKind::Allreduce, 16);
        s.record(CommCategory::TraversalDescriptor, OpKind::Broadcast, 100);
        assert_eq!(s.get(CommCategory::BranchLength).regions, 2);
        assert_eq!(s.get(CommCategory::BranchLength).bytes, 32);
        assert_eq!(s.total_regions(), 3);
        assert_eq!(s.total_bytes(), 132);
        assert_eq!(s.ops_of_kind(OpKind::Allreduce), 2);
        assert_eq!(s.ops_of_kind(OpKind::Broadcast), 1);
        assert_eq!(s.ops_of_kind(OpKind::Barrier), 0);
    }

    #[test]
    fn byte_share_sums_to_100() {
        let mut s = CommStats::default();
        s.record(CommCategory::BranchLength, OpKind::Allreduce, 30);
        s.record(CommCategory::ModelParams, OpKind::Broadcast, 70);
        let total: f64 = CommCategory::ALL.iter().map(|&c| s.byte_share(c)).sum();
        assert!((total - 100.0).abs() < 1e-12);
        assert!((s.byte_share(CommCategory::ModelParams) - 70.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_share() {
        let s = CommStats::default();
        assert_eq!(s.byte_share(CommCategory::BranchLength), 0.0);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats::default();
        a.record(CommCategory::SiteLikelihoods, OpKind::Allreduce, 8);
        let mut b = CommStats::default();
        b.record(CommCategory::SiteLikelihoods, OpKind::Allreduce, 24);
        b.record(CommCategory::Control, OpKind::Barrier, 0);
        let m = a.merge(&b);
        assert_eq!(m.get(CommCategory::SiteLikelihoods).bytes, 32);
        assert_eq!(m.total_regions(), 3);
    }

    #[test]
    fn labels_match_table_one() {
        assert_eq!(
            CommCategory::TraversalDescriptor.label(),
            "traversal descriptor"
        );
        assert_eq!(
            CommCategory::BranchLength.label(),
            "branch length optimization"
        );
    }

    #[test]
    fn diff_subtracts_per_field() {
        let mut before = CommStats::default();
        before.record(CommCategory::SiteLikelihoods, OpKind::Allreduce, 8);
        let mut after = before.clone();
        after.record(CommCategory::SiteLikelihoods, OpKind::Allreduce, 8);
        after.record(CommCategory::BranchLength, OpKind::Allreduce, 16);
        after.record(CommCategory::ModelParams, OpKind::Broadcast, 4);

        let d = after.diff(&before);
        assert_eq!(d.get(CommCategory::SiteLikelihoods).regions, 1);
        assert_eq!(d.get(CommCategory::SiteLikelihoods).bytes, 8);
        assert_eq!(d.get(CommCategory::BranchLength).bytes, 16);
        assert_eq!(d.ops_of_kind(OpKind::Allreduce), 2);
        assert_eq!(d.ops_of_kind(OpKind::Broadcast), 1);
        // Diffing against itself yields the zero stats.
        assert_eq!(after.diff(&after), CommStats::default());
    }

    #[test]
    fn diff_saturates_on_reset() {
        let mut before = CommStats::default();
        before.record(CommCategory::Control, OpKind::Barrier, 0);
        let after = CommStats::default();
        let d = after.diff(&before);
        assert_eq!(d, CommStats::default());
    }

    #[test]
    fn snapshot_diff_matches_stats_diff() {
        let mut stats = CommStats::default();
        stats.record(CommCategory::ModelParams, OpKind::Broadcast, 40);
        let s0 = Snapshot::capture("before", &stats);
        stats.record(CommCategory::ModelParams, OpKind::Broadcast, 40);
        stats.record(CommCategory::BranchLength, OpKind::Allreduce, 16);
        let s1 = Snapshot::capture("after", &stats);

        let d = s1.diff(&s0);
        assert_eq!(d.get(CommCategory::ModelParams).bytes, 40);
        assert_eq!(d.get(CommCategory::ModelParams).regions, 1);
        assert_eq!(d.get(CommCategory::BranchLength).regions, 1);
        assert_eq!(s0.label, "before");
    }
}
