//! Exporters: Chrome `trace_event` JSON and a plain-text summary table.

use crate::aggregate::{RunMetrics, RunTrace};
use crate::events::EventKind;
use crate::stats::CommCategory;
use serde::Value;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

fn entry(k: &str, v: Value) -> (String, Value) {
    (k.to_string(), v)
}

fn str_v(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// Microseconds (Chrome's `ts`/`dur` unit) from nanoseconds.
fn us(ts_ns: u64) -> Value {
    Value::Float(ts_ns as f64 / 1000.0)
}

/// Reserved mark-label prefix that stamps the likelihood-kernel backend
/// into a trace. [`chrome_trace`] hoists the suffix into the top-level
/// `otherData` header so the backend is visible without scanning events.
pub const KERNEL_BACKEND_MARK: &str = "kernel_backend:";

/// Reserved mark-label prefix that stamps the site-repeats setting
/// (`"on"`/`"off"`) into a trace; hoisted into `otherData.site_repeats` the
/// same way [`KERNEL_BACKEND_MARK`] is.
pub const SITE_REPEATS_MARK: &str = "site_repeats:";

/// Reserved mark-label prefix that stamps the negotiated reduction mode
/// (`"fast"`/`"reproducible"`) into a trace; hoisted into
/// `otherData.reduce_mode` the same way [`KERNEL_BACKEND_MARK`] is.
pub const REDUCE_MODE_MARK: &str = "reduce_mode:";

/// Reserved mark-label prefix that stamps the negotiated intra-rank thread
/// count into a trace; hoisted into `otherData.threads` the same way
/// [`KERNEL_BACKEND_MARK`] is. Per-rank *batch counts* are deliberately not
/// marked (they differ across ranks under MPS and would break trace
/// rank-parity) — those go to the metrics registry instead.
pub const THREADS_MARK: &str = "threads:";

/// Reserved mark-label prefix that stamps the batching setting
/// (`"on"`/`"off"`) into a trace; hoisted into `otherData.batch`.
pub const BATCH_MARK: &str = "batch:";

/// Reserved mark-label prefix that stamps the negotiated gradient-BLO mode
/// (`"on"`/`"off"`) into a trace; hoisted into `otherData.gradient` the
/// same way [`KERNEL_BACKEND_MARK`] is.
pub const GRADIENT_MARK: &str = "gradient:";

/// Reserved mark-label prefix stamped (on every rank) each time a
/// checkpoint generation is committed; the suffix is the search iteration
/// the checkpoint captured. Emitting it on all ranks keeps per-rank event
/// streams structurally identical, so the trace rank-parity invariants
/// hold across checkpointing runs.
pub const CHECKPOINT_MARK: &str = "checkpoint:";

/// Reserved mark-label prefix the search driver emits at every iteration
/// boundary; the suffix is the iteration number. These marks cut the
/// windows of [`crate::RunTrace::critical_path`] — on the de-centralized
/// scheme every rank emits them, on fork-join only the master does, and
/// both cases window correctly because ranks share the recorder clock.
pub const ITERATION_MARK: &str = "iteration:";

/// Render a trace in Chrome `trace_event` JSON ("JSON object format"):
/// one process, one thread per rank, `B`/`E` span events for regions and
/// `i` instant events for collectives and marks. Loadable in Perfetto and
/// `chrome://tracing`. A reserved [`KERNEL_BACKEND_MARK`] mark (emitted once
/// by rank 0) is additionally surfaced as `otherData.kernel_backend`.
pub fn chrome_trace(trace: &RunTrace) -> Value {
    let mut kernel_backend: Option<String> = None;
    let mut site_repeats: Option<String> = None;
    let mut reduce_mode: Option<String> = None;
    let mut threads: Option<String> = None;
    let mut batch: Option<String> = None;
    let mut gradient: Option<String> = None;
    let mut events: Vec<Value> = Vec::with_capacity(trace.total_events() + trace.n_ranks());
    for rank in 0..trace.n_ranks() {
        // Thread-name metadata so the timeline rows read "rank 0", …
        events.push(Value::Map(vec![
            entry("name", str_v("thread_name")),
            entry("ph", str_v("M")),
            entry("pid", Value::UInt(0)),
            entry("tid", Value::UInt(rank as u64)),
            entry(
                "args",
                Value::Map(vec![entry("name", str_v(format!("rank {rank}")))]),
            ),
        ]));
        for e in trace.events(rank) {
            let mut fields = vec![
                entry("pid", Value::UInt(0)),
                entry("tid", Value::UInt(rank as u64)),
                entry("ts", us(e.ts_ns)),
            ];
            match &e.kind {
                EventKind::RegionBegin { region } => {
                    fields.push(entry("ph", str_v("B")));
                    fields.push(entry("name", str_v(region.label())));
                    fields.push(entry("cat", str_v("region")));
                }
                EventKind::RegionEnd { region } => {
                    fields.push(entry("ph", str_v("E")));
                    fields.push(entry("name", str_v(region.label())));
                    fields.push(entry("cat", str_v("region")));
                }
                EventKind::Collective {
                    op,
                    category,
                    bytes,
                } => {
                    fields.push(entry("ph", str_v("i")));
                    fields.push(entry("s", str_v("t")));
                    fields.push(entry("name", str_v(op.label())));
                    fields.push(entry("cat", str_v("collective")));
                    fields.push(entry(
                        "args",
                        Value::Map(vec![
                            entry("category", str_v(format!("{category:?}"))),
                            entry("bytes", Value::UInt(*bytes)),
                        ]),
                    ));
                }
                EventKind::Mark { label } => {
                    if let Some(kind) = label.strip_prefix(KERNEL_BACKEND_MARK) {
                        kernel_backend.get_or_insert_with(|| kind.to_string());
                    }
                    if let Some(setting) = label.strip_prefix(SITE_REPEATS_MARK) {
                        site_repeats.get_or_insert_with(|| setting.to_string());
                    }
                    if let Some(mode) = label.strip_prefix(REDUCE_MODE_MARK) {
                        reduce_mode.get_or_insert_with(|| mode.to_string());
                    }
                    if let Some(n) = label.strip_prefix(THREADS_MARK) {
                        threads.get_or_insert_with(|| n.to_string());
                    }
                    if let Some(b) = label.strip_prefix(BATCH_MARK) {
                        batch.get_or_insert_with(|| b.to_string());
                    }
                    if let Some(g) = label.strip_prefix(GRADIENT_MARK) {
                        gradient.get_or_insert_with(|| g.to_string());
                    }
                    fields.push(entry("ph", str_v("i")));
                    fields.push(entry("s", str_v("t")));
                    fields.push(entry("name", str_v(label.clone())));
                    fields.push(entry("cat", str_v("mark")));
                }
                EventKind::Kernel {
                    region,
                    partition,
                    dur_ns,
                } => {
                    // Chrome "complete" event: begin + duration in one record.
                    fields.push(entry("ph", str_v("X")));
                    fields.push(entry("dur", us(*dur_ns)));
                    fields.push(entry("name", str_v(region.label())));
                    fields.push(entry("cat", str_v("kernel")));
                    fields.push(entry(
                        "args",
                        Value::Map(vec![entry("partition", Value::UInt(*partition as u64))]),
                    ));
                }
            }
            events.push(Value::Map(fields));
        }
    }
    let mut top = vec![
        entry("traceEvents", Value::Array(events)),
        entry("displayTimeUnit", str_v("ms")),
    ];
    let mut other = Vec::new();
    if let Some(kind) = kernel_backend {
        other.push(entry("kernel_backend", str_v(kind)));
    }
    if let Some(setting) = site_repeats {
        other.push(entry("site_repeats", str_v(setting)));
    }
    if let Some(mode) = reduce_mode {
        other.push(entry("reduce_mode", str_v(mode)));
    }
    if let Some(n) = threads {
        other.push(entry("threads", str_v(n)));
    }
    if let Some(b) = batch {
        other.push(entry("batch", str_v(b)));
    }
    if let Some(g) = gradient {
        other.push(entry("gradient", str_v(g)));
    }
    if !other.is_empty() {
        top.push(entry("otherData", Value::Map(other)));
    }
    Value::Map(top)
}

/// Serialize [`chrome_trace`] to `path`.
pub fn write_chrome_trace(path: &Path, trace: &RunTrace) -> std::io::Result<()> {
    let value = chrome_trace(trace);
    let json = serde_json::to_string(&value).map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")
}

fn fmt_ns(ns: u64) -> String {
    let x = ns as f64;
    if x < 1e3 {
        format!("{ns} ns")
    } else if x < 1e6 {
        format!("{:.1} µs", x / 1e3)
    } else if x < 1e9 {
        format!("{:.1} ms", x / 1e6)
    } else {
        format!("{:.2} s", x / 1e9)
    }
}

fn fmt_bytes(b: u64) -> String {
    let x = b as f64;
    if x < 1024.0 {
        format!("{b} B")
    } else if x < 1024.0 * 1024.0 {
        format!("{:.1} KiB", x / 1024.0)
    } else {
        format!("{:.1} MiB", x / (1024.0 * 1024.0))
    }
}

/// Human-readable end-of-run summary: one row per region kind that
/// occurred, one per comm category with traffic, plus run totals.
pub fn summary_table(metrics: &RunMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace summary ({} ranks)", metrics.n_ranks);
    let _ = writeln!(
        out,
        "  {:<16} {:>9} {:>12} {:>12} {:>12}",
        "region", "count", "total", "mean", "max"
    );
    for kind in crate::RegionKind::ALL {
        let s = metrics.region(kind);
        if s.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<16} {:>9} {:>12} {:>12} {:>12}",
            kind.label(),
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(s.mean_ns() as u64),
            fmt_ns(s.max_ns),
        );
    }
    let _ = writeln!(
        out,
        "  {:<34} {:>9} {:>14}",
        "comm category", "regions", "bytes"
    );
    for cat in CommCategory::ALL {
        let c = metrics.comm.get(cat);
        if c.regions == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<34} {:>9} {:>14}",
            cat.label(),
            c.regions,
            fmt_bytes(c.bytes),
        );
    }
    let _ = writeln!(
        out,
        "  totals: {} parallel regions, {}, {} events, span {}",
        metrics.comm.total_regions(),
        fmt_bytes(metrics.comm.total_bytes()),
        metrics.collective_events + metrics.marks,
        fmt_ns(metrics.span_ns),
    );
    if metrics.unmatched_regions > 0 {
        let _ = writeln!(
            out,
            "  WARNING: {} unmatched region events",
            metrics.unmatched_regions
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{RegionKind, TraceEvent};
    use crate::stats::OpKind;

    fn sample_trace() -> RunTrace {
        RunTrace {
            per_rank: vec![
                vec![
                    TraceEvent {
                        ts_ns: 0,
                        kind: EventKind::RegionBegin {
                            region: RegionKind::Newview,
                        },
                    },
                    TraceEvent {
                        ts_ns: 1500,
                        kind: EventKind::RegionEnd {
                            region: RegionKind::Newview,
                        },
                    },
                    TraceEvent {
                        ts_ns: 2000,
                        kind: EventKind::Collective {
                            op: OpKind::Allreduce,
                            category: CommCategory::SiteLikelihoods,
                            bytes: 8,
                        },
                    },
                ],
                vec![
                    TraceEvent {
                        ts_ns: 2100,
                        kind: EventKind::Mark {
                            label: "spr_round:0".into(),
                        },
                    },
                    TraceEvent {
                        ts_ns: 2200,
                        kind: EventKind::Kernel {
                            region: RegionKind::Evaluate,
                            partition: 1,
                            dur_ns: 900,
                        },
                    },
                ],
            ],
        }
    }

    #[test]
    fn chrome_trace_has_valid_shape() {
        let v = chrome_trace(&sample_trace());
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        let map = back.as_map("trace").unwrap();
        let events = serde::field(map, "traceEvents")
            .as_array("traceEvents")
            .unwrap();
        // 5 events + 2 thread-name metadata records.
        assert_eq!(events.len(), 7);
        for e in events {
            let m = e.as_map("event").unwrap();
            let ph = serde::field(m, "ph").as_str("ph").unwrap();
            assert!(["B", "E", "i", "M", "X"].contains(&ph), "{ph}");
        }
        // B/E balance for rank 0.
        let b = text.matches("\"ph\":\"B\"").count();
        let e = text.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e);
    }

    #[test]
    fn kernel_backend_mark_is_hoisted_into_other_data() {
        // No mark → no otherData header.
        let plain = serde_json::to_string(&chrome_trace(&sample_trace())).unwrap();
        assert!(!plain.contains("otherData"), "{plain}");

        let mut trace = sample_trace();
        trace.per_rank[0].insert(
            0,
            TraceEvent {
                ts_ns: 0,
                kind: EventKind::Mark {
                    label: format!("{KERNEL_BACKEND_MARK}simd"),
                },
            },
        );
        let v = chrome_trace(&trace);
        let map = v.as_map("trace").unwrap();
        let other = serde::field(map, "otherData").as_map("otherData").unwrap();
        assert_eq!(serde::field(other, "kernel_backend"), &str_v("simd"));
    }

    #[test]
    fn threads_and_batch_marks_are_hoisted_into_other_data() {
        let mut trace = sample_trace();
        trace.per_rank[0].insert(
            0,
            TraceEvent {
                ts_ns: 0,
                kind: EventKind::Mark {
                    label: format!("{THREADS_MARK}4"),
                },
            },
        );
        trace.per_rank[0].insert(
            1,
            TraceEvent {
                ts_ns: 0,
                kind: EventKind::Mark {
                    label: format!("{BATCH_MARK}on"),
                },
            },
        );
        trace.per_rank[0].insert(
            2,
            TraceEvent {
                ts_ns: 0,
                kind: EventKind::Mark {
                    label: format!("{GRADIENT_MARK}on"),
                },
            },
        );
        let v = chrome_trace(&trace);
        let map = v.as_map("trace").unwrap();
        let other = serde::field(map, "otherData").as_map("otherData").unwrap();
        assert_eq!(serde::field(other, "threads"), &str_v("4"));
        assert_eq!(serde::field(other, "batch"), &str_v("on"));
        assert_eq!(serde::field(other, "gradient"), &str_v("on"));
    }

    #[test]
    fn write_chrome_trace_produces_parseable_file() {
        let dir = std::env::temp_dir().join("exa_obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_chrome_trace(&path, &sample_trace()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        assert!(serde::field(v.as_map("root").unwrap(), "traceEvents") != &Value::Null);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_table_lists_active_rows_only() {
        let table = summary_table(&sample_trace().aggregate());
        assert!(table.contains("newview"));
        assert!(table.contains("per-site/per-partition likelihoods"));
        assert!(
            !table.contains("model parameters"),
            "no ModelParams traffic:\n{table}"
        );
        assert!(
            !table.contains("spr_round "),
            "no spr region rows:\n{table}"
        );
        assert!(table.contains("totals: 1 parallel regions"));
    }
}
