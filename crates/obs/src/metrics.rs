//! Process-wide metrics registry rendered in Prometheus text exposition
//! format.
//!
//! The trace [`crate::Recorder`] answers "where did *this run's* time go"
//! offline; this module answers "what is the process doing *right now*" for
//! a scraper. Three instrument kinds — monotone [`Counter`]s, last-value
//! [`Gauge`]s, and log-linear-bucket [`Histogram`]s — are grouped into
//! families with static label sets (tenant, priority class, scheme,
//! kernel). Registration is the only locked path; every update on an
//! obtained handle is a relaxed atomic, so the hot path stays lock-free
//! like the recorder's event buffers.
//!
//! Instrumentation sites that would pay for a clock read (e.g. timing every
//! collective) gate on [`Registry::enabled`]; the handles themselves keep
//! working either way, so disabling never loses monotonicity — it only
//! stops new timings. The `examl-bench metrics` harness holds the <2%
//! enabled-vs-disabled overhead bar.
//!
//! Rendering is hand-rolled (no new dependencies): `# HELP`/`# TYPE`
//! preambles, `\\`/`\"`/newline label escaping, histograms as cumulative
//! `le` buckets (empty buckets elided — cumulative counts stay exact)
//! plus `_sum`/`_count` series.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Linear sub-buckets per power-of-two octave. Four gives ~19% worst-case
/// relative bucket width — enough resolution for latency work without
/// bloating the exposition.
const SUBS: u64 = 4;

/// Total log-linear buckets: values 0..3 exactly, then 4 per octave for
/// exponents 2..=63.
const N_BUCKETS: usize = (SUBS + (63 - 2 + 1) * SUBS) as usize;

/// Bucket index of a (non-negative, integer-discretized) observation.
fn bucket_of(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let exp = 63 - u64::from(v.leading_zeros());
    let base = 1u64 << exp;
    let step = base / SUBS;
    (SUBS + (exp - 2) * SUBS + (v - base) / step) as usize
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` value).
fn upper_of(i: usize) -> u64 {
    if i + 1 >= N_BUCKETS {
        return u64::MAX;
    }
    let i = i as u64;
    if i < SUBS {
        return i;
    }
    let exp = 2 + (i - SUBS) / SUBS;
    let sub = (i - SUBS) % SUBS;
    let base = 1u64 << exp;
    base + (sub + 1) * (base / SUBS) - 1
}

/// Monotonically increasing counter. Updates are relaxed atomics; there is
/// deliberately no way to decrement or reset, so scrapes observe a
/// non-decreasing sequence.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-value gauge holding an `f64` (stored as raw bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value (a running
    /// maximum, e.g. worst queue wait).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Log-linear-bucket histogram (4 linear sub-buckets per power-of-two
/// octave). Observations are in whatever unit the family name declares
/// (`_ms`, `_ns`, …) and are discretized by `ceil` before bucketing, which
/// keeps the Prometheus cumulativity contract exact: the bucket with
/// integer bound `le` counts precisely the observations `v <= le`.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn observe(&self, v: f64) {
        let clamped = if !v.is_finite() || v <= 0.0 {
            0
        } else if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v.ceil() as u64
        };
        self.buckets[bucket_of(clamped)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v.max(0.0)).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation, 0.0 before the first.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Non-empty `(le, cumulative_count)` pairs in increasing `le` order,
    /// excluding the implicit `+Inf` bucket (which equals [`Self::count`]).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((upper_of(i), cum));
            }
        }
        out
    }
}

/// One registered instrument, behind its family's label set.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: &'static str,
    children: Vec<(Vec<(String, String)>, Instrument)>,
}

/// A metrics registry. [`global`] serves the process-wide one (plain CLI
/// runs, run-layer instrumentation); the daemon additionally owns a private
/// registry so counters reset with each daemon instance rather than leaking
/// across test daemons in one process.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    families: Mutex<Vec<Family>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(true),
            families: Mutex::new(Vec::new()),
        }
    }

    /// Whether timing-paying instrumentation sites should measure. Handle
    /// updates are never gated — only new clock reads are.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}"
        );
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name} re-registered as {kind}, was {}",
                    f.kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    children: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some((_, inst)) = family.children.iter().find(|(l, _)| *l == owned) {
            return inst.clone();
        }
        let inst = make();
        assert_eq!(inst.kind(), kind);
        family.children.push((owned, inst.clone()));
        inst
    }

    /// Obtain (registering on first use) the counter `name{labels}`.
    /// Callers should cache the handle; only registration takes a lock.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, "counter", labels, || {
            Instrument::Counter(Arc::new(Counter::default()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Obtain (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, "gauge", labels, || {
            Instrument::Gauge(Arc::new(Gauge::default()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Obtain (registering on first use) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, help, "histogram", labels, || {
            Instrument::Histogram(Arc::new(Histogram::default()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Current value of a registered counter, for callers that did not keep
    /// the handle (tests, assertions).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.iter().find(|f| f.name == name)?;
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        match family.children.iter().find(|(l, _)| *l == owned)? {
            (_, Instrument::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Render every family in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Append the exposition text to `out` (lets callers concatenate
    /// several registries into one scrape response).
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        for f in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind);
            for (labels, inst) in &f.children {
                match inst {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", f.name, label_block(labels), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", f.name, label_block(labels), g.get());
                    }
                    Instrument::Histogram(h) => {
                        for (le, cum) in h.cumulative_buckets() {
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {cum}",
                                f.name,
                                label_block_with(labels, "le", &le.to_string()),
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            f.name,
                            label_block_with(labels, "le", "+Inf"),
                            h.count()
                        );
                        let _ = writeln!(out, "{}_sum{} {}", f.name, label_block(labels), h.sum());
                        let _ =
                            writeln!(out, "{}_count{} {}", f.name, label_block(labels), h.count());
                    }
                }
            }
        }
    }
}

/// Escape a label value: backslash, double quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape help text: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn label_block_with(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push(format!("{key}=\"{}\"", escape_label(value)));
    format!("{{{}}}", body.join(","))
}

/// The process-wide registry: plain CLI runs dump it via `--metrics-out`,
/// and run-layer instrumentation (kernels, collectives, checkpoints, search
/// iterations) always lands here regardless of which surface started the
/// run.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Whether the global registry's timing-paying sites should measure.
pub fn enabled() -> bool {
    global().enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_and_consistent() {
        let mut prev = None;
        for i in 0..N_BUCKETS {
            let le = upper_of(i);
            if let Some(p) = prev {
                assert!(le > p, "bucket {i}: bound {le} not above {p}");
            }
            prev = Some(le);
        }
        // Every representable value lands in a bucket whose bound covers it.
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            100,
            1023,
            1024,
            1025,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_of(v);
            assert!(
                v <= upper_of(i),
                "value {v} in bucket {i} exceeds bound {}",
                upper_of(i)
            );
            if i > 0 {
                assert!(
                    v > upper_of(i - 1),
                    "value {v} in bucket {i} also fits bucket {}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn counters_and_gauges_update() {
        let r = Registry::new();
        let c = r.counter("exa_test_total", "test counter", &[("tenant", "batch")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) returns the same underlying instrument.
        let again = r.counter("exa_test_total", "test counter", &[("tenant", "batch")]);
        assert_eq!(again.get(), 5);
        assert_eq!(
            r.counter_value("exa_test_total", &[("tenant", "batch")]),
            Some(5)
        );
        let g = r.gauge("exa_test_gauge", "test gauge", &[]);
        g.set(2.5);
        g.add(1.0);
        assert!((g.get() - 3.5).abs() < 1e-12);
        g.set_max(1.0);
        assert!((g.get() - 3.5).abs() < 1e-12);
        g.set_max(9.0);
        assert!((g.get() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        for v in [0.5, 1.0, 3.0, 3.2, 100.0, 1e9] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.sum() - (0.5 + 1.0 + 3.0 + 3.2 + 100.0 + 1e9)).abs() < 1.0);
        let buckets = h.cumulative_buckets();
        let mut prev = 0;
        for (_, cum) in &buckets {
            assert!(*cum >= prev);
            prev = *cum;
        }
        assert_eq!(prev, 6, "last cumulative bucket must equal the count");
        // ceil discretization: the le=1 bucket holds both 0.5 and 1.0.
        let le1 = buckets.iter().find(|(le, _)| *le == 1).unwrap();
        assert_eq!(le1.1, 2);
    }

    #[test]
    fn render_is_valid_exposition() {
        let r = Registry::new();
        r.counter("exa_jobs_total", "jobs", &[("tenant", "a\"b\\c\nd")])
            .inc();
        r.gauge("exa_depth", "queue depth", &[]).set(3.0);
        let h = r.histogram("exa_wait_ms", "queue wait", &[]);
        h.observe(2.0);
        h.observe(10.0);
        let text = r.render();
        assert!(text.contains("# HELP exa_jobs_total jobs\n"), "{text}");
        assert!(text.contains("# TYPE exa_jobs_total counter\n"), "{text}");
        assert!(
            text.contains("exa_jobs_total{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("exa_depth 3\n"), "{text}");
        assert!(
            text.contains("exa_wait_ms_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("exa_wait_ms_sum 12\n"), "{text}");
        assert!(text.contains("exa_wait_ms_count 2\n"), "{text}");
    }
}
