//! Replica state fingerprints and the divergence diagnostic.
//!
//! The de-centralized scheme is correct only while every rank's search
//! replica stays **bit-identical**. A diverged replica fails silently: its
//! local likelihood contributions keep flowing into the allreduces and the
//! run produces a wrong tree with no error. The sentinel makes divergence
//! loud: each rank hashes its live search state into a [`StateFingerprint`]
//! (one 64-bit digest per [`Component`]), the fingerprints are exchanged on
//! an allgather piggybacked at a configurable collective cadence, and any
//! disagreement aborts the run with a [`ReplicaDivergence`] naming the
//! minority ranks and the differing component(s).
//!
//! The hash is FNV-1a 64 — the same function `exa-bio`'s binary format uses
//! for its header checksums (it re-exports [`fnv1a`] from here, so there is
//! exactly one implementation in the workspace). FNV-1a is not
//! collision-resistant against an adversary, but divergence is a *defect*,
//! not an attack: a single flipped mantissa bit changes the digest with
//! probability ~1 − 2⁻⁶⁴.

use serde::{Deserialize, Serialize};
use std::fmt;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Streaming FNV-1a 64 hasher, for digesting structured state without
/// materializing an intermediate buffer.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Hash the exact bit pattern (`to_bits`), so bit-identical replicas
    /// hash identically and a single flipped mantissa bit does not.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// The independently-hashed parts of a rank's live search state. Hashing
/// them separately (rather than one combined digest) lets the diagnostic
/// say *what* diverged, which localizes the defect: a lone α mismatch
/// points at model optimization, a topology mismatch at the SPR machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// α shape parameters and GTR exchangeabilities, all partitions.
    ModelParams,
    /// Every edge's per-partition branch lengths.
    BranchLengths,
    /// Tree shape: edge endpoint pairs, no lengths.
    Topology,
    /// The rank's last locally-accumulated log likelihood(s).
    LnlAccumulator,
    /// Identity of the likelihood-kernel backend in use. Mixed backends do
    /// not numerically diverge the replicated state (both produce bitwise
    /// identical results by contract), but a mix still violates the
    /// uniform-backend requirement — after a fault-driven redistribution the
    /// surviving ranks must be interchangeable — so the sentinel treats it
    /// as divergence in its own right.
    KernelBackend,
}

impl Component {
    pub const ALL: [Component; 5] = [
        Component::ModelParams,
        Component::BranchLengths,
        Component::Topology,
        Component::LnlAccumulator,
        Component::KernelBackend,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Component::ModelParams => "model parameters",
            Component::BranchLengths => "branch lengths",
            Component::Topology => "topology",
            Component::LnlAccumulator => "lnL accumulator",
            Component::KernelBackend => "kernel backend",
        }
    }

    fn index(self) -> usize {
        match self {
            Component::ModelParams => 0,
            Component::BranchLengths => 1,
            Component::Topology => 2,
            Component::LnlAccumulator => 3,
            Component::KernelBackend => 4,
        }
    }
}

/// A rank's state digest: one FNV-1a 64 per [`Component`], in
/// [`Component::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateFingerprint {
    pub components: [u64; 5],
}

impl StateFingerprint {
    /// Wire size of [`StateFingerprint::to_bytes`].
    pub const BYTES: usize = 40;

    pub fn get(&self, c: Component) -> u64 {
        self.components[c.index()]
    }

    /// Little-endian wire encoding, [`Component::ALL`] order.
    pub fn to_bytes(&self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        for (chunk, v) in out.chunks_exact_mut(8).zip(self.components) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Inverse of [`StateFingerprint::to_bytes`]; `None` on a size
    /// mismatch (a corrupt or foreign payload).
    pub fn from_bytes(bytes: &[u8]) -> Option<StateFingerprint> {
        if bytes.len() != Self::BYTES {
            return None;
        }
        let mut components = [0u64; 5];
        for (v, chunk) in components.iter_mut().zip(bytes.chunks_exact(8)) {
            *v = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        Some(StateFingerprint { components })
    }

    /// Components whose digests differ between `self` and `other`, in
    /// [`Component::ALL`] order.
    pub fn differing(&self, other: &StateFingerprint) -> Vec<Component> {
        Component::ALL
            .into_iter()
            .filter(|c| self.get(*c) != other.get(*c))
            .collect()
    }
}

/// Compare all ranks' fingerprints. `None` means unanimous agreement;
/// otherwise the minority rank set and the union of differing components
/// (relative to the majority fingerprint).
///
/// The majority is the largest group of identical fingerprints; on a tie,
/// the group containing the lowest rank (divergence of half the ranks is
/// already unattributable — the tiebreak just keeps the report stable).
pub fn check_agreement(fingerprints: &[StateFingerprint]) -> Option<(Vec<usize>, Vec<Component>)> {
    // Groups of (fingerprint, member ranks), insertion-ordered — so the
    // first group always contains the lowest rank.
    let mut groups: Vec<(StateFingerprint, Vec<usize>)> = Vec::new();
    for (rank, fp) in fingerprints.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| g == fp) {
            Some((_, members)) => members.push(rank),
            None => groups.push((*fp, vec![rank])),
        }
    }
    if groups.len() <= 1 {
        return None;
    }
    let majority_len = groups.iter().map(|(_, m)| m.len()).max().unwrap();
    // First (lowest-rank) group of maximal size wins ties.
    let majority = groups
        .iter()
        .find(|(_, m)| m.len() == majority_len)
        .unwrap()
        .0;
    let minority: Vec<usize> = fingerprints
        .iter()
        .enumerate()
        .filter(|(_, fp)| **fp != majority)
        .map(|(rank, _)| rank)
        .collect();
    let mut components: Vec<Component> = Component::ALL
        .into_iter()
        .filter(|c| {
            minority
                .iter()
                .any(|&r| fingerprints[r].get(*c) != majority.get(*c))
        })
        .collect();
    components.dedup();
    Some((minority, components))
}

/// The structured abort diagnostic of a tripped sentinel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaDivergence {
    /// Global collective count (per rank) at which the divergent sync ran —
    /// i.e. the first collective whose piggybacked fingerprints disagreed.
    pub collective_index: u64,
    /// Ordinal of the fingerprint sync that tripped (1-based).
    pub sync_index: u64,
    /// Ranks whose fingerprints disagree with the majority, ascending.
    pub minority_ranks: Vec<usize>,
    /// State components that differ, in [`Component::ALL`] order.
    pub components: Vec<Component>,
}

impl fmt::Display for ReplicaDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ranks: Vec<String> = self.minority_ranks.iter().map(|r| r.to_string()).collect();
        let comps: Vec<&str> = self.components.iter().map(|c| c.label()).collect();
        write!(
            f,
            "replica divergence at collective #{} (fingerprint sync #{}): \
             rank(s) {{{}}} disagree with the majority in {}",
            self.collective_index,
            self.sync_index,
            ranks.join(", "),
            if comps.is_empty() {
                "an unknown component".to_string()
            } else {
                comps.join(", ")
            }
        )
    }
}

impl std::error::Error for ReplicaDivergence {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_hasher_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));

        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        assert_eq!(a.finish(), fnv1a(&[8, 7, 6, 5, 4, 3, 2, 1]));

        let mut b = Fnv1a::new();
        b.write_f64(1.5);
        let mut c = Fnv1a::new();
        c.write_u64(1.5f64.to_bits());
        assert_eq!(b.finish(), c.finish());
    }

    #[test]
    fn write_f64_distinguishes_single_bit_flips() {
        let x = 0.731_f64;
        let y = f64::from_bits(x.to_bits() ^ 1);
        let mut a = Fnv1a::new();
        a.write_f64(x);
        let mut b = Fnv1a::new();
        b.write_f64(y);
        assert_ne!(a.finish(), b.finish());
    }

    fn fp(m: u64, b: u64, t: u64, l: u64) -> StateFingerprint {
        StateFingerprint {
            components: [m, b, t, l, 0],
        }
    }

    #[test]
    fn fingerprint_bytes_roundtrip() {
        let mut f = fp(1, u64::MAX, 0xdead_beef, 42);
        f.components[4] = 0x4b42; // kernel-backend digest
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), StateFingerprint::BYTES);
        assert_eq!(StateFingerprint::from_bytes(&bytes), Some(f));
        assert_eq!(StateFingerprint::from_bytes(&bytes[..39]), None);
        assert_eq!(f.get(Component::BranchLengths), u64::MAX);
        assert_eq!(f.get(Component::KernelBackend), 0x4b42);
    }

    #[test]
    fn differing_lists_changed_components_in_order() {
        let a = fp(1, 2, 3, 4);
        let b = fp(1, 9, 3, 8);
        assert_eq!(
            a.differing(&b),
            vec![Component::BranchLengths, Component::LnlAccumulator]
        );
        assert!(a.differing(&a).is_empty());
    }

    #[test]
    fn agreement_is_none_when_unanimous() {
        let f = fp(1, 2, 3, 4);
        assert_eq!(check_agreement(&[f, f, f, f]), None);
        assert_eq!(check_agreement(&[f]), None);
        assert_eq!(check_agreement(&[]), None);
    }

    #[test]
    fn single_deviant_rank_is_the_minority() {
        let good = fp(1, 2, 3, 4);
        let bad = fp(9, 2, 3, 7);
        let (minority, comps) = check_agreement(&[good, bad, good, good]).unwrap();
        assert_eq!(minority, vec![1]);
        assert_eq!(
            comps,
            vec![Component::ModelParams, Component::LnlAccumulator]
        );
    }

    #[test]
    fn lone_kernel_backend_mismatch_is_divergence() {
        let simd = fp(1, 2, 3, 4);
        let mut scalar = simd;
        scalar.components[4] = 0x5ca1a5;
        let (minority, comps) = check_agreement(&[simd, simd, scalar]).unwrap();
        assert_eq!(minority, vec![2]);
        assert_eq!(comps, vec![Component::KernelBackend]);
    }

    #[test]
    fn tie_resolves_to_lowest_rank_group() {
        let a = fp(1, 1, 1, 1);
        let b = fp(2, 1, 1, 1);
        let (minority, comps) = check_agreement(&[a, a, b, b]).unwrap();
        assert_eq!(minority, vec![2, 3]);
        assert_eq!(comps, vec![Component::ModelParams]);
    }

    #[test]
    fn divergence_display_names_rank_and_component() {
        let d = ReplicaDivergence {
            collective_index: 1234,
            sync_index: 19,
            minority_ranks: vec![3],
            components: vec![Component::ModelParams],
        };
        let text = d.to_string();
        assert!(text.contains("collective #1234"), "{text}");
        assert!(text.contains("sync #19"), "{text}");
        assert!(text.contains("{3}"), "{text}");
        assert!(text.contains("model parameters"), "{text}");
    }

    #[test]
    fn divergence_roundtrips_through_json() {
        let d = ReplicaDivergence {
            collective_index: 7,
            sync_index: 1,
            minority_ranks: vec![0, 2],
            components: vec![Component::Topology],
        };
        let text = serde_json::to_string(&d).unwrap();
        let back: ReplicaDivergence = serde_json::from_str(&text).unwrap();
        assert_eq!(d, back);
    }
}
