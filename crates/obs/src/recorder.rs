//! Lock-free per-rank event recording.
//!
//! ## Safety model
//!
//! Each rank's buffer is an `UnsafeCell<Vec<TraceEvent>>` guarded by two
//! invariants instead of a lock:
//!
//! 1. **Single claimant.** [`Recorder::tracer`] hands out at most one
//!    [`Tracer`] per rank slot (enforced by an atomic claim flag; a second
//!    claim panics).
//! 2. **Single thread.** `Tracer` is `!Send`, so the tracer (and any clones)
//!    stays on the thread that claimed the slot — writes to one buffer are
//!    always from one thread.
//!
//! Reading happens only in [`Recorder::finish`], which consumes the last
//! `Arc`; `Arc::try_unwrap` succeeding proves every tracer (each holds an
//! `Arc`) is gone, hence every writer thread is done.

use crate::events::{EventKind, RegionKind, TraceEvent};
use crate::stats::{CommCategory, OpKind};
use crate::RunTrace;
use std::cell::{RefCell, UnsafeCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct RankBuffer {
    claimed: AtomicBool,
    events: UnsafeCell<Vec<TraceEvent>>,
}

// Sound per the module-level safety model: concurrent access never happens.
unsafe impl Sync for RankBuffer {}

/// Owns the per-rank buffers and the master enable switch of one run.
pub struct Recorder {
    enabled: AtomicBool,
    epoch: Instant,
    buffers: Vec<RankBuffer>,
}

impl Recorder {
    /// A recorder for `n_ranks` ranks, enabled from the start.
    pub fn new(n_ranks: usize) -> Arc<Recorder> {
        Arc::new(Recorder {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            buffers: (0..n_ranks)
                .map(|_| RankBuffer {
                    claimed: AtomicBool::new(false),
                    events: UnsafeCell::new(Vec::new()),
                })
                .collect(),
        })
    }

    /// Master switch. Tracers of a disabled recorder drop events at the
    /// cost of one relaxed atomic load.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn n_ranks(&self) -> usize {
        self.buffers.len()
    }

    /// Claim rank `rank`'s buffer. Must be called on the thread that will
    /// emit the rank's events; panics on double-claim or out-of-range rank.
    pub fn tracer(self: &Arc<Recorder>, rank: usize) -> Tracer {
        let buffer = &self.buffers[rank];
        if buffer.claimed.swap(true, Ordering::AcqRel) {
            panic!("rank {rank} buffer claimed twice");
        }
        Tracer {
            recorder: Arc::clone(self),
            rank,
            _not_send: PhantomData,
        }
    }

    /// Consume the recorder and yield the merged trace. Panics if any
    /// tracer is still alive (it would hold an `Arc` to this recorder).
    pub fn finish(recorder: Arc<Recorder>) -> RunTrace {
        let rec = Arc::try_unwrap(recorder).unwrap_or_else(|arc| {
            panic!(
                "Recorder::finish with {} outstanding handle(s): join all rank threads \
                 and drop their tracers first",
                Arc::strong_count(&arc) - 1
            )
        });
        RunTrace {
            per_rank: rec
                .buffers
                .into_iter()
                .map(|b| b.events.into_inner())
                .collect(),
        }
    }
}

/// A rank's handle for appending events. Cheap to clone; pinned to the
/// claiming thread (`!Send`).
pub struct Tracer {
    recorder: Arc<Recorder>,
    rank: usize,
    _not_send: PhantomData<*const ()>,
}

impl Clone for Tracer {
    fn clone(&self) -> Tracer {
        Tracer {
            recorder: Arc::clone(&self.recorder),
            rank: self.rank,
            _not_send: PhantomData,
        }
    }
}

impl Tracer {
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn push(&self, kind: EventKind) {
        let ts_ns = self.recorder.epoch.elapsed().as_nanos() as u64;
        let buffer = &self.recorder.buffers[self.rank];
        // SAFETY: single claimant + !Send (module-level safety model).
        unsafe { (*buffer.events.get()).push(TraceEvent { ts_ns, kind }) };
    }

    /// Open a span; it closes when the guard drops.
    pub fn region(&self, kind: RegionKind) -> RegionGuard {
        if !self.recorder.enabled() {
            return RegionGuard { tracer: None, kind };
        }
        self.push(EventKind::RegionBegin { region: kind });
        RegionGuard {
            tracer: Some(self.clone()),
            kind,
        }
    }

    /// Record a collective this rank took part in.
    pub fn collective(&self, op: OpKind, category: CommCategory, bytes: u64) {
        if self.recorder.enabled() {
            self.push(EventKind::Collective {
                op,
                category,
                bytes,
            });
        }
    }

    /// Record a point annotation.
    pub fn mark(&self, label: &str) {
        if self.recorder.enabled() {
            self.push(EventKind::Mark {
                label: label.to_string(),
            });
        }
    }

    /// Record one kernel invocation on one global partition.
    pub fn kernel(&self, region: RegionKind, partition: u32, dur_ns: u64) {
        if self.recorder.enabled() {
            self.push(EventKind::Kernel {
                region,
                partition,
                dur_ns,
            });
        }
    }
}

/// RAII span: emits the matching `RegionEnd` on drop.
pub struct RegionGuard {
    // `None` when recording was disabled at open time — then no end event
    // is emitted either, keeping begin/end pairs balanced.
    tracer: Option<Tracer>,
    kind: RegionKind,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        if let Some(t) = &self.tracer {
            t.push(EventKind::RegionEnd { region: self.kind });
        }
    }
}

// ------------------------------------------------------------ thread-local

thread_local! {
    static CURRENT: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Install `tracer` as this thread's current tracer for the guard's
/// lifetime; the previous tracer (if any) is restored on drop. Deep layers
/// emit through [`region`]/[`collective`]/[`mark`] without plumbing.
pub fn install_tracer(tracer: Tracer) -> TlsGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(tracer));
    TlsGuard { prev }
}

pub struct TlsGuard {
    prev: Option<Tracer>,
}

impl Drop for TlsGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Run `f` with the current tracer, or skip it if none is installed.
pub fn with_tracer<R>(f: impl FnOnce(&Tracer) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(f))
}

/// Open a span on the current tracer (no-op guard when none installed).
pub fn region(kind: RegionKind) -> Option<RegionGuard> {
    with_tracer(|t| t.region(kind))
}

/// Record a collective on the current tracer.
pub fn collective(op: OpKind, category: CommCategory, bytes: u64) {
    with_tracer(|t| t.collective(op, category, bytes));
}

/// Record a kernel invocation on the current tracer.
pub fn kernel(region: RegionKind, partition: u32, dur_ns: u64) {
    with_tracer(|t| t.kernel(region, partition, dur_ns));
}

/// Whether a tracer is installed on this thread **and** recording is on —
/// the gate for optional measurement work (e.g. per-partition `Instant`
/// reads) whose only consumer is the trace.
pub fn tracing_active() -> bool {
    with_tracer(|t| t.recorder.enabled()).unwrap_or(false)
}

/// Record a point annotation on the current tracer. The label is built
/// lazily so disabled/absent tracing never formats.
pub fn mark(label: impl FnOnce() -> String) {
    with_tracer(|t| {
        if t.recorder.enabled() {
            t.push(EventKind::Mark { label: label() });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_regions_collectives_and_marks() {
        let rec = Recorder::new(1);
        let t = rec.tracer(0);
        {
            let _g = t.region(RegionKind::SprRound);
            t.collective(OpKind::Allreduce, CommCategory::SiteLikelihoods, 8);
            t.mark("spr_round:0");
        }
        drop(t);
        let trace = Recorder::finish(rec);
        let sigs = trace.signatures(0);
        assert_eq!(
            sigs,
            vec![
                "begin:spr_round",
                "coll:allreduce:SiteLikelihoods:8",
                "mark:spr_round:0",
                "end:spr_round",
            ]
        );
    }

    #[test]
    fn timestamps_are_monotone_per_rank() {
        let rec = Recorder::new(1);
        let t = rec.tracer(0);
        for _ in 0..100 {
            let _g = t.region(RegionKind::Newview);
        }
        drop(t);
        let trace = Recorder::finish(rec);
        let events = trace.events(0);
        assert_eq!(events.len(), 200);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn disabled_recorder_emits_nothing() {
        let rec = Recorder::new(1);
        rec.set_enabled(false);
        let t = rec.tracer(0);
        {
            let _g = t.region(RegionKind::Evaluate);
            t.collective(OpKind::Barrier, CommCategory::Control, 0);
            t.mark("ignored");
        }
        drop(t);
        let trace = Recorder::finish(rec);
        assert!(trace.events(0).is_empty());
    }

    #[test]
    fn toggle_mid_region_keeps_pairs_balanced() {
        let rec = Recorder::new(1);
        rec.set_enabled(false);
        let t = rec.tracer(0);
        {
            // Opened while disabled: neither begin nor end is recorded,
            // even though recording is re-enabled before the drop.
            let _g = t.region(RegionKind::Evaluate);
            rec.set_enabled(true);
        }
        {
            let _g = t.region(RegionKind::Newview);
        }
        drop(t);
        let trace = Recorder::finish(rec);
        assert_eq!(trace.signatures(0), vec!["begin:newview", "end:newview"]);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_claim_panics() {
        let rec = Recorder::new(1);
        let _a = rec.tracer(0);
        let _b = rec.tracer(0);
    }

    #[test]
    fn ranks_write_concurrently_without_interference() {
        let rec = Recorder::new(4);
        std::thread::scope(|scope| {
            for rank in 0..4 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    let t = rec.tracer(rank);
                    for i in 0..500 {
                        t.collective(
                            OpKind::Allreduce,
                            CommCategory::SiteLikelihoods,
                            (rank * 1000 + i) as u64,
                        );
                    }
                });
            }
        });
        let trace = Recorder::finish(rec);
        for rank in 0..4 {
            let events = trace.events(rank);
            assert_eq!(events.len(), 500);
            for (i, e) in events.iter().enumerate() {
                match &e.kind {
                    EventKind::Collective { bytes, .. } => {
                        assert_eq!(*bytes, (rank * 1000 + i) as u64)
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
    }

    #[test]
    fn tls_free_functions_are_noops_without_tracer() {
        assert!(region(RegionKind::Newview).is_none());
        collective(OpKind::Barrier, CommCategory::Control, 0);
        mark(|| panic!("label must not be built without a tracer"));
    }

    #[test]
    fn tracing_active_tracks_tls_and_enable_state() {
        assert!(!tracing_active());
        let rec = Recorder::new(1);
        let t = rec.tracer(0);
        {
            let _g = install_tracer(t.clone());
            assert!(tracing_active());
            kernel(RegionKind::Newview, 3, 55);
            rec.set_enabled(false);
            assert!(!tracing_active());
            kernel(RegionKind::Newview, 4, 66);
            rec.set_enabled(true);
        }
        assert!(!tracing_active());
        drop(t);
        let trace = Recorder::finish(rec);
        assert_eq!(trace.signatures(0), vec!["kernel:newview:3"]);
    }

    #[test]
    fn tls_install_scopes_and_restores() {
        let rec = Recorder::new(2);
        let outer = rec.tracer(0);
        let inner = rec.tracer(1);
        {
            let _g0 = install_tracer(outer.clone());
            collective(OpKind::Allreduce, CommCategory::BranchLength, 16);
            {
                let _g1 = install_tracer(inner.clone());
                collective(OpKind::Allreduce, CommCategory::BranchLength, 32);
            }
            // Restored to rank 0 after the inner guard dropped.
            collective(OpKind::Allreduce, CommCategory::BranchLength, 48);
        }
        assert!(with_tracer(|_| ()).is_none());
        drop((outer, inner));
        let trace = Recorder::finish(rec);
        assert_eq!(
            trace.signatures(0),
            vec![
                "coll:allreduce:BranchLength:16",
                "coll:allreduce:BranchLength:48"
            ]
        );
        assert_eq!(trace.signatures(1), vec!["coll:allreduce:BranchLength:32"]);
    }
}
