//! Trace event model: what a rank can record.

use crate::stats::{CommCategory, OpKind};
use serde::{Deserialize, Serialize};

/// The spans a rank opens and closes. Kernel kinds mirror ExaML's three
/// likelihood functions; phase kinds mirror the search driver's structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Conditional-likelihood (CLV) update along a traversal descriptor.
    Newview,
    /// Log-likelihood evaluation at the virtual root.
    Evaluate,
    /// First/second derivative computation for Newton–Raphson.
    CoreDerivative,
    /// One SPR round of the search driver.
    SprRound,
    /// One Newton–Raphson branch-length iteration (a smoothing pass).
    NrIteration,
    /// One round of model-parameter optimization (α / GTR / PSR rates).
    ModelOptRound,
    /// Time spent inside a collective (synchronization + payload exchange).
    CollectiveWait,
    /// Checkpoint save/restore I/O.
    Checkpoint,
    /// Per-rank setup: data distribution, engine construction.
    Setup,
}

impl RegionKind {
    pub const ALL: [RegionKind; 9] = [
        RegionKind::Newview,
        RegionKind::Evaluate,
        RegionKind::CoreDerivative,
        RegionKind::SprRound,
        RegionKind::NrIteration,
        RegionKind::ModelOptRound,
        RegionKind::CollectiveWait,
        RegionKind::Checkpoint,
        RegionKind::Setup,
    ];

    /// Stable lower-snake name used in exports and summary tables.
    pub fn label(&self) -> &'static str {
        match self {
            RegionKind::Newview => "newview",
            RegionKind::Evaluate => "evaluate",
            RegionKind::CoreDerivative => "core_derivative",
            RegionKind::SprRound => "spr_round",
            RegionKind::NrIteration => "nr_iteration",
            RegionKind::ModelOptRound => "model_opt_round",
            RegionKind::CollectiveWait => "collective_wait",
            RegionKind::Checkpoint => "checkpoint",
            RegionKind::Setup => "setup",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            RegionKind::Newview => 0,
            RegionKind::Evaluate => 1,
            RegionKind::CoreDerivative => 2,
            RegionKind::SprRound => 3,
            RegionKind::NrIteration => 4,
            RegionKind::ModelOptRound => 5,
            RegionKind::CollectiveWait => 6,
            RegionKind::Checkpoint => 7,
            RegionKind::Setup => 8,
        }
    }
}

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    RegionBegin {
        region: RegionKind,
    },
    RegionEnd {
        region: RegionKind,
    },
    /// A collective operation this rank took part in. `bytes` is the
    /// theoretical payload (matching [`crate::CommStats`] accounting).
    Collective {
        op: OpKind,
        category: CommCategory,
        bytes: u64,
    },
    /// A point annotation, e.g. `spr_round:3` or `nr_pass:0`.
    Mark {
        label: String,
    },
    /// One kernel invocation on one **global** partition, recorded as a
    /// complete span (duration known at emission time). This is the raw
    /// material of the measured load-imbalance profiler: summing `dur_ns`
    /// per (rank, partition) yields the real per-rank kernel cost that
    /// `sched::balance` can compare against its pattern-count prediction.
    Kernel {
        region: RegionKind,
        /// Global partition index.
        partition: u32,
        dur_ns: u64,
    },
}

/// A timestamped event. Timestamps are nanoseconds since the owning
/// [`crate::Recorder`]'s creation, so ranks of one run share a clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub ts_ns: u64,
    pub kind: EventKind,
}

impl TraceEvent {
    /// Timestamp-free rendering, used by determinism tests: two ranks (or
    /// two runs) behaved identically iff their signature sequences match.
    pub fn signature(&self) -> String {
        match &self.kind {
            EventKind::RegionBegin { region } => format!("begin:{}", region.label()),
            EventKind::RegionEnd { region } => format!("end:{}", region.label()),
            EventKind::Collective {
                op,
                category,
                bytes,
            } => {
                format!("coll:{}:{:?}:{}", op.label(), category, bytes)
            }
            EventKind::Mark { label } => format!("mark:{label}"),
            // Durations are deliberately excluded (like timestamps): ranks
            // in lock-step execute the same kernels on the same partitions
            // but never in the same wall time.
            EventKind::Kernel {
                region, partition, ..
            } => format!("kernel:{}:{partition}", region.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_ignore_timestamps() {
        let a = TraceEvent {
            ts_ns: 10,
            kind: EventKind::RegionBegin {
                region: RegionKind::Newview,
            },
        };
        let b = TraceEvent {
            ts_ns: 99,
            kind: EventKind::RegionBegin {
                region: RegionKind::Newview,
            },
        };
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature(), "begin:newview");
    }

    #[test]
    fn collective_signature_includes_payload() {
        let e = TraceEvent {
            ts_ns: 0,
            kind: EventKind::Collective {
                op: OpKind::Allreduce,
                category: CommCategory::SiteLikelihoods,
                bytes: 8,
            },
        };
        assert_eq!(e.signature(), "coll:allreduce:SiteLikelihoods:8");
    }

    #[test]
    fn kernel_signature_excludes_duration() {
        let a = TraceEvent {
            ts_ns: 1,
            kind: EventKind::Kernel {
                region: RegionKind::Evaluate,
                partition: 3,
                dur_ns: 100,
            },
        };
        let b = TraceEvent {
            ts_ns: 2,
            kind: EventKind::Kernel {
                region: RegionKind::Evaluate,
                partition: 3,
                dur_ns: 9999,
            },
        };
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature(), "kernel:evaluate:3");
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = RegionKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), RegionKind::ALL.len());
    }

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            TraceEvent {
                ts_ns: 5,
                kind: EventKind::RegionBegin {
                    region: RegionKind::SprRound,
                },
            },
            TraceEvent {
                ts_ns: 7,
                kind: EventKind::Mark {
                    label: "spr_round:0".into(),
                },
            },
            TraceEvent {
                ts_ns: 9,
                kind: EventKind::Collective {
                    op: OpKind::Broadcast,
                    category: CommCategory::ModelParams,
                    bytes: 32,
                },
            },
            TraceEvent {
                ts_ns: 11,
                kind: EventKind::Kernel {
                    region: RegionKind::Newview,
                    partition: 7,
                    dur_ns: 420,
                },
            },
            TraceEvent {
                ts_ns: 12,
                kind: EventKind::RegionEnd {
                    region: RegionKind::SprRound,
                },
            },
        ];
        let text = serde_json::to_string(&events).unwrap();
        let back: Vec<TraceEvent> = serde_json::from_str(&text).unwrap();
        assert_eq!(events, back);
    }
}
