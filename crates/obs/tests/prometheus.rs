//! Property-based checks on the Prometheus text renderer in
//! [`exa_obs::metrics`]: label values with arbitrary hostile characters
//! must round-trip through escaping without breaking the line protocol,
//! histogram buckets must stay cumulative with `+Inf` equal to `_count`,
//! and `_sum`/`_count` must agree with the raw observations.

use exa_obs::metrics::Registry;
use proptest::prelude::*;

/// Mirror of the renderer's label escaping, used to locate the expected
/// sample line and to round-trip the value back out.
fn escape(v: &str) -> String {
    let mut out = String::new();
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(v: &str) -> String {
    let mut out = String::new();
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => panic!("dangling escape before {other:?}"),
        }
    }
    out
}

/// A character pool deliberately heavy on exposition-format metacharacters.
fn label_char() -> impl Strategy<Value = char> {
    prop::sample::select(vec![
        'a', 'b', 'Z', '0', '_', '-', '.', ' ', '{', '}', ',', '=', '"', '\\', '\n', 'é',
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hostile label values never break the one-sample-per-line protocol:
    /// the escaped value appears on a single line, and unescaping it
    /// recovers the original string exactly.
    #[test]
    fn label_values_escape_and_round_trip(
        chars in prop::collection::vec(label_char(), 0..24),
    ) {
        let value: String = chars.into_iter().collect();
        let reg = Registry::new();
        reg.counter("exa_prop_escape_total", "escape property", &[("tenant", &value)])
            .inc();
        let text = reg.render();

        // Exactly one sample line for the family, no matter how many
        // newlines the raw value contained.
        let sample_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("exa_prop_escape_total{"))
            .collect();
        prop_assert_eq!(sample_lines.len(), 1, "render:\n{}", text);
        let line = sample_lines[0];

        let expected = format!("exa_prop_escape_total{{tenant=\"{}\"}} 1", escape(&value));
        prop_assert_eq!(line, expected.as_str());

        // Round-trip: pull the escaped payload back out of the line and
        // unescape it.
        let start = line.find("tenant=\"").unwrap() + "tenant=\"".len();
        let end = line.rfind("\"}").unwrap();
        prop_assert_eq!(unescape(&line[start..end]), value);
    }

    /// Bucket lines are cumulative and non-decreasing, `le` values strictly
    /// increase, `+Inf` equals `_count`, and `_count` equals the number of
    /// observations.
    #[test]
    fn histogram_buckets_are_cumulative(
        obs in prop::collection::vec(0.0f64..1.0e9, 1..200),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("exa_prop_lat_ms", "latency property", &[]);
        for &v in &obs {
            h.observe(v);
        }
        let text = reg.render();

        let mut les: Vec<u64> = Vec::new();
        let mut cums: Vec<u64> = Vec::new();
        let mut inf_count = None;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("exa_prop_lat_ms_bucket{le=\"") else {
                continue;
            };
            let (le, count) = rest.split_once("\"} ").unwrap();
            let count: u64 = count.parse().unwrap();
            if le == "+Inf" {
                inf_count = Some(count);
            } else {
                les.push(le.parse().unwrap());
                cums.push(count);
            }
        }
        prop_assert!(les.windows(2).all(|w| w[0] < w[1]), "le not increasing: {:?}", les);
        prop_assert!(
            cums.windows(2).all(|w| w[0] <= w[1]),
            "buckets not cumulative: {:?}",
            cums
        );
        if let Some(&last) = cums.last() {
            prop_assert_eq!(last, obs.len() as u64);
        }
        prop_assert_eq!(inf_count, Some(obs.len() as u64));

        // Every observation v lands in the first bucket with le >= ceil(v).
        for &v in &obs {
            let ceil = v.ceil() as u64;
            prop_assert!(
                les.iter().any(|&le| le >= ceil),
                "no bucket covers {} (les {:?})",
                v,
                les
            );
        }
    }

    /// `_sum` and `_count` agree with the raw observations.
    #[test]
    fn histogram_sum_and_count_are_consistent(
        obs in prop::collection::vec(0.0f64..1.0e6, 1..100),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("exa_prop_sum_ms", "sum property", &[]);
        for &v in &obs {
            h.observe(v);
        }
        let text = reg.render();

        let count_line = text
            .lines()
            .find(|l| l.starts_with("exa_prop_sum_ms_count "))
            .expect("missing _count line");
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        prop_assert_eq!(count, obs.len() as u64);

        let sum_line = text
            .lines()
            .find(|l| l.starts_with("exa_prop_sum_ms_sum "))
            .expect("missing _sum line");
        let rendered_sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        let expected: f64 = obs.iter().sum();
        let tol = expected.abs() * 1e-9 + 1e-9;
        prop_assert!(
            (rendered_sum - expected).abs() <= tol,
            "sum {} != expected {}",
            rendered_sum,
            expected
        );
    }
}
