//! Write a simulated partitioned workload as a PHYLIP file — used by
//! `scripts/verify.sh` for an end-to-end `examl` smoke run without shipping
//! binary fixtures.
//!
//! ```text
//! cargo run -p exa-simgen --bin simgen -- OUT.phy [n_taxa=8] [n_partitions=2] [chunk_len=100] [seed=1]
//! ```

use exa_bio::phylip::write_phylip;
use exa_simgen::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(out) = args.first() else {
        eprintln!("usage: simgen OUT.phy [n_taxa] [n_partitions] [chunk_len] [seed]");
        std::process::exit(2);
    };
    let n_taxa = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let n_partitions = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let chunk_len = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1);

    let w = workloads::partitioned(n_taxa, n_partitions, chunk_len, seed);
    std::fs::write(out, write_phylip(&w.alignment)).expect("write phylip file");
    eprintln!(
        "wrote {out} ({} taxa x {} sites, {n_partitions} partitions)",
        w.alignment.n_taxa(),
        w.alignment.n_sites()
    );
}
