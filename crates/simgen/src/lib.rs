//! `exa-simgen` — synthetic data generation.
//!
//! The paper evaluates on (i) a *simulated* 150-taxon × 20 Mbp DNA alignment
//! and (ii) a real 52-taxon multi-gene alignment cut into ~1000 bp
//! partitions (§IV-B). Neither dataset is redistributable, so this crate
//! regenerates statistically equivalent inputs: sequences evolved along a
//! random tree under per-partition GTR models with Γ or per-site rate
//! variation (the standard forward-simulation used by tools like Seq-Gen and
//! INDELible, minus indels — ExaML operates on aligned data anyway).
//!
//! Everything is deterministic in the seed.

pub mod workloads;

use exa_bio::alignment::Alignment;
use exa_bio::dna::{Nucleotide, NUM_STATES};
use exa_bio::partition::PartitionScheme;
use exa_phylo::model::pmatrix::prob_matrix;
use exa_phylo::model::GtrModel;
use exa_phylo::numerics::gamma::discrete_gamma_rates;
use exa_phylo::tree::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rate variation used when *generating* data.
#[derive(Debug, Clone)]
pub enum SimRates {
    /// All sites evolve at rate 1.
    Uniform,
    /// Discrete Γ: each site draws one of the four category rates.
    Gamma { alpha: f64 },
}

/// One partition's generating model.
#[derive(Debug, Clone)]
pub struct SimModel {
    pub gtr: GtrModel,
    pub rates: SimRates,
}

impl SimModel {
    /// Draw a heterogeneous random model (distinct exchangeabilities, GC
    /// content and α per partition — the "different genes evolve at
    /// different speeds" premise from §I).
    pub fn random(rng: &mut StdRng) -> SimModel {
        let mut ex = [1.0f64; 6];
        for e in ex.iter_mut().take(5) {
            *e = rng.gen_range(0.3..4.0);
        }
        // Transitions (AG, CT) typically exceed transversions.
        ex[1] *= rng.gen_range(1.5..3.0);
        ex[4] *= rng.gen_range(1.5..3.0);
        let mut freqs = [0.0f64; 4];
        let mut sum = 0.0;
        for f in freqs.iter_mut() {
            *f = rng.gen_range(0.15..0.35);
            sum += *f;
        }
        for f in freqs.iter_mut() {
            *f /= sum;
        }
        let alpha = rng.gen_range(0.3..1.5);
        SimModel {
            gtr: GtrModel::new(ex, freqs),
            rates: SimRates::Gamma { alpha },
        }
    }
}

/// Evolve sequences along `tree` for the given partition scheme; partition
/// `p` uses `models[p]`. Returns the alignment (taxa named `t0..tN-1`).
pub fn simulate(
    tree: &Tree,
    scheme: &PartitionScheme,
    models: &[SimModel],
    seed: u64,
) -> Alignment {
    assert_eq!(models.len(), scheme.len(), "one model per partition");
    let n_taxa = tree.n_taxa();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<Nucleotide>> = vec![Vec::with_capacity(scheme.n_sites()); n_taxa];

    // Root the walk at inner node n_taxa (any node works — GTR is
    // stationary and reversible).
    let root: NodeId = n_taxa;

    for (p, model) in scheme.partitions().iter().zip(models) {
        let cat_rates = match &model.rates {
            SimRates::Uniform => vec![1.0],
            SimRates::Gamma { alpha } => discrete_gamma_rates(*alpha, 4),
        };
        for _site in p.start..p.end {
            let rate = cat_rates[rng.gen_range(0..cat_rates.len())];
            let mut states = vec![usize::MAX; tree.n_nodes()];
            states[root] = sample_from(model.gtr.freqs(), &mut rng);
            // DFS from the root, sampling child states through P(t·r).
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                for &(w, e) in tree.neighbors(v) {
                    if states[w] != usize::MAX {
                        continue;
                    }
                    let t = tree.edge(e).length(0);
                    let pm = prob_matrix(&model.gtr, t, rate);
                    let row = &pm[states[v]];
                    states[w] = sample_from(row, &mut rng);
                    stack.push(w);
                }
            }
            for (taxon, seq) in rows.iter_mut().enumerate() {
                seq.push(Nucleotide::from_state(states[taxon]));
            }
        }
    }

    let taxa: Vec<String> = (0..n_taxa).map(|i| format!("t{i}")).collect();
    Alignment::new(taxa, rows).expect("simulated alignment is well-formed")
}

fn sample_from(weights: &[f64; NUM_STATES], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    NUM_STATES - 1
}

/// A random tree with biologically plausible branch lengths (log-uniform in
/// `[min_bl, max_bl]`), deterministic in the seed.
pub fn random_tree_with_lengths(
    n_taxa: usize,
    blen_count: usize,
    min_bl: f64,
    max_bl: f64,
    seed: u64,
) -> Tree {
    assert!(min_bl > 0.0 && min_bl < max_bl);
    let mut tree = Tree::random(n_taxa, blen_count, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb5ad_4ece_da1c_e2a9);
    for e in 0..tree.n_edges() {
        let u: f64 = rng.gen_range(min_bl.ln()..max_bl.ln());
        let len = u.exp();
        let lengths = vec![len; blen_count];
        tree.set_lengths(e, &lengths);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_bio::patterns::CompressedAlignment;
    use exa_bio::stats::empirical_frequencies;

    fn jc_model(rates: SimRates) -> SimModel {
        SimModel {
            gtr: GtrModel::jukes_cantor(),
            rates,
        }
    }

    #[test]
    fn dimensions_and_determinism() {
        let tree = random_tree_with_lengths(8, 1, 0.05, 0.3, 7);
        let scheme = PartitionScheme::unpartitioned(200);
        let m = vec![jc_model(SimRates::Uniform)];
        let a = simulate(&tree, &scheme, &m, 42);
        let b = simulate(&tree, &scheme, &m, 42);
        let c = simulate(&tree, &scheme, &m, 43);
        assert_eq!(a.n_taxa(), 8);
        assert_eq!(a.n_sites(), 200);
        assert_eq!(a, b, "same seed, same data");
        assert_ne!(a, c, "different seed, different data");
    }

    #[test]
    fn short_branches_give_similar_sequences() {
        let tree = random_tree_with_lengths(6, 1, 0.001, 0.002, 3);
        let scheme = PartitionScheme::unpartitioned(500);
        let a = simulate(&tree, &scheme, &[jc_model(SimRates::Uniform)], 1);
        // Adjacent rows should be nearly identical under tiny branches.
        let diff = (0..500).filter(|&s| a.row(0)[s] != a.row(1)[s]).count();
        assert!(diff < 25, "too divergent for tiny branches: {diff}/500");
    }

    #[test]
    fn long_branches_approach_saturation() {
        let tree = random_tree_with_lengths(6, 1, 4.0, 8.0, 3);
        let scheme = PartitionScheme::unpartitioned(2000);
        let a = simulate(&tree, &scheme, &[jc_model(SimRates::Uniform)], 1);
        let diff = (0..2000).filter(|&s| a.row(0)[s] != a.row(1)[s]).count();
        // At saturation under JC, two sequences differ at ~75% of sites.
        let frac = diff as f64 / 2000.0;
        assert!((frac - 0.75).abs() < 0.06, "saturation fraction {frac}");
    }

    #[test]
    fn skewed_frequencies_show_up_in_data() {
        let gtr = GtrModel::new([1.0; 6], [0.7, 0.1, 0.1, 0.1]);
        let tree = random_tree_with_lengths(5, 1, 0.05, 0.2, 9);
        let scheme = PartitionScheme::unpartitioned(3000);
        let a = simulate(
            &tree,
            &scheme,
            &[SimModel {
                gtr,
                rates: SimRates::Uniform,
            }],
            5,
        );
        let comp = CompressedAlignment::build(&a, &scheme);
        let f = empirical_frequencies(&comp.partitions[0]);
        assert!(f[0] > 0.6, "A-rich generator must give A-rich data: {f:?}");
    }

    #[test]
    fn gamma_rates_create_rate_variation() {
        // Under strong rate heterogeneity some sites are invariant (slow
        // categories) even on a tree long enough to saturate fast sites.
        let tree = random_tree_with_lengths(10, 1, 0.3, 0.8, 11);
        let scheme = PartitionScheme::unpartitioned(1500);
        let hetero = simulate(
            &tree,
            &scheme,
            &[jc_model(SimRates::Gamma { alpha: 0.1 })],
            2,
        );
        let uniform = simulate(&tree, &scheme, &[jc_model(SimRates::Uniform)], 2);
        let invariant = |a: &Alignment| {
            (0..a.n_sites())
                .filter(|&s| {
                    let c0 = a.row(0)[s];
                    (1..a.n_taxa()).all(|t| a.row(t)[s] == c0)
                })
                .count()
        };
        let inv_h = invariant(&hetero);
        let inv_u = invariant(&uniform);
        assert!(
            inv_h > 2 * inv_u.max(1),
            "heterogeneous: {inv_h} invariant vs uniform: {inv_u}"
        );
    }

    #[test]
    fn per_partition_models_differ() {
        let mut rng = StdRng::seed_from_u64(77);
        let m0 = SimModel::random(&mut rng);
        let m1 = SimModel::random(&mut rng);
        assert_ne!(m0.gtr.rates(), m1.gtr.rates());
        let tree = random_tree_with_lengths(6, 1, 0.05, 0.3, 5);
        let scheme = PartitionScheme::uniform_chunks(2, 800);
        let a = simulate(&tree, &scheme, &[m0.clone(), m1], 9);
        let comp = CompressedAlignment::build(&a, &scheme);
        let f0 = empirical_frequencies(&comp.partitions[0]);
        let f1 = empirical_frequencies(&comp.partitions[1]);
        let dist: f64 = f0.iter().zip(&f1).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            dist > 0.02,
            "partition compositions should differ: {f0:?} vs {f1:?}"
        );
    }

    #[test]
    #[should_panic(expected = "one model per partition")]
    fn model_count_must_match() {
        let tree = random_tree_with_lengths(4, 1, 0.1, 0.2, 1);
        let scheme = PartitionScheme::uniform_chunks(2, 10);
        simulate(&tree, &scheme, &[jc_model(SimRates::Uniform)], 0);
    }
}
