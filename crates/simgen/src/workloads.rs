//! The paper's two benchmark workloads (§IV-B), regenerated at configurable
//! scale.

use crate::{random_tree_with_lengths, simulate, SimModel, SimRates};
use exa_bio::alignment::Alignment;
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::model::GtrModel;
use exa_phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated workload: raw alignment, scheme, compressed form and the
/// generating tree (for recovery checks).
pub struct Workload {
    pub alignment: Alignment,
    pub scheme: PartitionScheme,
    pub compressed: CompressedAlignment,
    pub true_tree: Tree,
}

impl Workload {
    fn build(tree: Tree, scheme: PartitionScheme, models: &[SimModel], seed: u64) -> Workload {
        let alignment = simulate(&tree, &scheme, models, seed);
        let compressed = CompressedAlignment::build(&alignment, &scheme);
        Workload {
            alignment,
            scheme,
            compressed,
            true_tree: tree,
        }
    }
}

/// Challenge (i): the large unpartitioned alignment. The paper's instance is
/// 150 taxa × 20,000,000 bp (12,597,450 unique patterns); `n_sites` scales
/// it down for in-process runs — the cluster model in `exa-comm` rescales
/// measured profiles back up (see EXPERIMENTS.md).
pub fn large_unpartitioned(n_taxa: usize, n_sites: usize, seed: u64) -> Workload {
    let tree = random_tree_with_lengths(n_taxa, 1, 0.01, 0.6, seed);
    let scheme = PartitionScheme::unpartitioned(n_sites);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let model = SimModel {
        gtr: GtrModel::new([1.2, 2.9, 0.8, 1.1, 3.4, 1.0], [0.27, 0.23, 0.24, 0.26]),
        rates: SimRates::Gamma {
            alpha: rng.gen_range(0.6..0.9),
        },
    };
    Workload::build(tree, scheme, &[model], seed)
}

/// Challenge (ii): the partitioned 52-taxon alignment. The paper cuts a real
/// multi-gene alignment into ~1000 bp partitions and takes the first
/// 10/50/100/500/1000; each partition here gets its own random GTR+Γ model.
pub fn partitioned_52taxa(n_partitions: usize, chunk_len: usize, seed: u64) -> Workload {
    partitioned(52, n_partitions, chunk_len, seed)
}

/// Generalized partitioned workload.
pub fn partitioned(n_taxa: usize, n_partitions: usize, chunk_len: usize, seed: u64) -> Workload {
    let tree = random_tree_with_lengths(n_taxa, 1, 0.01, 0.5, seed);
    let scheme = PartitionScheme::uniform_chunks(n_partitions, chunk_len);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    let models: Vec<SimModel> = (0..n_partitions)
        .map(|_| SimModel::random(&mut rng))
        .collect();
    Workload::build(tree, scheme, &models, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_unpartitioned_shape() {
        let w = large_unpartitioned(20, 2000, 1);
        assert_eq!(w.alignment.n_taxa(), 20);
        assert_eq!(w.alignment.n_sites(), 2000);
        assert_eq!(w.scheme.len(), 1);
        assert!(w.compressed.total_patterns() <= 2000);
        // Real sequence data compresses, but not degenerately.
        assert!(w.compressed.total_patterns() > 200);
    }

    #[test]
    fn partitioned_shape() {
        let w = partitioned_52taxa(10, 100, 3);
        assert_eq!(w.alignment.n_taxa(), 52);
        assert_eq!(w.scheme.len(), 10);
        assert_eq!(w.alignment.n_sites(), 1000);
        assert_eq!(w.compressed.n_partitions(), 10);
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = partitioned(8, 3, 50, 9);
        let b = partitioned(8, 3, 50, 9);
        assert_eq!(a.alignment, b.alignment);
        assert_eq!(a.compressed, b.compressed);
    }

    #[test]
    fn pattern_counts_grow_with_partitions() {
        // More partitions = more sites = more total patterns (compression is
        // per partition).
        let small = partitioned(10, 2, 100, 4);
        let large = partitioned(10, 8, 100, 4);
        assert!(large.compressed.total_patterns() > small.compressed.total_patterns());
    }
}
