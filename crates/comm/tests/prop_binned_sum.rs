//! Property-based tests for the binned superaccumulator behind
//! `--reduce reproducible`: the sum of a multiset of addends must not
//! depend on the order they arrive in, on how they are partitioned across
//! accumulators (ranks), or on how many accumulators there are — and the
//! rendered f64 must stay within 1 ULP of the conventional left-to-right
//! sum on well-conditioned inputs.

use exa_comm::{BinnedSum, CommCategory, ReduceKind, World};
use proptest::prelude::*;

/// splitmix64 — a tiny deterministic generator for shuffles, so the tests
/// do not depend on the vendored `rand` surface.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn shuffled(xs: &[f64], seed: u64) -> Vec<f64> {
    let mut out = xs.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

fn binned_total(xs: &[f64]) -> f64 {
    let mut acc = BinnedSum::new();
    acc.add_slice(xs);
    acc.render()
}

fn ulp_distance(a: f64, b: f64) -> u64 {
    // Monotone integer mapping of finite doubles: negatives mirror below
    // zero, so distance across the sign boundary is still meaningful.
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN ^ bits
        } else {
            bits
        }
    }
    key(a).abs_diff(key(b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permutation_invariant(
        xs in prop::collection::vec(-1e30f64..1e30, 1..64),
        seed in any::<u64>(),
    ) {
        let reference = binned_total(&xs);
        let permuted = binned_total(&shuffled(&xs, seed));
        prop_assert_eq!(reference.to_bits(), permuted.to_bits());
    }

    #[test]
    fn partition_invariant(
        xs in prop::collection::vec(-1e30f64..1e30, 1..64),
        cuts in any::<u64>(),
        parts in 1usize..9,
    ) {
        // Deal the addends into `parts` accumulators pseudo-randomly —
        // this is exactly what changing the rank count does — then merge
        // in order. The render must match the single-accumulator sum
        // bit for bit.
        let reference = binned_total(&xs);
        let mut bins = vec![BinnedSum::new(); parts];
        let mut state = cuts;
        for &x in &xs {
            bins[(splitmix(&mut state) % parts as u64) as usize].add(x);
        }
        let mut merged = BinnedSum::new();
        for b in &bins {
            merged.merge(b);
        }
        prop_assert_eq!(reference.to_bits(), merged.render().to_bits());
    }

    #[test]
    fn extremes_accumulate_like_f64(
        xs in prop::collection::vec(
            prop::sample::select(vec![
                0.0f64, -0.0, 1.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN,
                f64::MIN_POSITIVE, 5e-324, f64::MAX,
            ]),
            1..16,
        ),
    ) {
        // NaN and opposing infinities must poison the render the way an
        // IEEE sum would: NaN stays NaN, a lone infinity keeps its sign.
        let total = binned_total(&xs);
        let has_nan = xs.iter().any(|x| x.is_nan());
        let pos_inf = xs.contains(&f64::INFINITY);
        let neg_inf = xs.contains(&f64::NEG_INFINITY);
        if has_nan || (pos_inf && neg_inf) {
            prop_assert!(total.is_nan());
        } else if pos_inf {
            prop_assert_eq!(total, f64::INFINITY);
        } else if neg_inf {
            prop_assert_eq!(total, f64::NEG_INFINITY);
        } else {
            // Finite inputs may still overflow the format (several
            // f64::MAX addends); the render then correctly rounds to an
            // infinity, never to NaN.
            prop_assert!(!total.is_nan());
        }
    }

    #[test]
    fn exact_on_integer_sums(
        xs in prop::collection::vec(-1_000_000i64..1_000_000, 1..256),
    ) {
        // Integer-valued addends with an exactly representable total: the
        // conventional sum is exact, so the faithful render must agree to
        // the bit — a stronger form of the ≤1 ULP contract.
        let fast: f64 = xs.iter().map(|&v| v as f64).sum();
        let reproducible = binned_total(&xs.iter().map(|&v| v as f64).collect::<Vec<_>>());
        prop_assert_eq!(fast.to_bits(), reproducible.to_bits());
    }

    #[test]
    fn within_one_ulp_of_fast_when_well_conditioned(
        xs in prop::collection::vec(0.5f64..2.0, 1..8),
    ) {
        // Few same-sign, same-magnitude addends: the left-to-right sum is
        // itself nearly exact, so the correctly-rounded render can sit at
        // most 1 ULP away (per-step rounding of at most 6 additions stays
        // inside half an ULP of the result here in practice).
        let mut fast = xs[0];
        for &x in &xs[1..] {
            fast += x;
        }
        let reproducible = binned_total(&xs);
        prop_assert!(
            ulp_distance(fast, reproducible) <= 1,
            "fast {fast:e} vs reproducible {reproducible:e}"
        );
    }

    #[test]
    fn reproducible_allreduce_invariant_to_rank_count(
        xs in prop::collection::vec(-1e12f64..1e12, 1..48),
        rank_counts in prop::collection::vec(1usize..7, 2..4),
    ) {
        // The end-to-end property the run relies on: splitting the same
        // site vector across different world sizes and reducing with
        // ReduceKind::Reproducible yields the same bits everywhere.
        let mut renders = Vec::new();
        for &ranks in &rank_counts {
            let results = World::run(ranks, |rank| {
                // Contiguous block split, like the site distribution.
                let chunk = xs.len().div_ceil(ranks);
                let lo = (rank.id() * chunk).min(xs.len());
                let hi = ((rank.id() + 1) * chunk).min(xs.len());
                let mut bin = BinnedSum::new();
                bin.add_slice(&xs[lo..hi]);
                let out = rank
                    .collective(CommCategory::SiteLikelihoods)
                    .reduce(ReduceKind::Reproducible)
                    .allreduce_binned(vec![bin])
                    .unwrap();
                out[0].to_bits()
            });
            for &r in &results {
                prop_assert_eq!(r, results[0], "ranks disagree within one world");
            }
            renders.push(results[0]);
        }
        for &r in &renders {
            prop_assert_eq!(r, renders[0], "render depends on rank count");
        }
    }
}
