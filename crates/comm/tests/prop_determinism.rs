//! Property-based determinism tests for the communicator: the §III-B
//! requirement is that reductions yield *exactly identical* values on all
//! ranks, for any payload and any rank count — otherwise the replicated
//! search states diverge.

use exa_comm::{CommCategory, World};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_bitwise_identical_for_arbitrary_payloads(
        ranks in 2usize..7,
        base in prop::collection::vec(-1e12f64..1e12, 1..20),
    ) {
        let results = World::run(ranks, |rank| {
            // Each rank perturbs the payload differently; summation order
            // sensitivity is exactly what we are probing.
            let mut data: Vec<f64> = base
                .iter()
                .map(|&x| x * (1.0 + rank.id() as f64 * 1e-3) + rank.id() as f64 * 1e-9)
                .collect();
            rank.allreduce_sum(&mut data, CommCategory::SiteLikelihoods).unwrap();
            data.into_iter().map(f64::to_bits).collect::<Vec<u64>>()
        });
        for pair in results.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
    }

    #[test]
    fn allreduce_equals_sequential_fixed_order_sum(
        ranks in 2usize..6,
        value in -1e6f64..1e6,
    ) {
        // The deterministic reduction must equal the rank-ordered sum
        // computed sequentially — bit for bit.
        let contributions: Vec<f64> =
            (0..ranks).map(|r| value * (r as f64 + 0.5)).collect();
        let mut expect = contributions[0];
        for &c in &contributions[1..] {
            expect += c;
        }
        let results = World::run(ranks, |rank| {
            let mut data = vec![contributions[rank.id()]];
            rank.allreduce_sum(&mut data, CommCategory::SiteLikelihoods).unwrap();
            data[0].to_bits()
        });
        for r in results {
            prop_assert_eq!(r, expect.to_bits());
        }
    }

    #[test]
    fn repeated_collectives_stay_consistent(
        ranks in 2usize..5,
        rounds in 1usize..30,
    ) {
        let results = World::run(ranks, |rank| {
            let mut acc: u64 = 0;
            for round in 0..rounds {
                let mut d = vec![(rank.id() + round) as f64; 3];
                rank.allreduce_sum(&mut d, CommCategory::BranchLength).unwrap();
                acc = acc.wrapping_mul(31).wrapping_add(d[0].to_bits());
            }
            acc
        });
        for pair in results.windows(2) {
            prop_assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn broadcast_delivers_root_bytes_verbatim(
        ranks in 2usize..6,
        root_choice in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let root = root_choice as usize % ranks;
        let results = World::run(ranks, |rank| {
            let mut data = if rank.id() == root { payload.clone() } else { Vec::new() };
            rank.broadcast_bytes(root, &mut data, CommCategory::TraversalDescriptor).unwrap();
            data
        });
        for r in results {
            prop_assert_eq!(&r, &payload);
        }
    }
}
