//! `exa-comm` — the message-passing substrate `examl-rs` runs on.
//!
//! The paper's two parallelization schemes are defined by *what they
//! communicate*: the fork-join baseline broadcasts traversal descriptors and
//! model-parameter arrays and reduces likelihoods back to a master; the
//! de-centralized scheme needs nothing but `MPI_Allreduce`. This crate
//! provides those primitives for in-process "ranks" (OS threads):
//!
//! * [`World::run`] spawns `n` rank threads and hands each a [`Rank`] handle,
//! * collectives ([`Rank::allreduce_sum`], [`Rank::reduce_sum`],
//!   [`Rank::broadcast_bytes`], [`Rank::barrier`]) follow MPI semantics:
//!   every active rank must call the same operation in the same order,
//! * reductions are **deterministic**: contributions are summed in fixed
//!   rank order by one thread and the identical bit pattern is returned to
//!   every rank — the paper's §III-B correctness requirement ("MPI_Allreduce
//!   needs to yield exactly identical numerical values at all processors"),
//! * every collective is accounted in [`CommStats`] under a
//!   [`CommCategory`] using the paper's hardware-independent byte-counting
//!   convention (an allreduce of 3 doubles = 24 bytes, Table I),
//! * ranks can **fail** at quiescent points ([`Rank::fail`]); survivors see
//!   [`CommError::RanksFailed`] from their next collective, acknowledge via
//!   [`Rank::recover`], and continue with the shrunken rank set — the
//!   substrate for the paper's §V fault-tolerance design.
//!
//! The [`cluster`] module contains the analytic performance model that maps
//! measured kernel-work and communication profiles onto the paper's
//! 48-core-node cluster (DESIGN.md §2 documents this substitution).

pub mod cluster;
pub mod reduce;

pub use reduce::{BinnedSum, ReduceChoice, ReduceKind};

/// Communication accounting types. These moved to `exa-obs` (the bottom of
/// the crate stack) so the trace aggregation can share them; re-exported
/// here for existing call sites.
pub mod stats {
    pub use exa_obs::{CategoryStats, CommCategory, CommStats, OpKind, Snapshot};
}

pub use stats::{CategoryStats, CommCategory, CommStats, OpKind, Snapshot};

use exa_obs::{Recorder, RegionKind, Tracer};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Errors surfaced by collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// One or more ranks have failed; the collective was aborted. Survivors
    /// must call [`Rank::recover`] before communicating again.
    RanksFailed(BTreeSet<usize>),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RanksFailed(set) => write!(f, "ranks failed: {set:?}"),
        }
    }
}

impl std::error::Error for CommError {}

#[derive(Debug, Clone, PartialEq)]
enum Payload {
    F64(Vec<f64>),
    /// Reproducible-mode reduction contribution: one superaccumulator per
    /// output element. Merged exactly; the combined result is rendered to
    /// [`Payload::F64`] once so every reader sees the identical bits.
    Bins(Vec<BinnedSum>),
    Bytes(Vec<u8>),
    /// One byte blob per rank (gather result / scatter input).
    PerRank(Vec<Vec<u8>>),
    Unit,
}

/// Collective signature checked for consistency across ranks. The stats
/// `category` is deliberately NOT part of the signature: for broadcasts the
/// receivers cannot know the category before decoding the payload, so the
/// root's category is authoritative (falling back to the first depositor's
/// when the root rank is dead, which can only happen for root-less ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpSig {
    kind: OpKind,
    root: usize,
}

struct State {
    /// Set when a rank panicked mid-collective; all other ranks panic too
    /// instead of deadlocking.
    poisoned: bool,
    // Failure handling.
    pending_failure: bool,
    failed: BTreeSet<usize>,
    active: Vec<bool>,
    n_active: usize,
    // Current collective.
    gen: u64,
    arrived: usize,
    contributions: Vec<Option<Payload>>,
    op: Option<OpSig>,
    /// `(came_from_root, category)` — root's entry wins.
    category: Option<(bool, CommCategory)>,
    result: Option<Payload>,
    result_gen: u64,
    remaining_readers: usize,
    aborted: BTreeSet<u64>,
    // Recovery barrier.
    rec_gen: u64,
    rec_arrived: usize,
}

struct Ctx {
    size: usize,
    state: Mutex<State>,
    cv: Condvar,
    stats: Mutex<CommStats>,
}

/// Registry handles for collective instrumentation, resolved once so the
/// per-collective cost is two relaxed atomic adds.
struct CollectiveMetrics {
    calls: Arc<exa_obs::metrics::Counter>,
    wait_ns: Arc<exa_obs::metrics::Counter>,
}

impl CollectiveMetrics {
    fn observe(&self, elapsed_ns: u64) {
        self.calls.inc();
        self.wait_ns.add(elapsed_ns);
    }
}

fn collective_metrics() -> &'static CollectiveMetrics {
    static HANDLES: std::sync::OnceLock<CollectiveMetrics> = std::sync::OnceLock::new();
    HANDLES.get_or_init(|| {
        let reg = exa_obs::metrics::global();
        CollectiveMetrics {
            calls: reg.counter(
                "exa_collectives_total",
                "Collective operations completed across all ranks.",
                &[],
            ),
            wait_ns: reg.counter(
                "exa_collective_wait_ns_total",
                "Nanoseconds ranks spent inside collectives (sync + exchange), summed over ranks.",
                &[],
            ),
        }
    })
}

/// Handle a rank thread uses to communicate.
#[derive(Clone)]
pub struct Rank {
    id: usize,
    ctx: Arc<Ctx>,
    /// This rank's trace handle (present under [`World::run_traced`]).
    /// `Tracer` is `!Send`, so a `Rank` carrying one is pinned to its
    /// thread — which is the intended discipline anyway.
    tracer: Option<Tracer>,
}

/// Factory for rank worlds.
pub struct World;

impl World {
    /// Run `f` on `n` rank threads; returns each rank's result in rank
    /// order. Panics in any rank propagate.
    pub fn run<F, T>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Rank) -> T + Sync,
        T: Send,
    {
        Self::run_traced(n, None, f)
    }

    /// Like [`World::run`], with per-rank tracing: each rank claims its
    /// buffer in `recorder` and installs itself as the thread's current
    /// tracer (so `exa_obs::region`/`mark` in deeper layers attribute to
    /// the right rank). Collectives emit events automatically. Pass the
    /// recorder to [`exa_obs::Recorder::finish`] after this returns to
    /// obtain the merged trace.
    pub fn run_traced<F, T>(n: usize, recorder: Option<&Arc<Recorder>>, f: F) -> Vec<T>
    where
        F: Fn(Rank) -> T + Sync,
        T: Send,
    {
        assert!(n >= 1, "need at least one rank");
        if let Some(rec) = recorder {
            assert!(
                rec.n_ranks() >= n,
                "recorder has {} rank buffers, world needs {n}",
                rec.n_ranks()
            );
        }
        let ctx = Arc::new(Ctx {
            size: n,
            state: Mutex::new(State {
                poisoned: false,
                pending_failure: false,
                failed: BTreeSet::new(),
                active: vec![true; n],
                n_active: n,
                gen: 0,
                arrived: 0,
                contributions: vec![None; n],
                op: None,
                category: None,
                result: None,
                result_gen: 0,
                remaining_readers: 0,
                aborted: BTreeSet::new(),
                rec_gen: 0,
                rec_arrived: 0,
            }),
            cv: Condvar::new(),
            stats: Mutex::new(CommStats::default()),
        });
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let ctx = Arc::clone(&ctx);
                    let recorder = recorder.map(Arc::clone);
                    // The Rank is constructed *inside* the spawned thread:
                    // its tracer must be claimed on the thread that emits
                    // the rank's events (Tracer is !Send).
                    scope.spawn(move || {
                        let tracer = recorder.as_ref().map(|r| r.tracer(id));
                        let _tls = tracer.clone().map(exa_obs::install_tracer);
                        f(Rank { id, ctx, tracer })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

impl Rank {
    /// This rank's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The initial world size.
    pub fn world_size(&self) -> usize {
        self.ctx.size
    }

    /// The currently active (non-failed) ranks, ascending.
    pub fn active_ranks(&self) -> Vec<usize> {
        let st = self.ctx.state.lock();
        st.active
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// Number of currently active ranks.
    pub fn active_count(&self) -> usize {
        self.ctx.state.lock().n_active
    }

    /// Snapshot of the accumulated communication statistics.
    pub fn stats(&self) -> CommStats {
        self.ctx.stats.lock().clone()
    }

    /// Reset the accumulated statistics (benchmark harness use).
    pub fn reset_stats(&self) {
        *self.ctx.stats.lock() = CommStats::default();
    }

    /// Account traffic that is modeled but not physically moved through the
    /// in-process communicator (e.g. the initial data distribution, which
    /// real ExaML performs via MPI I/O but a shared-memory world reads
    /// directly). Recorded once, exactly like a completed collective — but
    /// **not** traced: the event trace holds only observed operations, so
    /// rank timelines stay identical when a single rank accounts modeled
    /// traffic on behalf of the world.
    pub fn account(&self, category: CommCategory, kind: OpKind, bytes: u64) {
        self.ctx.stats.lock().record(category, kind, bytes);
    }

    /// This rank's trace handle, when running under [`World::run_traced`].
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    fn run_collective(
        &self,
        op: OpSig,
        category: CommCategory,
        payload: Payload,
    ) -> Result<Payload, CommError> {
        // Span covering synchronization + payload exchange. Declared before
        // the guard so it closes after the lock is released.
        let _wait = self
            .tracer
            .as_ref()
            .map(|t| t.region(RegionKind::CollectiveWait));
        // Live-metrics twin of the trace span: pay for the clock read only
        // when the registry is on.
        let metrics_t0 = exa_obs::metrics::enabled().then(std::time::Instant::now);
        let ctx = &*self.ctx;
        let mut st = ctx.state.lock();
        debug_assert!(
            st.active[self.id],
            "failed rank {} called a collective",
            self.id
        );
        // Entry: refuse on pending failure, drain any previous result.
        loop {
            if st.poisoned {
                panic!("communicator poisoned by another rank's panic");
            }
            if st.pending_failure {
                return Err(CommError::RanksFailed(st.failed.clone()));
            }
            if st.result.is_none() {
                break;
            }
            ctx.cv.wait(&mut st);
        }
        let my_gen = st.gen;
        match &st.op {
            None => st.op = Some(op),
            Some(existing) => {
                if *existing != op {
                    let existing = *existing;
                    st.poisoned = true;
                    ctx.cv.notify_all();
                    drop(st);
                    panic!(
                        "collective mismatch: rank {} called {:?} while {:?} is in flight",
                        self.id, op, existing
                    );
                }
            }
        }
        let from_root = self.id == op.root;
        match st.category {
            None => st.category = Some((from_root, category)),
            Some((true, _)) => {}
            Some((false, _)) if from_root => st.category = Some((true, category)),
            Some((false, _)) => {}
        }
        st.contributions[self.id] = Some(payload);
        st.arrived += 1;

        if st.arrived == st.n_active {
            // Last arrival: combine deterministically in rank order and
            // record the operation once. A combine panic (malformed
            // payloads) poisons the world so waiters unwind too.
            let result =
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| combine(&st, op))) {
                    Ok(r) => r,
                    Err(e) => {
                        st.poisoned = true;
                        ctx.cv.notify_all();
                        drop(st);
                        std::panic::resume_unwind(e);
                    }
                };
            let (_, cat) = st.category.expect("category recorded by a depositor");
            ctx.stats.lock().record(cat, op.kind, wire_bytes(&result));
            st.result = Some(result);
            st.result_gen = my_gen;
            st.remaining_readers = st.n_active;
            ctx.cv.notify_all();
        } else {
            loop {
                if st.poisoned {
                    panic!("communicator poisoned by another rank's panic");
                }
                if st.aborted.contains(&my_gen) {
                    return Err(CommError::RanksFailed(st.failed.clone()));
                }
                if st.result.is_some() && st.result_gen == my_gen {
                    break;
                }
                ctx.cv.wait(&mut st);
            }
        }

        let out = st.result.clone().expect("result present");
        // The authoritative (root-preferred) category, read before the last
        // reader resets it — so every rank traces the identical event.
        let traced_category = st.category.expect("category present").1;
        st.remaining_readers -= 1;
        if st.remaining_readers == 0 {
            st.result = None;
            st.gen += 1;
            st.arrived = 0;
            st.op = None;
            st.category = None;
            for c in st.contributions.iter_mut() {
                *c = None;
            }
            ctx.cv.notify_all();
        }
        drop(st);
        if let Some(t) = &self.tracer {
            t.collective(op.kind, traced_category, wire_bytes(&out));
        }
        if let Some(t0) = metrics_t0 {
            collective_metrics().observe(t0.elapsed().as_nanos() as u64);
        }
        Ok(out)
    }

    /// Start a [`Collective`] under `category`. New operation variants
    /// (binned exchange, mode overrides, non-zero roots) hang off the
    /// builder instead of multiplying `Rank` method signatures.
    pub fn collective(&self, category: CommCategory) -> Collective<'_> {
        Collective {
            rank: self,
            category,
            root: 0,
            mode: ReduceKind::Fast,
        }
    }

    /// Deterministic sum-allreduce over `data` (in place). All active ranks
    /// receive the bit-identical result.
    pub fn allreduce_sum(&self, data: &mut [f64], category: CommCategory) -> Result<(), CommError> {
        self.collective(category).allreduce_sum(data)
    }

    /// Sum-reduce toward `root`; non-root buffers are left untouched.
    pub fn reduce_sum(
        &self,
        root: usize,
        data: &mut [f64],
        category: CommCategory,
    ) -> Result<(), CommError> {
        self.collective(category).root(root).reduce_sum(data)
    }

    /// Broadcast a byte blob from `root`. On non-root ranks the buffer is
    /// replaced with the root's bytes.
    pub fn broadcast_bytes(
        &self,
        root: usize,
        data: &mut Vec<u8>,
        category: CommCategory,
    ) -> Result<(), CommError> {
        let op = OpSig {
            kind: OpKind::Broadcast,
            root,
        };
        let payload = if self.id == root {
            Payload::Bytes(std::mem::take(data))
        } else {
            Payload::Unit
        };
        let out = self.run_collective(op, category, payload)?;
        let Payload::Bytes(v) = out else {
            unreachable!("broadcast returns bytes")
        };
        *data = v;
        Ok(())
    }

    /// Broadcast an f64 array from `root` (model-parameter arrays).
    pub fn broadcast_f64(
        &self,
        root: usize,
        data: &mut Vec<f64>,
        category: CommCategory,
    ) -> Result<(), CommError> {
        let op = OpSig {
            kind: OpKind::Broadcast,
            root,
        };
        let payload = if self.id == root {
            Payload::F64(std::mem::take(data))
        } else {
            Payload::Unit
        };
        let out = self.run_collective(op, category, payload)?;
        let Payload::F64(v) = out else {
            unreachable!("broadcast_f64 returns f64")
        };
        *data = v;
        Ok(())
    }

    /// Gather every rank's byte blob to `root` (rank-indexed; failed ranks
    /// yield empty slots). Non-root ranks receive an empty vector.
    pub fn gather_bytes(
        &self,
        root: usize,
        data: Vec<u8>,
        category: CommCategory,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let op = OpSig {
            kind: OpKind::Gather,
            root,
        };
        let out = self.run_collective(op, category, Payload::Bytes(data))?;
        let Payload::PerRank(blobs) = out else {
            unreachable!("gather returns per-rank blobs")
        };
        Ok(if self.id == root { blobs } else { Vec::new() })
    }

    /// Gather every rank's byte blob and hand the full rank-indexed set to
    /// **every** rank (failed ranks yield empty slots). This is the
    /// sentinel's exchange primitive: each rank must see all fingerprints
    /// so every rank reaches the same verdict and the abort is symmetric.
    pub fn allgather_bytes(
        &self,
        data: Vec<u8>,
        category: CommCategory,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let op = OpSig {
            kind: OpKind::Allgather,
            root: 0,
        };
        let out = self.run_collective(op, category, Payload::Bytes(data))?;
        let Payload::PerRank(blobs) = out else {
            unreachable!("allgather returns per-rank blobs")
        };
        Ok(blobs)
    }

    /// Scatter rank-indexed byte blobs from `root`; each rank receives its
    /// own slot (the in-process analogue of the initial data distribution
    /// ExaML performs with MPI I/O).
    pub fn scatter_bytes(
        &self,
        root: usize,
        data: Vec<Vec<u8>>,
        category: CommCategory,
    ) -> Result<Vec<u8>, CommError> {
        let op = OpSig {
            kind: OpKind::Scatter,
            root,
        };
        let payload = if self.id == root {
            assert_eq!(
                data.len(),
                self.ctx.size,
                "scatter needs one blob per world slot"
            );
            Payload::PerRank(data)
        } else {
            Payload::Unit
        };
        let out = self.run_collective(op, category, payload)?;
        let Payload::PerRank(blobs) = out else {
            unreachable!("scatter returns per-rank blobs")
        };
        Ok(blobs[self.id].clone())
    }

    /// Synchronization barrier (a zero-byte parallel region).
    pub fn barrier(&self, category: CommCategory) -> Result<(), CommError> {
        let op = OpSig {
            kind: OpKind::Barrier,
            root: 0,
        };
        self.run_collective(op, category, Payload::Unit)?;
        Ok(())
    }

    /// Declare this rank failed. May only be called at a quiescent point
    /// (not between depositing into a collective and reading its result).
    /// The rank must not communicate afterwards.
    pub fn fail(&self) {
        let ctx = &*self.ctx;
        let mut st = ctx.state.lock();
        assert!(st.active[self.id], "rank {} failed twice", self.id);
        st.failed.insert(self.id);
        st.active[self.id] = false;
        st.n_active -= 1;
        st.pending_failure = true;
        if st.result.is_none() && st.arrived > 0 {
            // Abort the in-flight collecting phase: depositors will observe
            // the aborted generation and unwind.
            let gen = st.gen;
            st.aborted.insert(gen);
            st.gen += 1;
            st.arrived = 0;
            st.op = None;
            st.category = None;
            for c in st.contributions.iter_mut() {
                *c = None;
            }
        }
        // A failure can shrink the world while every survivor is already
        // parked in the recovery barrier (simultaneous deaths where the
        // survivors acknowledged the first failure before the second rank
        // declared itself). The barrier completes on `rec_arrived ==
        // n_active`, so re-check it here — no survivor will arrive again.
        if st.rec_arrived > 0 && st.rec_arrived == st.n_active {
            st.pending_failure = false;
            st.aborted.clear();
            st.rec_gen += 1;
            st.rec_arrived = 0;
        }
        ctx.cv.notify_all();
    }

    /// Acknowledge a failure: blocks until every surviving rank has done the
    /// same, then clears the failure flag. Returns the set of failed ranks
    /// (cumulative) and the surviving rank list.
    pub fn recover(&self) -> (BTreeSet<usize>, Vec<usize>) {
        let ctx = &*self.ctx;
        let mut st = ctx.state.lock();
        let my_rec = st.rec_gen;
        st.rec_arrived += 1;
        if st.rec_arrived == st.n_active {
            st.pending_failure = false;
            st.aborted.clear();
            st.rec_gen += 1;
            st.rec_arrived = 0;
            ctx.cv.notify_all();
        } else {
            while st.rec_gen == my_rec {
                if st.poisoned {
                    panic!("communicator poisoned by another rank's panic");
                }
                ctx.cv.wait(&mut st);
            }
        }
        let failed = st.failed.clone();
        let survivors = st
            .active
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect();
        (failed, survivors)
    }
}

/// Builder for one collective operation: category, root, and reduce-mode
/// override are set up front; the terminal method names the op. Obtained
/// via [`Rank::collective`]; the classic [`Rank::allreduce_sum`] /
/// [`Rank::reduce_sum`] methods are thin wrappers over this.
#[must_use = "a Collective does nothing until a terminal method runs it"]
pub struct Collective<'a> {
    rank: &'a Rank,
    category: CommCategory,
    root: usize,
    mode: ReduceKind,
}

impl Collective<'_> {
    /// Set the root rank (reductions toward a root; default 0).
    pub fn root(mut self, root: usize) -> Self {
        self.root = root;
        self
    }

    /// Override the reduction scheme for this one operation. Under
    /// [`ReduceKind::Reproducible`] each f64 element is deposited into its
    /// own superaccumulator before the exchange, so the combination is
    /// exact regardless of which ranks contribute what.
    pub fn reduce(mut self, mode: ReduceKind) -> Self {
        self.mode = mode;
        self
    }

    fn sum_payload(&self, data: &[f64]) -> Payload {
        match self.mode {
            ReduceKind::Fast => Payload::F64(data.to_vec()),
            ReduceKind::Reproducible => Payload::Bins(
                data.iter()
                    .map(|&x| {
                        let mut b = BinnedSum::new();
                        b.add(x);
                        b
                    })
                    .collect(),
            ),
        }
    }

    /// Sum-allreduce `data` in place; every active rank receives the
    /// bit-identical result.
    pub fn allreduce_sum(self, data: &mut [f64]) -> Result<(), CommError> {
        let op = OpSig {
            kind: OpKind::Allreduce,
            root: 0,
        };
        let payload = self.sum_payload(data);
        let out = self.rank.run_collective(op, self.category, payload)?;
        let Payload::F64(v) = out else {
            unreachable!("allreduce returns f64")
        };
        data.copy_from_slice(&v);
        Ok(())
    }

    /// Sum-reduce toward the configured root; non-root buffers are left
    /// untouched.
    pub fn reduce_sum(self, data: &mut [f64]) -> Result<(), CommError> {
        let op = OpSig {
            kind: OpKind::Reduce,
            root: self.root,
        };
        let payload = self.sum_payload(data);
        let out = self.rank.run_collective(op, self.category, payload)?;
        if self.rank.id == self.root {
            let Payload::F64(v) = out else {
                unreachable!("reduce returns f64")
            };
            data.copy_from_slice(&v);
        }
        Ok(())
    }

    /// Reproducible-mode allreduce over locally accumulated bins: the
    /// communicator merges the superaccumulators exactly and renders the
    /// result to f64 once, so the bits every rank receives depend only on
    /// the global addend multiset — not on the rank count or the split.
    pub fn allreduce_binned(self, bins: Vec<BinnedSum>) -> Result<Vec<f64>, CommError> {
        let op = OpSig {
            kind: OpKind::Allreduce,
            root: 0,
        };
        let out = self
            .rank
            .run_collective(op, self.category, Payload::Bins(bins))?;
        let Payload::F64(v) = out else {
            unreachable!("allreduce returns f64")
        };
        Ok(v)
    }

    /// Reproducible-mode reduce toward the configured root. Only the root
    /// receives the rendered sums; other ranks get an empty vector.
    pub fn reduce_binned(self, bins: Vec<BinnedSum>) -> Result<Vec<f64>, CommError> {
        let op = OpSig {
            kind: OpKind::Reduce,
            root: self.root,
        };
        let out = self
            .rank
            .run_collective(op, self.category, Payload::Bins(bins))?;
        if self.rank.id != self.root {
            return Ok(Vec::new());
        }
        let Payload::F64(v) = out else {
            unreachable!("reduce returns f64")
        };
        Ok(v)
    }

    /// Synchronization barrier under this builder's category (resize and
    /// recovery points).
    pub fn barrier(self) -> Result<(), CommError> {
        let op = OpSig {
            kind: OpKind::Barrier,
            root: 0,
        };
        self.rank.run_collective(op, self.category, Payload::Unit)?;
        Ok(())
    }
}

/// Deterministic combination of the deposited payloads.
fn combine(st: &State, op: OpSig) -> Payload {
    match op.kind {
        OpKind::Allreduce | OpKind::Reduce => {
            // Reproducible contributions force the binned path: bins merge
            // exactly (order- and grouping-invariant) and stray fast-mode
            // f64 contributions — possible only in a mixed-mode world the
            // sentinel is about to abort — are deposited into the bins so
            // the collective still completes deterministically. The result
            // is rendered to f64 exactly once.
            let any_bins = st
                .contributions
                .iter()
                .enumerate()
                .any(|(r, c)| st.active[r] && matches!(c, Some(Payload::Bins(_))));
            if any_bins {
                let mut acc: Option<Vec<BinnedSum>> = None;
                for (r, c) in st.contributions.iter().enumerate() {
                    if !st.active[r] {
                        continue;
                    }
                    match c {
                        Some(Payload::Bins(bins)) => {
                            let a = acc.get_or_insert_with(|| vec![BinnedSum::new(); bins.len()]);
                            assert_eq!(
                                a.len(),
                                bins.len(),
                                "reduction length mismatch at rank {r}"
                            );
                            for (x, b) in a.iter_mut().zip(bins) {
                                x.merge(b);
                            }
                        }
                        Some(Payload::F64(v)) => {
                            let a = acc.get_or_insert_with(|| vec![BinnedSum::new(); v.len()]);
                            assert_eq!(a.len(), v.len(), "reduction length mismatch at rank {r}");
                            for (x, &y) in a.iter_mut().zip(v) {
                                x.add(y);
                            }
                        }
                        _ => panic!("rank {r} contributed a non-reduction payload"),
                    }
                }
                let acc = acc.expect("no contributions");
                return Payload::F64(acc.iter().map(BinnedSum::render).collect());
            }
            let mut acc: Option<Vec<f64>> = None;
            for (r, c) in st.contributions.iter().enumerate() {
                if !st.active[r] {
                    continue;
                }
                let Some(Payload::F64(v)) = c else {
                    panic!("rank {r} contributed a non-f64 payload to a reduction")
                };
                match &mut acc {
                    None => acc = Some(v.clone()),
                    Some(a) => {
                        assert_eq!(a.len(), v.len(), "reduction length mismatch at rank {r}");
                        for (x, y) in a.iter_mut().zip(v) {
                            *x += y;
                        }
                    }
                }
            }
            Payload::F64(acc.expect("no contributions"))
        }
        OpKind::Broadcast => {
            let c = st.contributions[op.root]
                .clone()
                .expect("root did not contribute");
            assert!(
                !matches!(c, Payload::Unit),
                "broadcast root {} contributed no data",
                op.root
            );
            c
        }
        OpKind::Gather | OpKind::Allgather => {
            // Collect every active rank's blob in rank order; inactive
            // ranks contribute empty slots so indices stay stable. For
            // Gather only the root reads the result; for Allgather every
            // rank does.
            let blobs: Vec<Vec<u8>> = st
                .contributions
                .iter()
                .map(|c| match c {
                    Some(Payload::Bytes(b)) => b.clone(),
                    _ => Vec::new(),
                })
                .collect();
            Payload::PerRank(blobs)
        }
        OpKind::Scatter => {
            let c = st.contributions[op.root]
                .clone()
                .expect("root did not contribute");
            let Payload::PerRank(blobs) = c else {
                panic!("scatter root {} must contribute per-rank blobs", op.root)
            };
            Payload::PerRank(blobs)
        }
        OpKind::Barrier => Payload::Unit,
    }
}

/// The paper's byte-counting convention: payload size, independent of the
/// number of ranks.
fn wire_bytes(result: &Payload) -> u64 {
    match result {
        Payload::F64(v) => 8 * v.len() as u64,
        // Reduction results are always rendered to F64 before accounting;
        // bins only appear as contributions. Counted at their logical f64
        // width so both reduce modes account identical traffic (the
        // paper's hardware-independent convention).
        Payload::Bins(v) => 8 * v.len() as u64,
        Payload::Bytes(b) => b.len() as u64,
        Payload::PerRank(blobs) => blobs.iter().map(|b| b.len() as u64).sum(),
        Payload::Unit => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        let results = World::run(4, |rank| {
            let mut data = vec![rank.id() as f64, 1.0];
            rank.allreduce_sum(&mut data, CommCategory::SiteLikelihoods)
                .unwrap();
            data
        });
        for r in &results {
            assert_eq!(r, &vec![6.0, 4.0]); // 0+1+2+3, 1×4
        }
    }

    #[test]
    fn allreduce_bitwise_identical_across_ranks() {
        // Sum of values that do NOT commute bit-identically under arbitrary
        // order; fixed-order combination must give every rank the same bits.
        let results = World::run(8, |rank| {
            let mut data = vec![
                0.1 * (rank.id() as f64 + 1.0).powi(3),
                1e-17 * rank.id() as f64,
            ];
            rank.allreduce_sum(&mut data, CommCategory::SiteLikelihoods)
                .unwrap();
            (data[0].to_bits(), data[1].to_bits())
        });
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn reduce_only_updates_root() {
        let results = World::run(3, |rank| {
            let mut data = vec![1.0 + rank.id() as f64];
            rank.reduce_sum(1, &mut data, CommCategory::BranchLength)
                .unwrap();
            data[0]
        });
        assert_eq!(results[0], 1.0);
        assert_eq!(results[1], 6.0);
        assert_eq!(results[2], 3.0);
    }

    #[test]
    fn broadcast_bytes_from_root() {
        let results = World::run(5, |rank| {
            let mut data = if rank.id() == 2 {
                vec![7u8, 8, 9]
            } else {
                Vec::new()
            };
            rank.broadcast_bytes(2, &mut data, CommCategory::TraversalDescriptor)
                .unwrap();
            data
        });
        for r in results {
            assert_eq!(r, vec![7, 8, 9]);
        }
    }

    #[test]
    fn broadcast_f64_from_root() {
        let results = World::run(3, |rank| {
            let mut data = if rank.id() == 0 {
                vec![1.5, 2.5]
            } else {
                Vec::new()
            };
            rank.broadcast_f64(0, &mut data, CommCategory::ModelParams)
                .unwrap();
            data
        });
        for r in results {
            assert_eq!(r, vec![1.5, 2.5]);
        }
    }

    #[test]
    fn sequence_of_collectives() {
        let results = World::run(4, |rank| {
            let mut acc = 0.0;
            for round in 0..50 {
                let mut d = vec![(rank.id() * round) as f64];
                rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                    .unwrap();
                acc += d[0];
                rank.barrier(CommCategory::Control).unwrap();
            }
            acc
        });
        let expect: f64 = (0..50).map(|r| (6 * r) as f64).sum();
        for r in results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn stats_record_regions_and_bytes() {
        let results = World::run(2, |rank| {
            let mut d = vec![0.0; 3];
            rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                .unwrap();
            let mut b = if rank.id() == 0 {
                vec![0u8; 100]
            } else {
                Vec::new()
            };
            rank.broadcast_bytes(0, &mut b, CommCategory::TraversalDescriptor)
                .unwrap();
            rank.barrier(CommCategory::Control).unwrap();
            rank.stats()
        });
        let s = &results[0];
        // An allreduce of 3 doubles is the paper's canonical 24-byte example.
        assert_eq!(s.get(CommCategory::SiteLikelihoods).bytes, 24);
        assert_eq!(s.get(CommCategory::SiteLikelihoods).regions, 1);
        assert_eq!(s.get(CommCategory::TraversalDescriptor).bytes, 100);
        assert_eq!(s.total_regions(), 3);
        assert_eq!(s.total_bytes(), 124);
    }

    #[test]
    fn single_rank_world_works() {
        let results = World::run(1, |rank| {
            let mut d = vec![5.0];
            rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                .unwrap();
            d[0]
        });
        assert_eq!(results, vec![5.0]);
    }

    #[test]
    fn second_failure_completes_an_already_entered_recovery_barrier() {
        // Regression test for a recovery deadlock: rank 1 fails, both
        // survivors acknowledge and park inside `recover()` (the barrier
        // needs n_active = 3 arrivals), and only then does rank 2 declare
        // its own failure. Shrinking n_active to 2 must complete the
        // barrier — the two parked survivors will never arrive again.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let entering = AtomicUsize::new(0);
        let results = World::run(4, |rank| {
            match rank.id() {
                1 => {
                    rank.fail();
                    return vec![];
                }
                2 => {
                    // Wait until both survivors are at (or inside) the
                    // recovery barrier before failing.
                    while entering.load(Ordering::SeqCst) < 2 {
                        std::thread::yield_now();
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    rank.fail();
                    return vec![];
                }
                _ => {}
            }
            // Survivors: observe rank 1's failure via an aborted collective.
            let mut d = vec![1.0];
            match rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods) {
                Err(CommError::RanksFailed(set)) => assert!(set.contains(&1)),
                Ok(()) => panic!("collective must abort after failure"),
            }
            entering.fetch_add(1, Ordering::SeqCst);
            let (failed, survivors) = rank.recover();
            assert!(failed.contains(&1));
            // Depending on timing rank 2's death lands before or after the
            // barrier releases; either way the world must keep working with
            // the survivor set recover() reported.
            if failed.contains(&2) {
                assert_eq!(survivors, vec![0, 3]);
            }
            let mut d = vec![1.0];
            match rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods) {
                Ok(()) => {}
                Err(CommError::RanksFailed(set)) => {
                    // Rank 2 died after the first recovery: acknowledge and
                    // retry on the final two-rank world.
                    assert!(set.contains(&2));
                    let (_, survivors) = rank.recover();
                    assert_eq!(survivors, vec![0, 3]);
                    d = vec![1.0];
                    rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                        .unwrap();
                }
            }
            d
        });
        assert_eq!(results[0], vec![2.0]);
        assert_eq!(results[3], vec![2.0]);
    }

    #[test]
    fn failure_surfaces_to_survivors_and_recovery_shrinks_world() {
        let results = World::run(4, |rank| {
            // Round 1: everyone participates.
            let mut d = vec![1.0];
            rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                .unwrap();
            assert_eq!(d[0], 4.0);

            if rank.id() == 2 {
                rank.fail();
                return -1.0;
            }
            // Round 2: rank 2 never joins; survivors see the failure,
            // possibly immediately or after depositing.
            let mut d = vec![1.0];
            match rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods) {
                Err(CommError::RanksFailed(set)) => assert!(set.contains(&2)),
                Ok(()) => panic!("collective must abort after failure"),
            }
            let (failed, survivors) = rank.recover();
            assert_eq!(failed, BTreeSet::from([2]));
            assert_eq!(survivors, vec![0, 1, 3]);

            // Round 3: the shrunken world functions.
            let mut d = vec![1.0];
            rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                .unwrap();
            d[0]
        });
        assert_eq!(results[0], 3.0);
        assert_eq!(results[1], 3.0);
        assert_eq!(results[2], -1.0);
        assert_eq!(results[3], 3.0);
    }

    #[test]
    fn two_sequential_failures() {
        let results = World::run(4, |rank| {
            for round in 0..2u32 {
                let failer = round as usize; // rank 0 fails first, then 1
                if rank.id() == failer {
                    rank.fail();
                    return rank.id() as f64 - 100.0;
                }
                let mut d = vec![1.0];
                match rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods) {
                    Err(_) => {
                        rank.recover();
                    }
                    Ok(()) => panic!("expected abort in round {round}"),
                }
            }
            let mut d = vec![1.0];
            rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                .unwrap();
            d[0]
        });
        assert_eq!(results[2], 2.0);
        assert_eq!(results[3], 2.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_collectives_panic() {
        World::run(2, |rank| {
            if rank.id() == 0 {
                let mut d = vec![0.0];
                let _ = rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods);
            } else {
                let _ = rank.barrier(CommCategory::Control);
            }
        });
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = World::run(4, |rank| {
            let blob = vec![rank.id() as u8; rank.id() + 1];
            rank.gather_bytes(1, blob, CommCategory::Control).unwrap()
        });
        assert!(results[0].is_empty() && results[2].is_empty() && results[3].is_empty());
        let gathered = &results[1];
        assert_eq!(gathered.len(), 4);
        for (r, blob) in gathered.iter().enumerate() {
            assert_eq!(blob, &vec![r as u8; r + 1]);
        }
    }

    #[test]
    fn allgather_delivers_all_blobs_to_every_rank() {
        let results = World::run(4, |rank| {
            let blob = vec![rank.id() as u8; rank.id() + 1];
            rank.allgather_bytes(blob, CommCategory::Control).unwrap()
        });
        for gathered in &results {
            assert_eq!(gathered.len(), 4);
            for (r, blob) in gathered.iter().enumerate() {
                assert_eq!(blob, &vec![r as u8; r + 1]);
            }
        }
    }

    #[test]
    fn scatter_delivers_per_rank_slots() {
        let results = World::run(3, |rank| {
            let data = if rank.id() == 0 {
                vec![vec![10u8], vec![20, 20], vec![30, 30, 30]]
            } else {
                Vec::new()
            };
            rank.scatter_bytes(0, data, CommCategory::Control).unwrap()
        });
        assert_eq!(results[0], vec![10]);
        assert_eq!(results[1], vec![20, 20]);
        assert_eq!(results[2], vec![30, 30, 30]);
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let results = World::run(3, |rank| {
            let mine = vec![rank.id() as u8 + 100];
            let gathered = rank
                .gather_bytes(0, mine.clone(), CommCategory::Control)
                .unwrap();
            let data = if rank.id() == 0 { gathered } else { Vec::new() };
            let back = rank.scatter_bytes(0, data, CommCategory::Control).unwrap();
            (mine, back)
        });
        for (mine, back) in results {
            assert_eq!(mine, back);
        }
    }

    #[test]
    fn traced_world_records_identical_collective_sequences() {
        let rec = Recorder::new(3);
        let stats = World::run_traced(3, Some(&rec), |rank| {
            let mut d = vec![1.0; 2];
            rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                .unwrap();
            let mut b = if rank.id() == 0 {
                vec![1u8; 10]
            } else {
                Vec::new()
            };
            rank.broadcast_bytes(0, &mut b, CommCategory::TraversalDescriptor)
                .unwrap();
            rank.barrier(CommCategory::Control).unwrap();
            rank.stats()
        });
        let trace = Recorder::finish(rec);
        let s0 = trace.signatures(0);
        assert_eq!(s0, trace.signatures(1));
        assert_eq!(s0, trace.signatures(2));
        // Per collective: begin:collective_wait, coll:…, end:collective_wait.
        assert_eq!(s0.len(), 9);
        assert!(
            s0.contains(&"coll:allreduce:SiteLikelihoods:16".to_string()),
            "{s0:?}"
        );
        assert!(s0.contains(&"coll:broadcast:TraversalDescriptor:10".to_string()));

        // Aggregated comm traffic must agree with the communicator's own
        // accounting (both count each collective once).
        let m = trace.aggregate();
        assert_eq!(m.comm, stats[0]);
        assert_eq!(m.collective_events, 9); // 3 collectives × 3 ranks
        assert_eq!(m.region(exa_obs::RegionKind::CollectiveWait).count, 9);
    }

    #[test]
    fn traced_world_installs_thread_local_tracer() {
        let rec = Recorder::new(2);
        World::run_traced(2, Some(&rec), |rank| {
            exa_obs::mark(|| format!("hello:{}", rank.id()));
            rank.barrier(CommCategory::Control).unwrap();
        });
        let trace = Recorder::finish(rec);
        assert_eq!(trace.signatures(0)[0], "mark:hello:0");
        assert_eq!(trace.signatures(1)[0], "mark:hello:1");
    }

    #[test]
    fn untraced_world_has_no_tracer() {
        World::run(2, |rank| {
            assert!(rank.tracer().is_none());
            assert!(exa_obs::with_tracer(|_| ()).is_none());
            rank.barrier(CommCategory::Control).unwrap();
        });
    }

    #[test]
    fn binned_allreduce_is_rank_count_invariant() {
        // The same addend multiset split across 1, 2, 4, and 8 ranks must
        // render the identical bits — the property the fast path lacks.
        let terms: Vec<f64> = (0..64)
            .map(|i| 0.1 * ((i as f64) + 1.0).powi(3) * if i % 3 == 0 { -1.0 } else { 1e-9 })
            .collect();
        let mut renders = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let results = World::run(n, |rank| {
                let mut b = BinnedSum::new();
                // Strided split: every width groups the terms differently.
                for (i, &t) in terms.iter().enumerate() {
                    if i % n == rank.id() {
                        b.add(t);
                    }
                }
                rank.collective(CommCategory::SiteLikelihoods)
                    .allreduce_binned(vec![b])
                    .unwrap()[0]
                    .to_bits()
            });
            for w in results.windows(2) {
                assert_eq!(w[0], w[1]);
            }
            renders.push(results[0]);
        }
        for w in renders.windows(2) {
            assert_eq!(w[0], w[1], "render differs across rank counts");
        }
    }

    #[test]
    fn mixed_mode_reduction_completes_deterministically() {
        // One rank still in fast mode (a mis-negotiated world the sentinel
        // will abort) must not deadlock or poison the collective: its f64
        // contribution is deposited into the bins.
        let results = World::run(3, |rank| {
            if rank.id() == 1 {
                let mut d = vec![2.5];
                rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                    .unwrap();
                d[0]
            } else {
                let mut b = BinnedSum::new();
                b.add(1.0);
                rank.collective(CommCategory::SiteLikelihoods)
                    .allreduce_binned(vec![b])
                    .unwrap()[0]
            }
        });
        for r in results {
            assert_eq!(r, 4.5);
        }
    }

    #[test]
    fn builder_reduce_binned_targets_root() {
        let results = World::run(3, |rank| {
            let mut b = BinnedSum::new();
            b.add(rank.id() as f64 + 1.0);
            rank.collective(CommCategory::BranchLength)
                .root(2)
                .reduce_binned(vec![b])
                .unwrap()
        });
        assert!(results[0].is_empty() && results[1].is_empty());
        assert_eq!(results[2], vec![6.0]);
    }

    #[test]
    fn builder_mode_override_matches_fast_for_exact_sums() {
        let results = World::run(4, |rank| {
            let mut fast = vec![rank.id() as f64, 1.0];
            rank.allreduce_sum(&mut fast, CommCategory::SiteLikelihoods)
                .unwrap();
            let mut repro = vec![rank.id() as f64, 1.0];
            rank.collective(CommCategory::SiteLikelihoods)
                .reduce(ReduceKind::Reproducible)
                .allreduce_sum(&mut repro)
                .unwrap();
            (fast, repro)
        });
        for (fast, repro) in results {
            assert_eq!(fast, vec![6.0, 4.0]);
            assert_eq!(repro, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn heavy_concurrency_smoke() {
        // Many ranks, many rounds — exercises the generation machinery.
        let n = 16;
        let results = World::run(n, |rank| {
            let mut total = 0.0;
            for _ in 0..200 {
                let mut d = vec![1.0];
                rank.allreduce_sum(&mut d, CommCategory::SiteLikelihoods)
                    .unwrap();
                total += d[0];
            }
            total
        });
        for r in results {
            assert_eq!(r, 200.0 * n as f64);
        }
    }
}
