//! Reproducible (rank-count-invariant) summation — the negotiated
//! `ReduceMode` behind [`crate::Rank::allreduce_sum`].
//!
//! The paper's §III-B requirement is that every rank sees *bit-identical*
//! reduced likelihoods. The fast path guarantees this only because the
//! communicator sums contributions in fixed rank order at a fixed rank
//! count: re-running the same alignment on a different number of ranks
//! regroups the per-pattern terms and shifts the result by a few ULPs,
//! which silently changes the search trajectory. Following Stelz, Hübner
//! & Stamatakis ("Bit-Reproducible Phylogenetic Tree Inference under
//! Varying Core-Counts via Reproducible Parallel Reduction Operators"),
//! [`BinnedSum`] removes the order dependence entirely: each addend is
//! decomposed into fixed-position integer bins (a superaccumulator), bins
//! add exactly in any order or grouping, and a single deterministic render
//! turns the merged bins back into an `f64`. The rendered sum depends only
//! on the *multiset* of addends — not on how they were split across ranks.
//!
//! Representation: the full magnitude range of finite `f64` values
//! (2^-1074 … 2^1023) is covered by [`N_LIMBS`] signed 64-bit limbs in a
//! 32-bit radix. An addend's 53-bit significand lands in at most three
//! adjacent limbs; each limb keeps ~31 bits of carry headroom, so ~2^31
//! deposits (or limb-wise merges) are exact before any overflow could
//! occur — far beyond any realistic pattern count × rank count. Non-finite
//! addends are tracked as sticky flags and rendered with IEEE semantics
//! (`+inf` + `-inf` = NaN).

use serde::{Deserialize, Serialize};

/// Number of 32-bit-radix limbs covering exponents 2^-1074 … 2^1023 for a
/// 53-bit significand (64 value limbs + headroom for deposit spill and
/// render carries).
pub const N_LIMBS: usize = 68;

const RADIX_BITS: u32 = 32;
const RADIX: i64 = 1 << RADIX_BITS;
const RADIX_MASK: u128 = (RADIX as u128) - 1;
/// Exponent of the least significant limb bit (subnormal ULP).
const E_MIN: i32 = -1074;

/// Error-free extraction fast path (`add_slice`): first split constant,
/// 1.5·2^39 — `fl(x + C1)` has ulp 2^-13 for every |x| < 2^20, so
/// `(x + C1) - C1` is x rounded to a multiple of 2^-13 with an exactly
/// representable residual.
const EXTRACT_C1: f64 = 1.5 * (1u64 << 39) as f64;
/// Second split constant, 1.5·2^-5 — `fl(r1 + C2)` has ulp 2^-57 for
/// every |r1| ≤ 2^-14.
const EXTRACT_C2: f64 = 1.5 / 32.0;
/// Fast-path magnitude range: |x| ∈ [2^-20, 2^20) keeps ulp(x) ≥ 2^-72,
/// so the level-3 residual lane stays an exact multiple of 2^-72.
const EXTRACT_LO: f64 = 1.0 / (1u64 << 20) as f64;
const EXTRACT_HI: f64 = (1u64 << 20) as f64;
/// Flush cadence: ≤ 64 addends per lane keeps every level comfortably
/// inside its 53-bit exact-capacity window (2^26 of 2^40, 2^-8 of 2^-4,
/// 2^-52 of 2^-19).
const EXTRACT_BLOCK: usize = 256;

/// An order- and grouping-invariant f64 accumulator (superaccumulator).
///
/// `add` the local terms, `merge` accumulators from other ranks (exact,
/// commutative, associative), then `render` — every rank holding the same
/// addend multiset renders the identical bit pattern.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinnedSum {
    limbs: [i64; N_LIMBS],
    nan: bool,
    pos_inf: bool,
    neg_inf: bool,
}

impl Default for BinnedSum {
    fn default() -> Self {
        Self::new()
    }
}

impl BinnedSum {
    /// The zero accumulator.
    pub fn new() -> Self {
        BinnedSum {
            limbs: [0; N_LIMBS],
            nan: false,
            pos_inf: false,
            neg_inf: false,
        }
    }

    /// Deposit one addend (exact for finite values; non-finite values set
    /// sticky flags).
    #[inline]
    pub fn add(&mut self, x: f64) {
        let bits = x.to_bits();
        let be = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        if be == 0x7ff {
            if frac != 0 {
                self.nan = true;
            } else if bits >> 63 == 0 {
                self.pos_inf = true;
            } else {
                self.neg_inf = true;
            }
            return;
        }
        let mant = if be == 0 { frac } else { frac | (1u64 << 52) };
        if mant == 0 {
            return; // ±0.0 contributes nothing
        }
        // x = ±mant · 2^e with e = exponent of the significand's LSB
        // (subnormals share E_MIN; the +1 folds both cases branch-free).
        let e = be + i32::from(be == 0) - 1075;
        let pos = (e - E_MIN) as u32; // bit offset of mant's LSB in the accumulator
        let limb = (pos / RADIX_BITS) as usize;
        let wide = (mant as u128) << (pos % RADIX_BITS);
        // Arithmetic-shift sign mask: `(p ^ s) - s` negates each piece when
        // the addend is negative. Piecewise negation is total negation here
        // because the limbs are independent signed values.
        let s = (bits as i64) >> 63;
        let dst = &mut self.limbs[limb..limb + 3];
        dst[0] += ((wide & RADIX_MASK) as i64 ^ s) - s;
        dst[1] += (((wide >> RADIX_BITS) & RADIX_MASK) as i64 ^ s) - s;
        dst[2] += (((wide >> (2 * RADIX_BITS)) & RADIX_MASK) as i64 ^ s) - s;
    }

    /// Deposit a slice of addends.
    ///
    /// Semantically identical to `add` in a loop — the represented integer,
    /// and therefore the render, cannot differ — but runs at the speed of a
    /// plain f64 sum. Mid-magnitude addends (2^-20 ≤ |x| < 2^20, where the
    /// per-pattern log-likelihood, derivative and rate terms live) take an
    /// error-free extraction fast path in the ReproBLAS / Zhu–Hayes style:
    /// two Fast2Sum rounds split x *exactly* into `s1 + s2 + r2` at fixed
    /// granularities (`s1` a multiple of 2^-13, `s2` of 2^-57, `r2` of
    /// ulp(x) ≥ 2^-72), each level accumulates into plain f64 lanes — exact
    /// because a lane sums ≤ 64 multiples of its granularity well inside 53
    /// bits — and the lane totals are deposited through [`BinnedSum::add`]
    /// once per 256-element block. The split constants keep every
    /// intermediate in a single binade, so no step rounds; out-of-range,
    /// zero and non-finite addends fall back to the element-wise deposit.
    ///
    /// On x86-64 with AVX2 the same extraction runs four lanes wide in
    /// hardware (runtime-detected, like the phylo SIMD backend); the
    /// portable body below is the fallback and the reference semantics.
    #[inline]
    pub fn add_slice(&mut self, xs: &[f64]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified.
            unsafe { self.add_slice_avx2(xs) };
            return;
        }
        self.add_slice_portable(xs);
    }

    #[inline]
    fn add_slice_portable(&mut self, xs: &[f64]) {
        for block in xs.chunks(EXTRACT_BLOCK) {
            let mut a1 = [0.0f64; 4];
            let mut a2 = [0.0f64; 4];
            let mut a3 = [0.0f64; 4];
            let mut quads = block.chunks_exact(4);
            for quad in &mut quads {
                let q: [f64; 4] = quad.try_into().unwrap();
                let mut ok = true;
                for &x in &q {
                    let ax = x.abs();
                    ok &= (EXTRACT_LO..EXTRACT_HI).contains(&ax);
                }
                if ok {
                    // Straight-line four-lane body: auto-vectorizes, and
                    // the three accumulator chains per lane keep the FP
                    // latency off the critical path.
                    for (k, &x) in q.iter().enumerate() {
                        let s1 = (x + EXTRACT_C1) - EXTRACT_C1;
                        let r1 = x - s1;
                        let s2 = (r1 + EXTRACT_C2) - EXTRACT_C2;
                        let r2 = r1 - s2;
                        a1[k] += s1;
                        a2[k] += s2;
                        a3[k] += r2;
                    }
                } else {
                    for &x in &q {
                        self.add(x);
                    }
                }
            }
            for &x in quads.remainder() {
                self.add(x);
            }
            for k in 0..4 {
                self.add(a1[k]);
                self.add(a2[k]);
                self.add(a3[k]);
            }
        }
    }

    /// The hardware extraction: identical split arithmetic to
    /// [`BinnedSum::add_slice_portable`], four lanes per vector. IEEE adds
    /// and subs are lane-wise identical to scalar, so the lane totals — and
    /// therefore the deposits — match the portable path bit for bit.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn add_slice_avx2(&mut self, xs: &[f64]) {
        use std::arch::x86_64::*;
        unsafe {
            let c1 = _mm256_set1_pd(EXTRACT_C1);
            let c2 = _mm256_set1_pd(EXTRACT_C2);
            let lo = _mm256_set1_pd(EXTRACT_LO);
            let hi = _mm256_set1_pd(EXTRACT_HI);
            let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
            for block in xs.chunks(EXTRACT_BLOCK) {
                let mut a1 = _mm256_setzero_pd();
                let mut a2 = _mm256_setzero_pd();
                let mut a3 = _mm256_setzero_pd();
                let mut quads = block.chunks_exact(4);
                for quad in &mut quads {
                    let v = _mm256_loadu_pd(quad.as_ptr());
                    let ax = _mm256_and_pd(v, abs_mask);
                    let in_range = _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_GE_OQ>(ax, lo),
                        _mm256_cmp_pd::<_CMP_LT_OQ>(ax, hi),
                    );
                    if _mm256_movemask_pd(in_range) == 0b1111 {
                        let s1 = _mm256_sub_pd(_mm256_add_pd(v, c1), c1);
                        let r1 = _mm256_sub_pd(v, s1);
                        let s2 = _mm256_sub_pd(_mm256_add_pd(r1, c2), c2);
                        let r2 = _mm256_sub_pd(r1, s2);
                        a1 = _mm256_add_pd(a1, s1);
                        a2 = _mm256_add_pd(a2, s2);
                        a3 = _mm256_add_pd(a3, r2);
                    } else {
                        for &x in quad {
                            self.add(x);
                        }
                    }
                }
                for &x in quads.remainder() {
                    self.add(x);
                }
                let mut lanes = [0.0f64; 4];
                for acc in [a1, a2, a3] {
                    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
                    for &l in &lanes {
                        self.add(l);
                    }
                }
            }
        }
    }

    /// Exact limb-wise merge of another accumulator (commutative and
    /// associative — the reduction operator the communicator applies).
    pub fn merge(&mut self, other: &BinnedSum) {
        for (a, b) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            *a += b;
        }
        self.nan |= other.nan;
        self.pos_inf |= other.pos_inf;
        self.neg_inf |= other.neg_inf;
    }

    /// Deterministic render to `f64`: a pure function of the accumulated
    /// bins, identical on every rank holding the same merged state.
    pub fn render(&self) -> f64 {
        if self.nan || (self.pos_inf && self.neg_inf) {
            return f64::NAN;
        }
        if self.pos_inf {
            return f64::INFINITY;
        }
        if self.neg_inf {
            return f64::NEG_INFINITY;
        }
        // Carry-propagate into canonical form: limbs 0..N-1 in [0, RADIX),
        // sign folded into the top limb.
        let mut limbs = self.limbs;
        for i in 0..N_LIMBS - 1 {
            let rem = limbs[i].rem_euclid(RADIX);
            let carry = (limbs[i] - rem) >> RADIX_BITS;
            limbs[i] = rem;
            limbs[i + 1] += carry;
        }
        let negative = limbs[N_LIMBS - 1] < 0;
        if negative {
            // Negate the exact integer and re-canonicalize the magnitude.
            for l in limbs.iter_mut() {
                *l = -*l;
            }
            for i in 0..N_LIMBS - 1 {
                let rem = limbs[i].rem_euclid(RADIX);
                let carry = (limbs[i] - rem) >> RADIX_BITS;
                limbs[i] = rem;
                limbs[i + 1] += carry;
            }
        }
        let Some(h) = limbs.iter().rposition(|&l| l != 0) else {
            return 0.0;
        };
        // A 96-bit window below the highest non-zero limb captures ≥ 64
        // significant bits — lower limbs sit ≥ 43 bits under the f64
        // precision and cannot move a faithful rounding by more than 1 ULP.
        let lo = h.saturating_sub(2);
        let w = ((limbs[lo + 2] as u128) << (2 * RADIX_BITS))
            | ((limbs[lo + 1] as u128) << RADIX_BITS)
            | (limbs[lo] as u128);
        let scale = E_MIN + (lo as i32) * RADIX_BITS as i32;
        let mag = (w as f64) * exp2i(scale);
        if negative {
            -mag
        } else {
            mag
        }
    }

    /// True when no finite or non-finite contribution was deposited.
    pub fn is_zero(&self) -> bool {
        !self.nan && !self.pos_inf && !self.neg_inf && self.limbs.iter().all(|&l| l == 0)
    }
}

/// Exact power of two (2^k) for k in the representable range; ±inf/0 beyond.
fn exp2i(k: i32) -> f64 {
    if k >= -1022 {
        // Normal range: build the bit pattern directly.
        if k > 1023 {
            return f64::INFINITY;
        }
        f64::from_bits(((k + 1023) as u64) << 52)
    } else if k >= -1074 {
        // Subnormal powers of two are exact single-bit patterns.
        f64::from_bits(1u64 << (k + 1074))
    } else {
        0.0
    }
}

/// The negotiated reduction scheme actually in force for a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceKind {
    /// Fixed-rank-order f64 summation: bit-identical across ranks of one
    /// world, but the bits depend on the rank count.
    Fast,
    /// Binned superaccumulator summation: bit-identical across ranks *and*
    /// across rank counts (the elastic-resize prerequisite).
    Reproducible,
}

impl ReduceKind {
    /// Stable label (fingerprints, health JSON, checkpoint header).
    pub fn label(self) -> &'static str {
        match self {
            ReduceKind::Fast => "fast",
            ReduceKind::Reproducible => "reproducible",
        }
    }

    /// Monotone capability level for min-negotiation.
    pub fn capability_level(self) -> u8 {
        match self {
            ReduceKind::Fast => 0,
            ReduceKind::Reproducible => 1,
        }
    }

    /// Inverse of [`ReduceKind::capability_level`] (min-folded).
    pub fn from_capability_level(level: u8) -> Self {
        if level >= 1 {
            ReduceKind::Reproducible
        } else {
            ReduceKind::Fast
        }
    }
}

impl std::fmt::Display for ReduceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The operator's requested reduction mode (`--reduce`), negotiated down to
/// a [`ReduceKind`] every rank agrees on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceChoice {
    /// Force the fast fixed-order sum.
    Fast,
    /// Force the binned reproducible sum.
    Reproducible,
    /// Advertise reproducible; the min-negotiation falls back to fast if
    /// any rank cannot offer it.
    Auto,
}

impl ReduceChoice {
    /// Parse a `--reduce` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fast" => Some(ReduceChoice::Fast),
            "reproducible" => Some(ReduceChoice::Reproducible),
            "auto" => Some(ReduceChoice::Auto),
            _ => None,
        }
    }

    /// Stable label for display.
    pub fn label(self) -> &'static str {
        match self {
            ReduceChoice::Fast => "fast",
            ReduceChoice::Reproducible => "reproducible",
            ReduceChoice::Auto => "auto",
        }
    }

    /// Capability level this choice advertises into the negotiation.
    pub fn advertised_level(self) -> u8 {
        match self {
            ReduceChoice::Fast => 0,
            ReduceChoice::Reproducible | ReduceChoice::Auto => 1,
        }
    }

    /// Read `EXAML_REDUCE` (`fast` / `reproducible` / `auto`). Absent or
    /// unparsable values default to `Fast`: the baseline numerics stay
    /// byte-identical unless reproducibility is asked for.
    pub fn from_env() -> Self {
        std::env::var("EXAML_REDUCE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or(ReduceChoice::Fast)
    }

    /// Resolve without a world: an explicit choice is itself, `Auto` is the
    /// highest level this build supports (reproducible). In-process
    /// negotiation over uniform advertisements gives the same answer.
    pub fn resolve_local(self) -> ReduceKind {
        ReduceKind::from_capability_level(self.advertised_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binned(xs: &[f64]) -> f64 {
        let mut b = BinnedSum::new();
        b.add_slice(xs);
        b.render()
    }

    #[test]
    fn renders_single_values_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -123.456e300,
            5e-324,
            -5e-324,
            2.2250738585072014e-308, // smallest normal
            f64::MAX,
            f64::MIN,
            1.5e-310, // subnormal with multiple bits
        ] {
            assert_eq!(binned(&[x]).to_bits(), (x + 0.0).to_bits(), "x = {x:e}");
        }
    }

    #[test]
    fn exact_small_sums_match_ieee() {
        assert_eq!(binned(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(binned(&[1.5, -0.25]), 1.25);
        assert_eq!(binned(&[1e300, -1e300]), 0.0);
    }

    #[test]
    fn grouping_invariance() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.7371).sin() * 10f64.powi((i % 37) - 18))
            .collect();
        let whole = binned(&xs).to_bits();
        // Any partition into contiguous chunks, merged in any order, must
        // render the identical bits.
        for chunk in [1usize, 3, 7, 100, 999] {
            let mut parts: Vec<BinnedSum> = xs
                .chunks(chunk)
                .map(|c| {
                    let mut b = BinnedSum::new();
                    b.add_slice(c);
                    b
                })
                .collect();
            parts.reverse(); // merge in a different order
            let mut acc = BinnedSum::new();
            for p in &parts {
                acc.merge(p);
            }
            assert_eq!(acc.render().to_bits(), whole, "chunk = {chunk}");
        }
    }

    #[test]
    fn permutation_invariance() {
        let xs: Vec<f64> = (0..500)
            .map(|i| ((i * 2654435761u64 % 1000) as f64 - 500.0) * 1e-3)
            .collect();
        let mut rev = xs.clone();
        rev.reverse();
        assert_eq!(binned(&xs).to_bits(), binned(&rev).to_bits());
    }

    #[test]
    fn close_to_sequential_sum_on_well_conditioned_input() {
        let xs: Vec<f64> = (0..10_000).map(|i| -((i % 89) as f64) - 0.5).collect();
        let seq: f64 = xs.iter().sum();
        let bin = binned(&xs);
        let ulps = (seq.to_bits() as i64 - bin.to_bits() as i64).abs();
        assert!(
            ulps <= 1,
            "binned {bin:e} vs sequential {seq:e}: {ulps} ulps"
        );
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // 1e16 + 1 - 1e16 loses the 1 in plain f64 order; bins keep it.
        assert_eq!(binned(&[1e16, 1.0, -1e16]), 1.0);
        assert_eq!([1e16, 1.0, -1e16].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn nonfinite_semantics() {
        assert!(binned(&[f64::NAN, 1.0]).is_nan());
        assert_eq!(binned(&[f64::INFINITY, -1e308]), f64::INFINITY);
        assert_eq!(binned(&[f64::NEG_INFINITY, 1e308]), f64::NEG_INFINITY);
        assert!(binned(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
    }

    #[test]
    fn negative_totals_render_correctly() {
        let xs = [-1.25e-3, -7.5, 2.0];
        let exact: f64 = -1.25e-3 - 7.5 + 2.0;
        let bin = binned(&xs);
        let ulps = (exact.to_bits() as i64)
            .wrapping_sub(bin.to_bits() as i64)
            .abs();
        assert!(ulps <= 1, "{bin:e} vs {exact:e}");
    }

    #[test]
    fn many_deposits_no_overflow() {
        let mut b = BinnedSum::new();
        for _ in 0..1_000_000 {
            b.add(1.0 + 2f64.powi(-40));
        }
        let got = b.render();
        let want = 1_000_000.0 * (1.0 + 2f64.powi(-40));
        assert!((got - want).abs() / want < 1e-15, "{got} vs {want}");
    }

    #[test]
    fn extraction_matches_elementwise_deposits() {
        // Mixed in-range / out-of-range / zero / subnormal / huge addends:
        // the slice fast path (portable and, where detected, AVX2) must
        // represent exactly the integer the element-wise deposits do.
        let xs: Vec<f64> = (0..4096)
            .map(|i| match i % 11 {
                0 => 1e30,
                1 => -3e-22,
                2 => 0.0,
                3 => 5e-324,
                4 => -1e18,
                _ => -((i % 977) as f64).mul_add(1e-4, 2.0),
            })
            .collect();
        let mut elementwise = BinnedSum::new();
        for &x in &xs {
            elementwise.add(x);
        }
        let want = elementwise.render().to_bits();
        let mut portable = BinnedSum::new();
        portable.add_slice_portable(&xs);
        assert_eq!(portable.render().to_bits(), want);
        let mut dispatched = BinnedSum::new();
        dispatched.add_slice(&xs);
        assert_eq!(dispatched.render().to_bits(), want);
    }

    #[test]
    fn serde_roundtrip() {
        let mut b = BinnedSum::new();
        b.add_slice(&[1.0, -0.3, 5e-300]);
        let json = serde_json::to_string(&b).unwrap();
        let back: BinnedSum = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.render().to_bits(), b.render().to_bits());
    }

    #[test]
    fn reduce_kind_capability_roundtrip() {
        for kind in [ReduceKind::Fast, ReduceKind::Reproducible] {
            assert_eq!(
                ReduceKind::from_capability_level(kind.capability_level()),
                kind
            );
        }
        assert_eq!(ReduceChoice::parse("fast"), Some(ReduceChoice::Fast));
        assert_eq!(
            ReduceChoice::parse("reproducible"),
            Some(ReduceChoice::Reproducible)
        );
        assert_eq!(ReduceChoice::parse("auto"), Some(ReduceChoice::Auto));
        assert_eq!(ReduceChoice::parse("bogus"), None);
        assert_eq!(ReduceChoice::Auto.advertised_level(), 1);
        assert_eq!(ReduceChoice::Fast.advertised_level(), 0);
    }
}
