//! Property-based starvation-freedom checks for the weighted deficit
//! round-robin scheduler.
//!
//! The scheduler's documented bound: within one priority class, with `T`
//! tenants and job costs bounded by `C`, a backlogged tenant of weight `w`
//! waits at most `ceil(C / (quantum·w)) + T` dispatches between two of its
//! own dispatches. The properties below drive random workloads through
//! [`FairShare`] and check the bound exactly, plus the strict-priority and
//! quota invariants the daemon's preemption logic relies on.

use exa_serve::scheduler::{FairShare, TenantConfig};
use proptest::prelude::*;

fn no_running(_: &str) -> usize {
    0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-class workloads: no tenant's inter-dispatch gap may exceed
    /// the DRR bound, no matter the weights, costs or backlog shapes.
    #[test]
    fn bounded_wait_within_a_priority_class(
        tenants in prop::collection::vec(
            (1u64..5, prop::collection::vec(1u64..9, 1..14)),
            2..6,
        ),
        quantum in 1u64..4,
    ) {
        let mut s = FairShare::new(quantum, TenantConfig::default());
        let mut remaining = Vec::new();
        let mut next_id = 1u64;
        for (i, (weight, costs)) in tenants.iter().enumerate() {
            let name = format!("t{i}");
            s.set_tenant(&name, TenantConfig { weight: *weight, max_running: usize::MAX });
            for &cost in costs {
                s.enqueue(next_id, &name, 0, cost);
                next_id += 1;
            }
            remaining.push(costs.len());
        }
        let t_count = tenants.len();
        let max_cost = tenants.iter().flat_map(|(_, c)| c.iter().copied()).max().unwrap();
        // Dispatches each backlogged tenant has waited since its own last
        // dispatch (or since the start).
        let mut waited = vec![0usize; t_count];
        while let Some(job) = s.next(&no_running) {
            let winner: usize = job.tenant[1..].parse().unwrap();
            remaining[winner] -= 1;
            for i in 0..t_count {
                if i == winner {
                    waited[i] = 0;
                } else if remaining[i] > 0 {
                    waited[i] += 1;
                    let w = tenants[i].0;
                    let bound = (max_cost.div_ceil(quantum * w) as usize) + t_count;
                    prop_assert!(
                        waited[i] <= bound,
                        "tenant t{i} (weight {w}) waited {} dispatches, bound {bound}",
                        waited[i],
                    );
                }
            }
        }
        prop_assert!(remaining.iter().all(|&r| r == 0), "scheduler left jobs queued");
    }

    /// Strict priority classes: with any same-class backlog in the system,
    /// a single strictly-higher-priority job always dispatches first —
    /// the invariant that lets a preemptor overtake its requeued victim.
    #[test]
    fn higher_priority_always_dispatches_first(
        backlog in prop::collection::vec((0usize..4, 1u64..9), 1..20),
        urgent_tenant in 0usize..4,
        urgent_cost in 1u64..9,
    ) {
        let mut s = FairShare::new(1, TenantConfig::default());
        for (i, (tenant, cost)) in backlog.iter().enumerate() {
            s.enqueue(100 + i as u64, &format!("t{tenant}"), 0, *cost);
        }
        s.enqueue(1, &format!("t{urgent_tenant}"), 5, urgent_cost);
        let first = s.next(&no_running).unwrap();
        prop_assert_eq!(first.id, 1, "priority-5 job must win the first dispatch");
    }

    /// Quota: a tenant at its `max_running` limit is never dispatched, and
    /// the backlog drains once capacity frees up.
    #[test]
    fn quota_is_never_exceeded(
        jobs_per_tenant in prop::collection::vec(1usize..8, 2..5),
        quota in 1usize..3,
    ) {
        let mut s = FairShare::new(1, TenantConfig::default());
        for (i, &n) in jobs_per_tenant.iter().enumerate() {
            let name = format!("t{i}");
            s.set_tenant(&name, TenantConfig { weight: 1, max_running: quota });
            for j in 0..n {
                s.enqueue((i * 100 + j) as u64 + 1, &name, 0, 1);
            }
        }
        // Simulate: dispatched jobs run forever until every tenant hits its
        // quota; next() must stop exactly then.
        let mut running = vec![0usize; jobs_per_tenant.len()];
        let total: usize = jobs_per_tenant.iter().map(|&n| n.min(quota)).sum();
        for _ in 0..total {
            let snapshot = running.clone();
            let job = s
                .next(&move |t| snapshot[t[1..].parse::<usize>().unwrap()])
                .unwrap();
            let tenant: usize = job.tenant[1..].parse().unwrap();
            running[tenant] += 1;
            prop_assert!(running[tenant] <= quota, "tenant t{tenant} exceeded quota {quota}");
        }
        let snapshot = running.clone();
        prop_assert!(
            s.next(&move |t| snapshot[t[1..].parse::<usize>().unwrap()]).is_none(),
            "all tenants at quota: nothing is dispatchable"
        );
        // One slot frees: the next dispatch must come from that tenant (if
        // it still has a backlog).
        if jobs_per_tenant[0] > quota {
            running[0] -= 1;
            let snapshot = running.clone();
            let job = s
                .next(&move |t| snapshot[t[1..].parse::<usize>().unwrap()])
                .unwrap();
            prop_assert_eq!(&job.tenant, "t0");
        }
    }
}
