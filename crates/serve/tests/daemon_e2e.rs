//! End-to-end daemon tests: submit/preempt/resume/cancel against a real
//! worker pool running real (small) likelihood searches, plus journal
//! replay across a daemon restart.
//!
//! The central claim mirrors the restart-chaos harness one level up: a job
//! that was checkpoint-preempted by a higher-priority submission — or cut
//! short by a daemon shutdown — must finish with a final likelihood
//! **bitwise** identical to the same job run uninterrupted.

use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_search::SearchConfig;
use exa_serve::daemon::{Daemon, DaemonConfig};
use exa_serve::{JobSpec, JobState};
use exa_simgen::workloads;
use examl_core::RunConfig;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A spool directory plus a PHYLIP alignment file the daemon can load.
struct Fixture {
    root: PathBuf,
    alignment: PathBuf,
    /// The alignment exactly as the daemon will see it (text round-trip,
    /// unpartitioned) — references must run on the same patterns.
    compressed: CompressedAlignment,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!("examl_serve_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        let w = workloads::partitioned(8, 2, 100, 41);
        let text = exa_bio::phylip::write_phylip(&w.alignment);
        let alignment = root.join("aln.phy");
        std::fs::write(&alignment, &text).unwrap();
        let parsed = exa_bio::phylip::parse_phylip_auto(&text).unwrap();
        let scheme = PartitionScheme::unpartitioned(parsed.n_sites());
        let compressed = CompressedAlignment::build(&parsed, &scheme);
        Fixture {
            root,
            alignment,
            compressed,
        }
    }

    fn spool(&self) -> PathBuf {
        self.root.join("spool")
    }

    fn spec(&self, tenant: &str, priority: u32, iterations: usize) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            priority,
            cost: 1,
            alignment: self.alignment.clone(),
            partitions: None,
            config: RunConfig::new(2).seed(23).search(SearchConfig {
                max_iterations: iterations,
                epsilon: 1e-9,
                ..SearchConfig::fast()
            }),
        }
    }

    /// The lnL the daemon must reproduce for `spec`, computed by running
    /// the identical config uninterrupted (checkpointing on, as the daemon
    /// forces it).
    fn reference_lnl(&self, spec: &JobSpec, tag: &str) -> f64 {
        let dir = self.root.join(format!("ref_{tag}"));
        let out = spec
            .config
            .clone()
            .checkpoint(&dir, 1)
            .run(&self.compressed)
            .unwrap();
        out.result.lnl
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn wait_for(daemon: &Daemon, id: u64, pred: impl Fn(&JobState) -> bool, what: &str) -> JobState {
    let start = Instant::now();
    loop {
        let st = daemon.status(id).expect("job must exist").state;
        if pred(&st) {
            return st;
        }
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "timed out waiting for job {id} to be {what}; last state {st:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn completed_lnl(state: &JobState) -> f64 {
    match state {
        JobState::Completed { lnl, .. } => *lnl,
        other => panic!("expected Completed, got {other:?}"),
    }
}

#[test]
fn preempted_job_resumes_to_bitwise_identical_lnl() {
    let fx = Fixture::new("preempt");
    let low = fx.spec("batch", 0, 10);
    let high = fx.spec("interactive", 9, 2);
    let low_ref = fx.reference_lnl(&low, "low");
    let high_ref = fx.reference_lnl(&high, "high");

    // One worker: the high-priority submission can only run by preempting.
    let mut cfg = DaemonConfig::new(fx.spool());
    cfg.workers = 1;
    let daemon = Daemon::start(cfg).unwrap();

    let low_id = daemon.submit(low).unwrap();
    wait_for(&daemon, low_id, |s| *s == JobState::Running, "running");
    let high_id = daemon.submit(high).unwrap();

    let high_state = wait_for(&daemon, high_id, JobState::is_terminal, "terminal");
    let low_state = wait_for(&daemon, low_id, JobState::is_terminal, "terminal");

    let low_status = daemon.status(low_id).unwrap();
    assert!(
        low_status.preemptions >= 1,
        "the low-priority job must have been checkpoint-preempted"
    );
    assert_eq!(
        completed_lnl(&low_state).to_bits(),
        low_ref.to_bits(),
        "preempt/resume must preserve the final likelihood bitwise"
    );
    assert_eq!(completed_lnl(&high_state).to_bits(), high_ref.to_bits());

    let hb = daemon.health();
    assert!(hb.preemptions >= 1, "health must count the preemption");
    assert!(hb.resumes >= 1, "health must count the resume");
    assert_eq!(hb.completed, 2);
    daemon.shutdown();
}

#[test]
fn cancel_hits_queued_and_running_jobs() {
    let fx = Fixture::new("cancel");
    let mut cfg = DaemonConfig::new(fx.spool());
    cfg.workers = 1;
    let daemon = Daemon::start(cfg).unwrap();

    let running = daemon.submit(fx.spec("a", 0, 10)).unwrap();
    wait_for(&daemon, running, |s| *s == JobState::Running, "running");
    // Same priority: these queue behind the running job.
    let queued_a = daemon.submit(fx.spec("a", 0, 2)).unwrap();
    let queued_b = daemon.submit(fx.spec("a", 0, 2)).unwrap();

    // Cancelling a queued job is immediate.
    assert!(daemon.cancel(queued_b).unwrap());
    assert_eq!(
        daemon.status(queued_b).unwrap().state,
        JobState::Cancelled,
        "queued job must cancel synchronously"
    );

    // Cancelling the running job checkpoint-preempts it into `Cancelled`
    // rather than re-queueing it.
    assert!(daemon.cancel(running).unwrap());
    let st = wait_for(&daemon, running, JobState::is_terminal, "terminal");
    assert_eq!(st, JobState::Cancelled);

    // The untouched job still completes; cancelling it afterwards is a
    // no-op.
    wait_for(&daemon, queued_a, JobState::is_terminal, "terminal");
    assert!(!daemon.cancel(queued_a).unwrap());

    let hb = daemon.health();
    assert_eq!(hb.cancelled, 2);
    assert_eq!(hb.completed, 1);
    daemon.shutdown();
}

#[test]
fn shutdown_journal_replay_resumes_to_bitwise_identical_lnl() {
    let fx = Fixture::new("replay");
    let spec = fx.spec("batch", 0, 10);
    let reference = fx.reference_lnl(&spec, "replay");

    let mut cfg = DaemonConfig::new(fx.spool());
    cfg.workers = 1;
    let daemon = Daemon::start(cfg.clone()).unwrap();
    let id = daemon.submit(spec).unwrap();
    wait_for(&daemon, id, |s| *s == JobState::Running, "running");
    // Graceful shutdown: checkpoint-preempt, journal `Preempted`, compact.
    daemon.shutdown();
    assert!(
        !daemon.status(id).unwrap().state.is_terminal(),
        "shutdown must leave the interrupted job resumable, not failed"
    );
    drop(daemon);

    // A fresh daemon on the same spool replays the journal and finishes
    // the job from its checkpoint.
    let daemon = Daemon::start(cfg).unwrap();
    let st = daemon.status(id).expect("replay must restore the job");
    assert!(!st.state.is_terminal(), "job must come back queued");
    let state = wait_for(&daemon, id, JobState::is_terminal, "terminal");
    assert_eq!(
        completed_lnl(&state).to_bits(),
        reference.to_bits(),
        "a job finished across a daemon restart must match the reference bitwise"
    );
    assert!(daemon.health().resumes >= 1);
    daemon.shutdown();
}

#[test]
fn resize_grows_and_shrinks_the_worker_pool() {
    let fx = Fixture::new("resize");
    let spec = fx.spec("batch", 0, 3);
    let reference = fx.reference_lnl(&spec, "resize");

    let mut cfg = DaemonConfig::new(fx.spool());
    cfg.workers = 1;
    let daemon = Daemon::start(cfg).unwrap();

    // Grow 1 -> 3: the two extra threads spawn immediately and park idle.
    assert_eq!(daemon.resize(3).unwrap(), (1, 3));
    let start = Instant::now();
    while daemon.health().workers_idle < 3 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "grown workers never parked; last idle {}",
            daemon.health().workers_idle
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(daemon.metrics_text().contains("exa_pool_workers 3"));

    // Shrink 3 -> 1: idle workers wake on the resize notification and
    // drain without touching any job.
    assert_eq!(daemon.resize(1).unwrap(), (3, 1));
    let start = Instant::now();
    while daemon.health().workers_idle > 1 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "excess workers never drained; last idle {}",
            daemon.health().workers_idle
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(daemon.metrics_text().contains("exa_pool_workers 1"));
    assert!(daemon.metrics_text().contains("exa_pool_resizes_total 2"));

    // The surviving worker still runs jobs to the bitwise-exact answer.
    let id = daemon.submit(spec).unwrap();
    let state = wait_for(&daemon, id, JobState::is_terminal, "terminal");
    assert_eq!(completed_lnl(&state).to_bits(), reference.to_bits());
    daemon.shutdown();
}
