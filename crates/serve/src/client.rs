//! Blocking client for the daemon's JSON-lines protocol, used by the
//! `examl serve …` subcommands and the test/bench harnesses.
//!
//! Each call opens a fresh connection, writes one request line and reads
//! one response line ([`Client::stream_health`] reads several). Keeping the
//! client connectionless sidesteps keep-alive state on both ends; daemon
//! operations are rare enough that the three-way handshake is noise.

use crate::{JobId, JobSpec, JobStatus};
use exa_obs::ServeHeartbeat;
use serde::{field, Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Daemon address, e.g. `127.0.0.1:7711`.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    fn rpc(&self, req: &Value) -> Result<Value, String> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let line = serde_json::to_string(req).map_err(|e| e.to_string())?;
        writeln!(writer, "{line}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).map_err(|e| e.to_string())?;
        let v: Value = serde_json::from_str(&resp).map_err(|e| format!("bad response: {e}"))?;
        let entries = v.as_map("response").map_err(|e| e.0)?;
        match field(entries, "ok") {
            Value::Bool(true) => Ok(v.clone()),
            _ => Err(field(entries, "error")
                .as_str("error")
                .unwrap_or("request failed")
                .to_string()),
        }
    }

    fn op(name: &str, extra: Vec<(String, Value)>) -> Value {
        let mut m = vec![("op".to_string(), Value::Str(name.to_string()))];
        m.extend(extra);
        Value::Map(m)
    }

    /// Submit a job, returning its daemon-assigned id.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobId, String> {
        let resp = self.rpc(&Self::op(
            "submit",
            vec![("spec".to_string(), spec.to_value())],
        ))?;
        let entries = resp.as_map("response").map_err(|e| e.0)?;
        field(entries, "id").as_u64("id").map_err(|e| e.0)
    }

    /// Snapshot one job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, String> {
        let resp = self.rpc(&Self::op(
            "status",
            vec![("id".to_string(), Value::UInt(id))],
        ))?;
        let entries = resp.as_map("response").map_err(|e| e.0)?;
        JobStatus::from_value(field(entries, "job")).map_err(|e| e.0)
    }

    /// Cancel a job; `Ok(true)` when a cancellation was initiated.
    pub fn cancel(&self, id: JobId) -> Result<bool, String> {
        let resp = self.rpc(&Self::op(
            "cancel",
            vec![("id".to_string(), Value::UInt(id))],
        ))?;
        let entries = resp.as_map("response").map_err(|e| e.0)?;
        field(entries, "cancelled")
            .as_bool("cancelled")
            .map_err(|e| e.0)
    }

    /// Snapshot every job.
    pub fn list(&self) -> Result<Vec<JobStatus>, String> {
        let resp = self.rpc(&Self::op("list", vec![]))?;
        let entries = resp.as_map("response").map_err(|e| e.0)?;
        field(entries, "jobs")
            .as_array("jobs")
            .map_err(|e| e.0)?
            .iter()
            .map(|v| JobStatus::from_value(v).map_err(|e| e.0))
            .collect()
    }

    /// Current daemon gauges.
    pub fn health(&self) -> Result<ServeHeartbeat, String> {
        let resp = self.rpc(&Self::op("health", vec![]))?;
        let entries = resp.as_map("response").map_err(|e| e.0)?;
        ServeHeartbeat::from_value(field(entries, "health")).map_err(|e| e.0)
    }

    /// Prometheus text-format snapshot of the daemon's metrics registry
    /// (same text `GET /metrics` serves).
    pub fn metrics(&self) -> Result<String, String> {
        let resp = self.rpc(&Self::op("metrics", vec![]))?;
        let entries = resp.as_map("response").map_err(|e| e.0)?;
        field(entries, "text")
            .as_str("text")
            .map(str::to_string)
            .map_err(|e| e.0)
    }

    /// Read `count` heartbeats spaced `interval_ms` apart from the
    /// streaming endpoint.
    pub fn stream_health(
        &self,
        count: u64,
        interval_ms: u64,
    ) -> Result<Vec<ServeHeartbeat>, String> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let req = Self::op(
            "stream-health",
            vec![
                ("count".to_string(), Value::UInt(count)),
                ("interval_ms".to_string(), Value::UInt(interval_ms)),
            ],
        );
        let line = serde_json::to_string(&req).map_err(|e| e.to_string())?;
        writeln!(writer, "{line}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream);
        let mut out = Vec::new();
        for line in reader.lines() {
            let line = line.map_err(|e| e.to_string())?;
            if line.trim().is_empty() {
                continue;
            }
            // The trailing {"ok":true} terminator ends the stream.
            if let Ok(hb) = ServeHeartbeat::from_json_line(&line) {
                out.push(hb);
            } else {
                break;
            }
        }
        Ok(out)
    }

    /// Resize the daemon's worker pool; returns `(previous, new)` targets.
    pub fn resize(&self, workers: u64) -> Result<(u64, u64), String> {
        let resp = self.rpc(&Self::op(
            "resize",
            vec![("workers".to_string(), Value::UInt(workers))],
        ))?;
        let entries = resp.as_map("response").map_err(|e| e.0)?;
        let previous = field(entries, "previous")
            .as_u64("previous")
            .map_err(|e| e.0)?;
        let new = field(entries, "workers")
            .as_u64("workers")
            .map_err(|e| e.0)?;
        Ok((previous, new))
    }

    /// Ask the daemon to checkpoint running jobs and stop.
    pub fn shutdown(&self) -> Result<(), String> {
        self.rpc(&Self::op("shutdown", vec![])).map(|_| ())
    }

    /// Poll `status` until the job reaches a terminal state or `timeout`
    /// elapses.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Result<JobStatus, String> {
        let start = Instant::now();
        loop {
            let st = self.status(id)?;
            if st.state.is_terminal() {
                return Ok(st);
            }
            if start.elapsed() > timeout {
                return Err(format!("job {id} still {:?} after {timeout:?}", st.state));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
