//! The daemon's crash-safe job journal.
//!
//! Every job state transition is one JSON line appended to
//! `<spool>/journal.jsonl` and fsynced before the transition takes effect
//! anywhere else — the journal *is* the queue's durable state. On startup
//! the daemon replays the journal: terminal jobs are remembered for status
//! queries, queued jobs re-enter the scheduler, and jobs that were running
//! when the process died are re-queued (their next dispatch resumes from
//! the newest intact checkpoint generation in the job's spool directory,
//! exactly like `--resume`).
//!
//! A torn final line — the append that was racing the crash — is detected
//! and dropped during replay; every earlier line was fsynced before being
//! acted on, so nothing else can be torn. [`Journal::compact`] rewrites the
//! file through [`examl_core::checkpoint::atomic_write`], the same
//! two-phase commit (unique tmp + fsync + rename + directory fsync) the
//! checkpoint layer uses, so a crash mid-compaction leaves the old journal
//! intact.

use crate::{JobId, JobSpec};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One durable job state transition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JournalEvent {
    /// Job admitted with its full spec (boxed: a spec dwarfs every other
    /// variant).
    Submitted { id: JobId, spec: Box<JobSpec> },
    /// Dispatched to a worker (initial run or resume).
    Started { id: JobId },
    /// Checkpoint-preempted and re-queued.
    Preempted { id: JobId },
    /// Cancelled (from the queue, or via preemption while running).
    Cancelled { id: JobId },
    /// Finished with a final likelihood.
    Completed {
        id: JobId,
        lnl: f64,
        iterations: u64,
    },
    /// The run returned an error.
    Failed { id: JobId, error: String },
}

impl JournalEvent {
    /// The job this event belongs to.
    pub fn id(&self) -> JobId {
        match self {
            JournalEvent::Submitted { id, .. }
            | JournalEvent::Started { id }
            | JournalEvent::Preempted { id }
            | JournalEvent::Cancelled { id }
            | JournalEvent::Completed { id, .. }
            | JournalEvent::Failed { id, .. } => *id,
        }
    }
}

/// Append handle on the journal file. Opening replays existing events.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    /// When set, every append's write+flush+fdatasync latency is observed
    /// here (milliseconds). The daemon wires its
    /// `exa_journal_fsync_ms` instrument in after opening.
    fsync_ms: Option<std::sync::Arc<exa_obs::metrics::Histogram>>,
}

impl Journal {
    /// Journal file inside a spool directory.
    pub fn path_in(spool: &Path) -> PathBuf {
        spool.join("journal.jsonl")
    }

    /// Open (creating if absent) the journal in `spool`, returning the
    /// handle and the replayed events. A torn final line is dropped; a
    /// malformed line elsewhere is a hard error, since only the last append
    /// can legitimately be interrupted.
    pub fn open(spool: &Path) -> std::io::Result<(Journal, Vec<JournalEvent>)> {
        std::fs::create_dir_all(spool)?;
        let path = Self::path_in(spool);
        let mut events = Vec::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
                for (i, line) in lines.iter().enumerate() {
                    match serde_json::from_str::<JournalEvent>(line) {
                        Ok(ev) => events.push(ev),
                        Err(e) if i + 1 == lines.len() && !text.ends_with('\n') => {
                            // The crash tore the final append mid-line.
                            let _ = e;
                        }
                        Err(e) => {
                            return Err(std::io::Error::other(format!(
                                "corrupt journal line {}: {e}",
                                i + 1
                            )));
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            Journal {
                path,
                file,
                fsync_ms: None,
            },
            events,
        ))
    }

    /// Observe every future append's durability latency in `hist`.
    pub fn set_fsync_histogram(&mut self, hist: std::sync::Arc<exa_obs::metrics::Histogram>) {
        self.fsync_ms = Some(hist);
    }

    /// Durably append one event: write the line, flush, fsync. The caller
    /// must not act on the transition before this returns.
    pub fn append(&mut self, ev: &JournalEvent) -> std::io::Result<()> {
        let line = serde_json::to_string(ev)
            .map_err(|e| std::io::Error::other(format!("journal encode: {e}")))?;
        let t0 = std::time::Instant::now();
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        let res = self.file.sync_data();
        if let Some(h) = &self.fsync_ms {
            h.observe(t0.elapsed().as_secs_f64() * 1e3);
        }
        res
    }

    /// Atomically replace the journal with `events` (dropping history for
    /// terminal jobs), then reopen for appending.
    pub fn compact(&mut self, events: &[JournalEvent]) -> std::io::Result<()> {
        let mut bytes = Vec::new();
        for ev in events {
            let line = serde_json::to_string(ev)
                .map_err(|e| std::io::Error::other(format!("journal encode: {e}")))?;
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
        }
        examl_core::checkpoint::atomic_write(&self.path, &bytes)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use examl_core::RunConfig;

    fn spec(tenant: &str) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            priority: 2,
            cost: 10,
            alignment: PathBuf::from("data.phy"),
            partitions: None,
            config: RunConfig::new(2),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "exa-serve-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn events_replay_in_order() {
        let dir = tmpdir("replay");
        {
            let (mut j, replayed) = Journal::open(&dir).unwrap();
            assert!(replayed.is_empty());
            j.append(&JournalEvent::Submitted {
                id: 1,
                spec: Box::new(spec("a")),
            })
            .unwrap();
            j.append(&JournalEvent::Started { id: 1 }).unwrap();
            j.append(&JournalEvent::Preempted { id: 1 }).unwrap();
            j.append(&JournalEvent::Completed {
                id: 1,
                lnl: -1234.5,
                iterations: 7,
            })
            .unwrap();
        }
        let (_, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 4);
        assert!(matches!(
            &replayed[0],
            JournalEvent::Submitted { id: 1, spec } if spec.tenant == "a"
        ));
        assert!(
            matches!(&replayed[3], JournalEvent::Completed { lnl, .. } if (*lnl + 1234.5).abs() < 1e-12)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_but_corruption_elsewhere_is_fatal() {
        let dir = tmpdir("torn");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.append(&JournalEvent::Started { id: 3 }).unwrap();
        }
        let path = Journal::path_in(&dir);
        // Simulate a crash mid-append: a truncated, newline-less tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"Started\":{\"id\"");
        std::fs::write(&path, &text).unwrap();
        let (_, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 1);

        // A mangled *interior* line is real corruption and must not be
        // silently skipped.
        std::fs::write(&path, "garbage\n{\"Started\":{\"id\":3}}\n").unwrap();
        assert!(Journal::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_rewrites_atomically_and_keeps_appending() {
        let dir = tmpdir("compact");
        let (mut j, _) = Journal::open(&dir).unwrap();
        for id in 1..=5 {
            j.append(&JournalEvent::Started { id }).unwrap();
            j.append(&JournalEvent::Completed {
                id,
                lnl: -1.0,
                iterations: 1,
            })
            .unwrap();
        }
        j.compact(&[JournalEvent::Submitted {
            id: 6,
            spec: Box::new(spec("b")),
        }])
        .unwrap();
        j.append(&JournalEvent::Started { id: 6 }).unwrap();
        let (_, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].id(), 6);
        assert!(matches!(replayed[1], JournalEvent::Started { id: 6 }));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
