//! `examl` — command-line front end for de-centralized maximum-likelihood
//! inference, mirroring the original ExaML tool's interface: alignment +
//! optional partition file in, ML tree out, with `-Q` (monolithic data
//! distribution), `-M` (per-partition branch lengths), Γ/PSR model choice,
//! checkpoint/restart and configurable rank counts.
//!
//! ```text
//! examl --phylip data.phy [--partitions parts.txt] [--ranks 4]
//!       [--model GAMMA|PSR] [--kernel scalar|simd|auto] [-Q] [-M] [--seed 42]
//!       [--starting-tree random|parsimony|<file.nwk>]
//!       [--iterations 10] [--radius 5] [--epsilon 0.1]
//!       [--checkpoint-out DIR [--checkpoint-every 1]] [--resume DIR]
//!       [--binary-out data.exml | --binary-in data.exml]
//!       [--out-tree result.nwk] [--trace-out trace.json] [--quiet]
//! ```
//!
//! `examl serve …` runs the multi-tenant inference daemon and its client
//! verbs (see [`serve_cli`]). A plain run installs a SIGINT/SIGTERM bridge:
//! the signal checkpoint-preempts the search, committing a final generation
//! when `--checkpoint-out` is armed, and the process exits with code 4 so
//! wrappers can tell "interrupted but resumable" from real failures.
//!
//! Flag parsing lives in `examl_core::cli` and the run orchestration in
//! `examl_core::RunConfig` — this binary only wires the two together and
//! formats the output.

mod serve_cli;

use exa_bio::partition::{parse_partition_file, PartitionScheme};
use exa_bio::patterns::CompressedAlignment;
use exa_comm::{CommCategory, ReduceChoice};
use exa_search::{BranchMode, PreemptSignal, SearchConfig, StartingTree};
use examl_core::{CliConfig, CliError, RunConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: examl (--phylip FILE | --fasta FILE | --binary-in FILE) [options]\n\
options:\n\
  --partitions FILE      RAxML-style partition file (DNA, name = a-b)\n\
  --ranks N              number of ranks (default 4)\n\
  --model GAMMA|PSR      rate heterogeneity model (default GAMMA)\n\
  --kernel K             likelihood-kernel backend: scalar | simd | auto\n\
                         (default auto: ranks negotiate the fastest backend\n\
                         all of them support; also via EXAML_KERNEL)\n\
  --site-repeats S       subtree-repeat CLV compression: on | off | auto\n\
                         (default auto: ranks negotiate a uniform setting,\n\
                         resolving to on; also via EXAML_SITE_REPEATS)\n\
  --reduce R             collective reduction mode: fast | reproducible |\n\
                         auto (reproducible sums are bitwise invariant to\n\
                         rank count and summation order; default fast,\n\
                         also via EXAML_REDUCE)\n\
  --threads N|auto       intra-rank worker threads per rank executing\n\
                         kernel batches task-parallel (bitwise invisible:\n\
                         the lnL trajectory is identical at any count;\n\
                         default auto, negotiated to the world minimum,\n\
                         also via EXAML_THREADS)\n\
  --gradient G           gradient-driven branch-length optimization:\n\
                         on | off | auto (on computes all edge derivatives\n\
                         in one full-tree sweep with a single collective\n\
                         per smoothing pass; bitwise result-neutral;\n\
                         default auto, negotiated to the world minimum,\n\
                         also via EXAML_GRADIENT)\n\
  --batch on|off         pack small partitions into cache-sized kernel\n\
                         batches (default on; off = one dispatch per\n\
                         partition)\n\
  --resize-at ITER:WIDTH[,ITER:WIDTH...]\n\
                         shrink/grow the active rank pool to WIDTH at the\n\
                         start of iteration ITER (de-centralized scheme;\n\
                         requires --reduce reproducible or auto)\n\
  -Q                     monolithic per-partition data distribution (MPS)\n\
  -M                     per-partition branch lengths\n\
  --seed N               starting-tree seed (default 42)\n\
  --starting-tree S      random | parsimony | <newick file> (default parsimony)\n\
  --iterations N         max search iterations (default 10)\n\
  --radius N             SPR rearrangement radius (default 5)\n\
  --epsilon X            convergence threshold (default 0.1)\n\
  --checkpoint-out DIR   commit checkpoint generations into DIR (atomic\n\
                         write + rename)\n\
  --checkpoint-every N   checkpoint interval in iterations (default 1;\n\
                         0 disables the iteration cadence)\n\
  --checkpoint-every-secs S\n\
                         also checkpoint when S wall-clock seconds have\n\
                         passed since the last commit (alone, it disables\n\
                         the iteration cadence)\n\
  --checkpoint-keep N    checkpoint generations retained (default 3)\n\
  --resume DIR           resume from the newest intact generation in DIR\n\
  --inject-kill N[:RANK] die after N committed checkpoints — all ranks, or\n\
                         just RANK (restart chaos testing; exit code 3)\n\
  --binary-out FILE      write the compressed alignment in binary form and exit\n\
  --out-tree FILE        write the final Newick tree to FILE\n\
  --trace-out FILE       write a Chrome trace_event JSON trace to FILE\n\
                         (under --bootstrap: one trace per replicate, FILE.repN.json)\n\
  --bootstrap N          run N bootstrap replicates and annotate support\n\
  --verify-replicas N    compare replica state fingerprints every N collectives\n\
  --health-out FILE      append one heartbeat JSON line per iteration to FILE\n\
  --metrics-out FILE     write a Prometheus text-format metrics snapshot to\n\
                         FILE at exit (enables the metrics registry)\n\
  --inject-divergence RANK:COLLECTIVE:alpha|blen\n\
                         flip one state bit on RANK after COLLECTIVE collectives\n\
                         (sentinel fault-injection testing)\n\
  --reduce-override MODE[,MODE...]\n\
                         force per-rank reduce modes (cycled over ranks),\n\
                         overriding the negotiated one — a scripted\n\
                         mixed-mode world the sentinel catches at its first\n\
                         fingerprint sync (fault-injection testing)\n\
  --threads-override N[,N...]\n\
                         force per-rank thread counts (cycled over ranks),\n\
                         bypassing negotiation; a mixed table trips the\n\
                         sentinel via the backend fingerprint\n\
  --gradient-override on|off[,on|off...]\n\
                         force per-rank gradient modes (cycled over ranks),\n\
                         bypassing negotiation — a mixed world\n\
                         desynchronizes the collective sequence and the\n\
                         sentinel catches it at its first fingerprint sync\n\
  --ascii                also print an ASCII cladogram\n\
  --stats                print alignment statistics and memory estimates, then exit\n\
  --quiet                suppress progress output\n\
subcommands:\n\
  serve                  run the multi-tenant inference daemon / talk to one\n\
                         (examl serve --help)";

fn load_alignment(args: &CliConfig) -> Result<CompressedAlignment, String> {
    if let Some(path) = &args.binary_in {
        return exa_bio::binary::read_file(path).map_err(|e| e.to_string());
    }
    let alignment = if let Some(path) = &args.phylip {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        exa_bio::phylip::parse_phylip_auto(&text).map_err(|e| e.to_string())?
    } else if let Some(path) = &args.fasta {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        exa_bio::fasta::parse_fasta(&text).map_err(|e| e.to_string())?
    } else {
        return Err("no input alignment (use --phylip, --fasta or --binary-in)".into());
    };
    let scheme = match &args.partitions {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            parse_partition_file(&text, alignment.n_sites()).map_err(|e| e.to_string())?
        }
        None => PartitionScheme::unpartitioned(alignment.n_sites()),
    };
    Ok(CompressedAlignment::build(&alignment, &scheme))
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("serve") {
        raw.remove(0);
        return serve_cli::main(raw);
    }
    let args = match CliConfig::parse(raw) {
        Ok(args) => args,
        Err(CliError::Help) => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let compressed = match load_alignment(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        eprintln!(
            "alignment: {} taxa, {} partitions, {} unique patterns",
            compressed.n_taxa(),
            compressed.n_partitions(),
            compressed.total_patterns()
        );
    }

    if args.stats_only {
        // The ExaML-style pre-run advisory: pattern counts and the CLV
        // memory requirement under each rate model (PSR = 1/4 of Γ, §IV-C).
        println!("taxa                 : {}", compressed.n_taxa());
        println!("partitions           : {}", compressed.n_partitions());
        println!("sites                : {}", compressed.total_sites());
        println!("unique patterns      : {}", compressed.total_patterns());
        let gamma = exa_bio::stats::clv_memory_bytes(&compressed, 4);
        let psr = exa_bio::stats::clv_memory_bytes(&compressed, 1);
        println!(
            "CLV memory (GAMMA)   : {:.1} MiB",
            gamma as f64 / (1 << 20) as f64
        );
        println!(
            "CLV memory (PSR)     : {:.1} MiB",
            psr as f64 / (1 << 20) as f64
        );
        for (i, p) in compressed.partitions.iter().enumerate() {
            let gaps = exa_bio::stats::gap_fraction(p);
            let freqs = exa_bio::stats::empirical_frequencies(p);
            println!(
                "  partition {i:>4} {:<12} {:>6} patterns, {:>5.1}% gaps, pi = [{:.3} {:.3} {:.3} {:.3}]",
                p.name,
                p.n_patterns(),
                100.0 * gaps,
                freqs[0],
                freqs[1],
                freqs[2],
                freqs[3]
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.binary_out {
        if let Err(e) = exa_bio::binary::write_file(path, &compressed) {
            eprintln!("error writing binary alignment: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!("wrote binary alignment to {}", path.display());
        }
        return ExitCode::SUCCESS;
    }

    let starting_tree = match args.starting_tree.as_str() {
        "random" => StartingTree::Random,
        "parsimony" => StartingTree::Parsimony,
        path => match std::fs::read_to_string(path) {
            Ok(text) => StartingTree::Newick(text),
            Err(e) => {
                eprintln!("cannot read starting tree {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut run = RunConfig::new(args.ranks)
        .rate_model(args.model)
        .branch_mode(if args.per_partition_branches {
            BranchMode::PerPartition
        } else {
            BranchMode::Joint
        })
        .strategy(if args.mps {
            exa_sched::Strategy::MonolithicLpt
        } else {
            exa_sched::Strategy::Cyclic
        })
        .search(SearchConfig {
            max_iterations: args.iterations,
            spr_radius: args.radius,
            epsilon: args.epsilon,
            ..SearchConfig::default()
        })
        .seed(args.seed)
        .starting_tree(starting_tree)
        .kernel(args.kernel)
        .site_repeats(args.site_repeats)
        .reduce(args.reduce)
        .threads(args.threads)
        .gradient(args.gradient)
        .batch(args.batch)
        .verify_replicas(args.verify_replicas);
    if !args.resize_at.is_empty() && matches!(args.reduce, ReduceChoice::Fast) {
        eprintln!(
            "--resize-at requires --reduce reproducible (or auto): only \
             rank-count-invariant reductions keep the lnL trajectory bitwise \
             stable across a width change"
        );
        return ExitCode::from(2);
    }
    for (iteration, width) in args.resize_at.iter().copied() {
        run = run.resize_at(iteration, width);
    }
    if let Some(path) = &args.checkpoint_out {
        run = run
            .checkpoint(path, args.resolved_checkpoint_every())
            .checkpoint_keep(args.checkpoint_keep);
        if let Some(secs) = args.checkpoint_every_secs {
            run = run.checkpoint_every_secs(secs);
        }
    }
    if let Some(path) = &args.resume {
        run = run.resume(path);
    }
    if let Some(spec) = args.inject_kill {
        if args.checkpoint_out.is_none() {
            eprintln!("--inject-kill requires --checkpoint-out");
            return ExitCode::from(2);
        }
        run = run.inject_kill(spec);
    }
    if let Some(fault) = args.inject_divergence {
        run = run.divergence_fault(fault);
    }
    if let Some(table) = args.reduce_override.clone() {
        run = run.reduce_override(table);
    }
    if let Some(table) = args.threads_override.clone() {
        run = run.threads_override(table);
    }
    if let Some(table) = args.gradient_override.clone() {
        run = run.gradient_override(table);
    }
    if let Some(path) = &args.health_out {
        run = run.health_out(path);
    }
    if args.metrics_out.is_some() {
        exa_obs::metrics::global().set_enabled(true);
    }
    if args.bootstrap > 0 {
        run = run.bootstrap(args.bootstrap, args.seed.wrapping_add(0xB00));
        if let Some(path) = &args.trace_out {
            run = run.bootstrap_trace_out(path);
        }
    } else {
        run = run.collect_trace(true);
    }

    // SIGINT/SIGTERM checkpoint-preempt the run instead of killing it
    // mid-iteration: a final generation is committed when --checkpoint-out
    // is armed, and the process exits with the distinct code 4.
    exa_serve::signal::install();
    let preempt = PreemptSignal::new();
    exa_serve::signal::bridge_to(preempt.clone());
    run = run.preempt(preempt);

    let start = std::time::Instant::now();
    let out = match run.run(&compressed) {
        Ok(out) => out,
        Err(e @ examl_core::RunError::Preempted { .. }) => {
            // Reached only via the signal bridge: no other preemption
            // source exists in plain-run mode. Code 4 = "interrupted, last
            // checkpoint intact, resume with --resume".
            eprintln!("{e}");
            if args.checkpoint_out.is_some() {
                eprintln!("interrupted: final checkpoint committed, resume with --resume");
            } else {
                eprintln!("interrupted (no --checkpoint-out, progress not preserved)");
            }
            return ExitCode::from(4);
        }
        Err(e @ examl_core::RunError::Killed { .. }) => {
            // The injected kill fired after committing its checkpoint
            // budget. Exit code 3 lets restart harnesses distinguish the
            // planned kill from real failures (1) and usage errors (2).
            eprintln!("{e}");
            return ExitCode::from(3);
        }
        Err(e) => {
            // A sentinel trip arrives here as a structured diagnostic naming
            // the first divergent collective, the minority ranks and the
            // differing state component(s).
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();

    if !args.quiet {
        if let Some(bs) = &out.bootstrap {
            let mean: f64 = bs.support.values().sum::<f64>() / bs.support.len().max(1) as f64;
            eprintln!(
                "bootstrap    : {} replicates, mean split support {:.1}%",
                args.bootstrap, mean
            );
            if let Some(path) = &args.trace_out {
                eprintln!(
                    "wrote traces to {} (+ per-replicate {})",
                    path.display(),
                    examl_core::bootstrap::replicate_trace_path(path, 0).display()
                );
            }
        }
        eprintln!("final lnL    : {:.6}", out.result.lnl);
        eprintln!(
            "iterations   : {} (converged: {})",
            out.result.iterations, out.result.converged
        );
        eprintln!("SPR moves    : {}", out.result.spr_moves);
        eprintln!("wall time    : {elapsed:.2?}");
        eprintln!(
            "comm         : {} regions, {} bytes ({} B likelihood allreduces, {} B derivative allreduces)",
            out.comm_stats.total_regions(),
            out.comm_stats.total_bytes(),
            out.comm_stats.get(CommCategory::SiteLikelihoods).bytes,
            out.comm_stats.get(CommCategory::BranchLength).bytes,
        );
        // Analytic wall-time projection on the paper's reference cluster
        // (AMD Magny-Cours nodes), from this run's measured work + traffic.
        let spec = exa_comm::cluster::ClusterSpec::magny_cours(args.ranks.div_ceil(48).max(1));
        let profile = exa_comm::cluster::RunProfile::from_stats(
            &out.comm_stats,
            out.work.total(),
            out.mem_bytes,
        );
        let modeled = exa_comm::cluster::modeled_time(&spec, &profile);
        eprintln!(
            "modeled time : {:.3} s on {} nodes ({:.3} s compute, {:.3} s comm)",
            modeled.total_s, spec.nodes, modeled.compute_s, modeled.comm_s
        );
    }
    if let Some(trace) = &out.trace {
        if !args.quiet {
            eprint!("{}", exa_obs::summary_table(&trace.aggregate()));
        }
        if let Some(path) = &args.trace_out {
            if let Err(e) = exa_obs::write_chrome_trace(path, trace) {
                eprintln!("error writing trace: {e}");
                return ExitCode::FAILURE;
            }
            if !args.quiet {
                eprintln!("wrote trace to {}", path.display());
            }
        }
    }
    if !args.quiet {
        // End-of-run health report: kernel backend, sentinel verdict,
        // measured-vs-predicted load imbalance, heartbeat count, critical
        // path. The heartbeat *file* is written regardless of --quiet; only
        // this console rendering is suppressed.
        eprint!("{}", out.health.render());
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, exa_obs::metrics::global().render()) {
            eprintln!("error writing metrics: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!("wrote metrics to {}", path.display());
        }
    }
    if args.ascii {
        let names: Vec<String> = compressed.taxa.clone();
        eprintln!("{}", out.state.tree.to_ascii(&names));
    }
    let final_tree = out
        .bootstrap
        .as_ref()
        .map(|bs| bs.annotated_newick.clone())
        .unwrap_or_else(|| out.tree_newick.clone());
    match &args.out_tree {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{final_tree}\n")) {
                eprintln!("error writing tree: {e}");
                return ExitCode::FAILURE;
            }
            if !args.quiet {
                eprintln!("wrote tree to {}", path.display());
            }
        }
        None => println!("{final_tree}"),
    }
    ExitCode::SUCCESS
}
