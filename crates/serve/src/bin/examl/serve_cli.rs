//! `examl serve` — daemon mode and client verbs for `exa-serve`.
//!
//! ```text
//! examl serve daemon --spool DIR [--listen 127.0.0.1:0] [--workers N] ...
//! examl serve submit --to ADDR --alignment FILE [--tenant T] [--priority P] ...
//! examl serve status|cancel|wait --to ADDR ID
//! examl serve resize --to ADDR N
//! examl serve list|health|metrics|shutdown --to ADDR
//! ```
//!
//! The daemon prints `listening on <addr>` once the socket is bound (with
//! `--listen …:0` the OS picks the port, so scripts parse this line), then
//! serves until SIGINT/SIGTERM or a `shutdown` request — either way running
//! jobs are checkpoint-preempted and re-queued in the journal, so the next
//! daemon on the same spool resumes them.

use exa_search::SearchConfig;
use exa_serve::client::Client;
use exa_serve::daemon::{Daemon, DaemonConfig};
use exa_serve::scheduler::TenantConfig;
use exa_serve::{http, signal, JobSpec, JobStatus};
use examl_core::RunConfig;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: examl serve <verb> [options]\n\
verbs:\n\
  daemon     run the inference daemon\n\
    --spool DIR             job journal + per-job state (required)\n\
    --listen ADDR           bind address (default 127.0.0.1:0; the chosen\n\
                            address is printed as `listening on ADDR`)\n\
    --workers N             concurrent runs (default 2)\n\
    --quantum N             scheduler quantum (default 1)\n\
    --tenant NAME:WEIGHT[:MAX_RUNNING]\n\
                            per-tenant fair-share weight and quota\n\
                            (repeatable; default weight 1, no quota)\n\
    --checkpoint-every N    per-job iteration checkpoint cadence (default 1)\n\
    --checkpoint-every-secs S  per-job time cadence\n\
    --checkpoint-keep N     generations retained per job (default 3)\n\
  submit     submit a job; prints the job id\n\
    --to ADDR               daemon address (required)\n\
    --alignment FILE        .exml binary or PHYLIP/FASTA text (required)\n\
    --partitions FILE       RAxML-style partition file\n\
    --tenant NAME           tenant to bill (default \"default\")\n\
    --priority N            priority class, higher preempts (default 0)\n\
    --cost N                scheduler cost estimate (default 1)\n\
    --ranks N --iterations N --radius N --epsilon X --seed N\n\
                            forwarded into the job's RunConfig\n\
  status ID  print one job as JSON        cancel ID   cancel a job\n\
  wait ID    block until terminal [--timeout-secs S (default 600)]\n\
  resize N   retarget the worker pool to N threads (grow spawns now;\n\
             shrink lets excess workers drain after their current job)\n\
  list       print all jobs as JSON\n\
  health     print daemon gauges [--stream N [--interval-ms M]]\n\
  metrics    print the daemon's Prometheus text-format snapshot\n\
  shutdown   checkpoint running jobs and stop the daemon";

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

pub fn main(args: Vec<String>) -> ExitCode {
    let mut it = args.into_iter();
    let verb = match it.next() {
        Some(v) => v,
        None => return fail("missing serve verb"),
    };
    let rest: Vec<String> = it.collect();
    match verb.as_str() {
        "daemon" => daemon_main(rest),
        "submit" => submit_main(rest),
        "status" => id_verb(rest, |c, id| c.status(id).map(print_status)),
        "cancel" => id_verb(rest, |c, id| {
            c.cancel(id).map(|hit| println!("cancelled: {hit}"))
        }),
        "wait" => wait_main(rest),
        "list" => client_verb(rest, |c| {
            c.list().map(|jobs| jobs.iter().for_each(print_status_ref))
        }),
        "health" => health_main(rest),
        "resize" => id_verb(rest, |c, n| {
            c.resize(n)
                .map(|(previous, new)| println!("workers: {previous} -> {new}"))
        }),
        "metrics" => client_verb(rest, |c| c.metrics().map(|text| print!("{text}"))),
        "shutdown" => client_verb(rest, |c| {
            c.shutdown().map(|()| println!("shutdown requested"))
        }),
        "--help" | "-h" => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown serve verb {other:?}")),
    }
}

fn print_status(st: JobStatus) {
    print_status_ref(&st);
}

fn print_status_ref(st: &JobStatus) {
    println!(
        "{}",
        serde_json::to_string(st).expect("status serialization cannot fail")
    );
}

/// Pull `--to ADDR` out of an argument list, returning the client and the
/// remaining arguments.
fn split_to(args: Vec<String>) -> Result<(Client, Vec<String>), String> {
    let mut rest = Vec::new();
    let mut addr = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--to" {
            addr = Some(it.next().ok_or("missing value for --to")?);
        } else {
            rest.push(a);
        }
    }
    let addr = addr.ok_or("missing --to ADDR")?;
    Ok((Client::new(addr), rest))
}

fn client_verb(args: Vec<String>, f: impl FnOnce(&Client) -> Result<(), String>) -> ExitCode {
    let (client, rest) = match split_to(args) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    if let Some(extra) = rest.first() {
        return fail(&format!("unexpected argument {extra:?}"));
    }
    match f(&client) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn id_verb(args: Vec<String>, f: impl FnOnce(&Client, u64) -> Result<(), String>) -> ExitCode {
    let (client, rest) = match split_to(args) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let id = match rest.first().map(|s| s.parse::<u64>()) {
        Some(Ok(id)) => id,
        _ => return fail("expected a numeric job ID"),
    };
    match f(&client, id) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn wait_main(args: Vec<String>) -> ExitCode {
    let (client, rest) = match split_to(args) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let mut id = None;
    let mut timeout = Duration::from_secs(600);
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timeout-secs" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => timeout = Duration::from_secs(s),
                _ => return fail("bad --timeout-secs"),
            },
            other => match other.parse::<u64>() {
                Ok(n) => id = Some(n),
                Err(_) => return fail(&format!("unexpected argument {other:?}")),
            },
        }
    }
    let Some(id) = id else {
        return fail("expected a numeric job ID");
    };
    match client.wait(id, timeout) {
        Ok(st) => {
            print_status(st);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn health_main(args: Vec<String>) -> ExitCode {
    let (client, rest) = match split_to(args) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let mut stream = None;
    let mut interval_ms = 200;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stream" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => stream = Some(n),
                _ => return fail("bad --stream count"),
            },
            "--interval-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => interval_ms = n,
                _ => return fail("bad --interval-ms"),
            },
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }
    let result = match stream {
        None => client.health().map(|hb| println!("{}", hb.to_json_line())),
        Some(n) => client.stream_health(n, interval_ms).map(|hbs| {
            for hb in hbs {
                println!("{}", hb.to_json_line());
            }
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn submit_main(args: Vec<String>) -> ExitCode {
    let (client, rest) = match split_to(args) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let mut alignment = None;
    let mut partitions = None;
    let mut tenant = "default".to_string();
    let mut priority = 0u32;
    let mut cost = 1u64;
    let mut ranks = 2usize;
    let mut search = SearchConfig::default();
    let mut seed = 42u64;
    let mut it = rest.into_iter();
    macro_rules! val {
        ($flag:expr) => {
            match it.next() {
                Some(v) => v,
                None => return fail(&format!("missing value for {}", $flag)),
            }
        };
    }
    macro_rules! num {
        ($flag:expr) => {
            match val!($flag).parse() {
                Ok(v) => v,
                Err(_) => return fail(&format!("bad value for {}", $flag)),
            }
        };
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--alignment" => alignment = Some(std::path::PathBuf::from(val!("--alignment"))),
            "--partitions" => partitions = Some(std::path::PathBuf::from(val!("--partitions"))),
            "--tenant" => tenant = val!("--tenant"),
            "--priority" => priority = num!("--priority"),
            "--cost" => cost = num!("--cost"),
            "--ranks" => ranks = num!("--ranks"),
            "--iterations" => search.max_iterations = num!("--iterations"),
            "--radius" => search.spr_radius = num!("--radius"),
            "--epsilon" => search.epsilon = num!("--epsilon"),
            "--seed" => seed = num!("--seed"),
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(alignment) = alignment else {
        return fail("missing --alignment FILE");
    };
    let spec = JobSpec {
        tenant,
        priority,
        cost,
        alignment,
        partitions,
        config: RunConfig::new(ranks).search(search).seed(seed),
    };
    match client.submit(&spec) {
        Ok(id) => {
            println!("{id}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_tenant(spec: &str) -> Option<(String, TenantConfig)> {
    let mut parts = spec.splitn(3, ':');
    let name = parts.next()?.to_string();
    let weight: u64 = parts.next()?.parse().ok()?;
    let max_running = match parts.next() {
        Some(m) => m.parse().ok()?,
        None => usize::MAX,
    };
    Some((
        name,
        TenantConfig {
            weight,
            max_running,
        },
    ))
}

fn daemon_main(args: Vec<String>) -> ExitCode {
    let mut listen = "127.0.0.1:0".to_string();
    let mut spool = None;
    let mut cfg_workers = 2usize;
    let mut quantum = 1u64;
    let mut tenants = Vec::new();
    let mut checkpoint_every = 1usize;
    let mut checkpoint_every_secs = None;
    let mut checkpoint_keep = examl_core::checkpoint::KEEP_GENERATIONS;
    let mut it = args.into_iter();
    macro_rules! val {
        ($flag:expr) => {
            match it.next() {
                Some(v) => v,
                None => return fail(&format!("missing value for {}", $flag)),
            }
        };
    }
    macro_rules! num {
        ($flag:expr) => {
            match val!($flag).parse() {
                Ok(v) => v,
                Err(_) => return fail(&format!("bad value for {}", $flag)),
            }
        };
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = val!("--listen"),
            "--spool" => spool = Some(std::path::PathBuf::from(val!("--spool"))),
            "--workers" => cfg_workers = num!("--workers"),
            "--quantum" => quantum = num!("--quantum"),
            "--tenant" => {
                let spec = val!("--tenant");
                match parse_tenant(&spec) {
                    Some(t) => tenants.push(t),
                    None => return fail(&format!("bad --tenant {spec:?}")),
                }
            }
            "--checkpoint-every" => checkpoint_every = num!("--checkpoint-every"),
            "--checkpoint-every-secs" => {
                checkpoint_every_secs = Some(num!("--checkpoint-every-secs"))
            }
            "--checkpoint-keep" => checkpoint_keep = num!("--checkpoint-keep"),
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(spool) = spool else {
        return fail("missing --spool DIR");
    };
    let cfg = DaemonConfig {
        workers: cfg_workers,
        quantum,
        tenants,
        checkpoint_every,
        checkpoint_every_secs,
        checkpoint_keep,
        ..DaemonConfig::new(spool)
    };
    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match std::net::TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            daemon.shutdown();
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(_) => println!("listening on {listen}"),
    }
    // Scripts parse the line above from a pipe — don't let it sit in the
    // block buffer until shutdown.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    signal::install();
    let accept = http::spawn(daemon.clone(), listener);
    // Serve until a termination signal or a client shutdown request.
    while !signal::termination_requested() && !daemon.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
    }
    daemon.shutdown();
    let _ = accept.join();
    eprintln!("daemon stopped (running jobs checkpointed and re-queued)");
    ExitCode::SUCCESS
}
