//! The daemon core: a journaled job table, the fair-share scheduler, and a
//! bounded worker pool executing `examl-core` runs with cooperative
//! checkpoint-preemption.
//!
//! All mutable state lives in one `Mutex<Core>`; workers park on a condvar
//! and race for dispatches through [`scheduler::FairShare`]. The invariant
//! that makes the queue crash-safe: **every state transition is fsynced to
//! the journal before it takes effect in memory**, so replaying the journal
//! always reconstructs a state the daemon actually passed through (modulo a
//! torn final append, which is dropped).
//!
//! Preemption handshake (the checkpoint-preemptive part of fair share):
//!
//! 1. `submit` finds no idle worker and a running job with strictly lower
//!    priority → it raises that job's [`PreemptSignal`].
//! 2. The run observes the signal at its next iteration boundary (both
//!    schemes agree collectively in the de-centralized driver), commits a
//!    final checkpoint generation, and unwinds as
//!    [`RunError::Preempted`](examl_core::RunError::Preempted).
//! 3. The worker journals `Preempted`, re-queues the job at the front of
//!    its priority class with `resume_next`, and goes back to the pool —
//!    freeing the worker for the higher-priority job.
//! 4. When the job is dispatched again it resumes from the newest intact
//!    generation in its spool directory, exactly like `--resume`; the
//!    deterministic replicated search makes the resumed trajectory
//!    bit-identical to an uninterrupted run.
//!
//! Cancellation of a running job and daemon shutdown reuse the same
//! signal: both are "checkpoint at the next boundary and unwind", differing
//! only in what the worker does with the carcass.

use crate::journal::{Journal, JournalEvent};
use crate::scheduler::{FairShare, TenantConfig};
use crate::{JobId, JobSpec, JobState, JobStatus};
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_obs::metrics::{Counter, Gauge, Histogram, Registry};
use exa_obs::{ServeHeartbeat, TenantGauge};
use exa_search::PreemptSignal;
use examl_core::{checkpoint, RunError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Daemon-wide policy: spool location, pool size, scheduling and checkpoint
/// knobs applied to every job.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Spool directory: journal plus one subdirectory per job.
    pub spool: PathBuf,
    /// Worker threads (concurrent runs).
    pub workers: usize,
    /// Scheduler quantum (deficit credited per dispatch attempt).
    pub quantum: u64,
    /// Policy for tenants not named in `tenants`.
    pub default_tenant: TenantConfig,
    /// Named per-tenant overrides (weight, concurrency quota).
    pub tenants: Vec<(String, TenantConfig)>,
    /// Iteration checkpoint cadence forced onto every job (0 = only the
    /// time cadence / preemption commits).
    pub checkpoint_every: usize,
    /// Optional time cadence forced onto every job.
    pub checkpoint_every_secs: Option<f64>,
    /// Checkpoint generations retained per job.
    pub checkpoint_keep: usize,
}

impl DaemonConfig {
    /// Defaults: 2 workers, quantum 1, unit weights, unbounded quotas,
    /// checkpoint every iteration, keep the standard window.
    pub fn new(spool: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            spool: spool.into(),
            workers: 2,
            quantum: 1,
            default_tenant: TenantConfig::default(),
            tenants: Vec::new(),
            checkpoint_every: 1,
            checkpoint_every_secs: None,
            checkpoint_keep: checkpoint::KEEP_GENERATIONS,
        }
    }
}

/// In-memory job record. The journal is authoritative; this mirrors it.
#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    attempts: u64,
    preemptions: u64,
    /// Next dispatch should resume from the job's checkpoint directory.
    resume_next: bool,
    cancel_requested: bool,
    /// Present exactly while the job is running.
    preempt: Option<PreemptSignal>,
    submitted_at: Instant,
    first_dispatch: Option<Instant>,
}

/// The daemon's instrument handles, all registered in one daemon-private
/// [`Registry`]. These are the *authoritative* tallies: `heartbeat()` reads
/// the same atomics `GET /metrics` renders, so `/stream-health` and
/// `/metrics` can never disagree. The registry is per-daemon (not the
/// process-global one) so several in-process daemons — common in tests —
/// don't bleed counters into each other; run-layer instrumentation still
/// lands in [`exa_obs::metrics::global`] and both are concatenated at
/// scrape time.
struct DaemonMetrics {
    registry: Arc<Registry>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    cancelled: Arc<Counter>,
    preemptions: Arc<Counter>,
    resumes: Arc<Counter>,
    /// Queue wait, submit → first dispatch. The heartbeat's mean is this
    /// histogram's `sum / count`.
    queue_wait_ms: Arc<Histogram>,
    max_wait_ms: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    running: Arc<Gauge>,
    workers_idle: Arc<Gauge>,
    uptime_secs: Arc<Gauge>,
    journal_fsync_ms: Arc<Histogram>,
    pool_resizes: Arc<Counter>,
    pool_workers: Arc<Gauge>,
}

impl DaemonMetrics {
    fn new() -> DaemonMetrics {
        let registry = Arc::new(Registry::new());
        registry.set_enabled(true);
        let r = &registry;
        DaemonMetrics {
            completed: r.counter(
                "exa_jobs_completed_total",
                "Jobs finished successfully since daemon start (journal replay included).",
                &[],
            ),
            failed: r.counter(
                "exa_jobs_failed_total",
                "Jobs that ended in an error since daemon start.",
                &[],
            ),
            cancelled: r.counter(
                "exa_jobs_cancelled_total",
                "Jobs cancelled since daemon start.",
                &[],
            ),
            preemptions: r.counter(
                "exa_preemptions_total",
                "Checkpoint-preemptions performed (a job may contribute several).",
                &[],
            ),
            resumes: r.counter(
                "exa_resumes_total",
                "Runs started from a checkpoint left by a previous attempt.",
                &[],
            ),
            queue_wait_ms: r.histogram(
                "exa_queue_wait_ms",
                "Queue wait per job, submit to first dispatch, in milliseconds.",
                &[],
            ),
            max_wait_ms: r.gauge(
                "exa_queue_wait_max_ms",
                "Worst queue wait so far, submit to first dispatch, in milliseconds.",
                &[],
            ),
            queue_depth: r.gauge(
                "exa_queue_depth",
                "Jobs waiting in the scheduler (not running, not terminal).",
                &[],
            ),
            running: r.gauge(
                "exa_jobs_running",
                "Jobs currently executing on a worker.",
                &[],
            ),
            workers_idle: r.gauge(
                "exa_workers_idle",
                "Workers parked waiting for dispatchable jobs.",
                &[],
            ),
            uptime_secs: r.gauge(
                "exa_daemon_uptime_seconds",
                "Seconds since this daemon process started.",
                &[],
            ),
            journal_fsync_ms: r.histogram(
                "exa_journal_fsync_ms",
                "Journal append latency (write + flush + fdatasync), in milliseconds.",
                &[],
            ),
            pool_resizes: r.counter(
                "exa_pool_resizes_total",
                "Worker-pool resizes performed via the resize verb.",
                &[],
            ),
            pool_workers: r.gauge(
                "exa_pool_workers",
                "Current worker-pool target size (threads executing runs).",
                &[],
            ),
            registry,
        }
    }

    fn submitted(&self, tenant: &str) -> Arc<Counter> {
        self.registry.counter(
            "exa_jobs_submitted_total",
            "Jobs admitted, by tenant.",
            &[("tenant", tenant)],
        )
    }

    fn run_duration_ms(&self, outcome: &str) -> Arc<Histogram> {
        self.registry.histogram(
            "exa_run_duration_ms",
            "Wall-clock milliseconds per dispatch, by outcome \
             (done/preempted/error).",
            &[("outcome", outcome)],
        )
    }

    fn http_request_ms(&self, verb: &str) -> Arc<Histogram> {
        self.registry.histogram(
            "exa_http_request_ms",
            "Request handling latency on the dual-protocol listener, by verb.",
            &[("verb", verb)],
        )
    }
}

struct Core {
    cfg: DaemonConfig,
    jobs: BTreeMap<JobId, JobEntry>,
    sched: FairShare,
    journal: Journal,
    next_id: JobId,
    shutdown: bool,
    workers_idle: u64,
    /// Elastic pool: live worker threads vs. the target set by `resize`.
    /// Excess workers exit when they next return to the pool; deficits are
    /// covered by spawning on the resize call itself.
    pool_size: usize,
    pool_target: usize,
    metrics: DaemonMetrics,
    started_at: Instant,
    /// Locally-resolved capability labels, advertised in the heartbeat.
    kernel_label: &'static str,
    site_repeats_label: &'static str,
    reduce_label: &'static str,
    gradient_label: &'static str,
    health_seq: u64,
}

struct Inner {
    state: Mutex<Core>,
    cv: Condvar,
}

/// Cloneable handle on a running daemon. [`Daemon::shutdown`] checkpoints
/// and re-queues running jobs, then joins the pool.
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

fn lock(inner: &Inner) -> MutexGuard<'_, Core> {
    // A worker panicking mid-update is already a bug; keep serving.
    inner.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Daemon {
    /// Open the spool (replaying the journal) and start the worker pool.
    /// Jobs that were queued re-enter the scheduler; jobs that were running
    /// when the previous process died are re-queued and will resume from
    /// their newest intact checkpoint generation.
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        let (mut journal, events) = Journal::open(&cfg.spool)?;
        let metrics = DaemonMetrics::new();
        journal.set_fsync_histogram(Arc::clone(&metrics.journal_fsync_ms));
        // Run-layer instrumentation (collectives, kernels, checkpoint
        // writes) lands in the process-global registry; turn it on so the
        // jobs this daemon executes show up in `GET /metrics`.
        exa_obs::metrics::global().set_enabled(true);
        let mut sched = FairShare::new(cfg.quantum, cfg.default_tenant);
        for (name, tenant_cfg) in &cfg.tenants {
            sched.set_tenant(name, *tenant_cfg);
        }
        let mut core = Core {
            cfg,
            jobs: BTreeMap::new(),
            sched,
            journal,
            next_id: 1,
            shutdown: false,
            workers_idle: 0,
            pool_size: 0,
            pool_target: 0,
            metrics,
            started_at: Instant::now(),
            kernel_label: exa_phylo::engine::KernelChoice::from_env()
                .resolve_local()
                .label(),
            site_repeats_label: exa_phylo::engine::RepeatsChoice::from_env()
                .resolve_local()
                .label(),
            reduce_label: exa_comm::ReduceChoice::from_env().resolve_local().label(),
            gradient_label: exa_phylo::engine::GradientChoice::from_env()
                .resolve_local()
                .label(),
            health_seq: 0,
        };
        core.replay(events);
        let workers = core.cfg.workers.max(1);
        core.pool_size = workers;
        core.pool_target = workers;
        core.metrics.pool_workers.set(workers as f64);
        let inner = Arc::new(Inner {
            state: Mutex::new(core),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Daemon {
            inner,
            workers: Arc::new(Mutex::new(handles)),
        })
    }

    /// Admit a job: journal it, enqueue it, and — when every worker is busy
    /// and some running job has strictly lower priority — raise that job's
    /// preempt signal so this submission gets a worker at the victim's next
    /// iteration boundary.
    pub fn submit(&self, spec: JobSpec) -> std::io::Result<JobId> {
        let mut core = lock(&self.inner);
        if core.shutdown {
            return Err(std::io::Error::other("daemon is shutting down"));
        }
        let id = core.next_id;
        core.next_id += 1;
        core.journal.append(&JournalEvent::Submitted {
            id,
            spec: Box::new(spec.clone()),
        })?;
        core.metrics.submitted(&spec.tenant).inc();
        core.sched
            .enqueue(id, &spec.tenant, spec.priority, spec.cost);
        let priority = spec.priority;
        core.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                attempts: 0,
                preemptions: 0,
                resume_next: false,
                cancel_requested: false,
                preempt: None,
                submitted_at: Instant::now(),
                first_dispatch: None,
            },
        );
        if core.workers_idle == 0 {
            core.preempt_lowest_below(priority);
        }
        self.inner.cv.notify_all();
        Ok(id)
    }

    /// Snapshot one job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let core = lock(&self.inner);
        core.jobs.get(&id).map(|e| snapshot(id, e))
    }

    /// Snapshot every job, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        let core = lock(&self.inner);
        core.jobs.iter().map(|(id, e)| snapshot(*id, e)).collect()
    }

    /// Cancel a job. A queued job is removed immediately; a running job is
    /// checkpoint-preempted and lands in `Cancelled` once it unwinds.
    /// Returns whether a cancellation was initiated.
    pub fn cancel(&self, id: JobId) -> std::io::Result<bool> {
        let mut core = lock(&self.inner);
        let Some(entry) = core.jobs.get(&id) else {
            return Ok(false);
        };
        match entry.state {
            JobState::Queued => {
                core.journal.append(&JournalEvent::Cancelled { id })?;
                core.sched.cancel(id);
                let entry = core.jobs.get_mut(&id).unwrap();
                entry.state = JobState::Cancelled;
                core.metrics.cancelled.inc();
                Ok(true)
            }
            JobState::Running => {
                let entry = core.jobs.get_mut(&id).unwrap();
                entry.cancel_requested = true;
                if let Some(sig) = &entry.preempt {
                    sig.request();
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Resize the worker pool to `workers` threads (clamped to ≥ 1).
    /// Growing spawns the missing workers immediately; shrinking lets the
    /// excess workers finish their current job and exit when they next
    /// return to the pool — running jobs are never interrupted. Returns
    /// `(previous_target, new_target)`.
    pub fn resize(&self, workers: usize) -> std::io::Result<(usize, usize)> {
        let workers = workers.max(1);
        let (previous, to_spawn) = {
            let mut core = lock(&self.inner);
            if core.shutdown {
                return Err(std::io::Error::other("daemon is shutting down"));
            }
            let previous = core.pool_target;
            core.pool_target = workers;
            core.metrics.pool_resizes.inc();
            core.metrics.pool_workers.set(workers as f64);
            let to_spawn = workers.saturating_sub(core.pool_size);
            core.pool_size += to_spawn;
            (previous, to_spawn)
        };
        let mut handles = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..to_spawn {
            let inner = Arc::clone(&self.inner);
            handles.push(std::thread::spawn(move || worker_loop(&inner)));
        }
        drop(handles);
        // Wake parked workers so a shrink is observed without waiting for
        // the next submit.
        self.inner.cv.notify_all();
        Ok((previous, workers))
    }

    /// Current daemon gauges as one [`ServeHeartbeat`].
    pub fn health(&self) -> ServeHeartbeat {
        let mut core = lock(&self.inner);
        core.health_seq += 1;
        core.heartbeat()
    }

    /// Prometheus text-format snapshot: the daemon's own registry (queue,
    /// pool and journal instruments, with live gauges refreshed under the
    /// lock) concatenated with the process-global registry (run-layer
    /// collective/kernel/checkpoint instruments).
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        {
            let core = lock(&self.inner);
            let running = core
                .jobs
                .values()
                .filter(|e| e.state == JobState::Running)
                .count();
            core.metrics.queue_depth.set(core.sched.depth() as f64);
            core.metrics.running.set(running as f64);
            core.metrics.workers_idle.set(core.workers_idle as f64);
            core.metrics
                .uptime_secs
                .set(core.started_at.elapsed().as_secs_f64());
            core.metrics.registry.render_into(&mut out);
        }
        exa_obs::metrics::global().render_into(&mut out);
        out
    }

    /// Latency histogram for one listener verb (`submit`, `status`, …),
    /// registered in the daemon's registry on first use.
    pub fn http_request_histogram(&self, verb: &str) -> Arc<Histogram> {
        lock(&self.inner).metrics.http_request_ms(verb)
    }

    /// Path of a per-job spool artifact (`trace.json`, `health.jsonl`),
    /// or `None` for an unknown job id. The file itself may not exist yet —
    /// callers map that to 404.
    pub fn job_artifact(&self, id: JobId, file: &str) -> Option<PathBuf> {
        let core = lock(&self.inner);
        core.jobs
            .contains_key(&id)
            .then(|| core.job_dir(id).join(file))
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        lock(&self.inner).shutdown
    }

    /// Stop accepting work, checkpoint-preempt running jobs (journaled as
    /// `Preempted`, so a later daemon resumes them), join the pool, and
    /// compact the journal.
    pub fn shutdown(&self) {
        {
            let mut core = lock(&self.inner);
            core.shutdown = true;
            for entry in core.jobs.values() {
                if let Some(sig) = &entry.preempt {
                    sig.request();
                }
            }
            self.inner.cv.notify_all();
        }
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let mut core = lock(&self.inner);
        let snapshot_events = core.compaction_events();
        let _ = core.journal.compact(&snapshot_events);
    }
}

fn snapshot(id: JobId, e: &JobEntry) -> JobStatus {
    JobStatus {
        id,
        tenant: e.spec.tenant.clone(),
        priority: e.spec.priority,
        cost: e.spec.cost,
        state: e.state.clone(),
        attempts: e.attempts,
        preemptions: e.preemptions,
        wait_ms: e
            .first_dispatch
            .map(|t| t.duration_since(e.submitted_at).as_secs_f64() * 1e3),
    }
}

impl Core {
    /// Fold replayed journal events back into job table + scheduler.
    fn replay(&mut self, events: Vec<JournalEvent>) {
        for ev in events {
            match ev {
                JournalEvent::Submitted { id, spec } => {
                    self.next_id = self.next_id.max(id + 1);
                    self.jobs.insert(
                        id,
                        JobEntry {
                            spec: *spec,
                            state: JobState::Queued,
                            attempts: 0,
                            preemptions: 0,
                            resume_next: false,
                            cancel_requested: false,
                            preempt: None,
                            submitted_at: Instant::now(),
                            first_dispatch: None,
                        },
                    );
                }
                JournalEvent::Started { id } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Running;
                        e.attempts += 1;
                    }
                }
                JournalEvent::Preempted { id } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Queued;
                        e.resume_next = true;
                        e.preemptions += 1;
                        self.metrics.preemptions.inc();
                    }
                }
                JournalEvent::Cancelled { id } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Cancelled;
                        self.metrics.cancelled.inc();
                    }
                }
                JournalEvent::Completed {
                    id,
                    lnl,
                    iterations,
                } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Completed { lnl, iterations };
                        self.metrics.completed.inc();
                    }
                }
                JournalEvent::Failed { id, error } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Failed { error };
                        self.metrics.failed.inc();
                    }
                }
            }
        }
        // Jobs caught mid-run by a daemon crash restart from their last
        // committed generation, like any other preemption.
        let ids: Vec<JobId> = self.jobs.keys().copied().collect();
        for id in ids {
            let e = self.jobs.get_mut(&id).unwrap();
            if e.state == JobState::Running {
                e.state = JobState::Queued;
                e.resume_next = true;
            }
            if e.state == JobState::Queued {
                let (tenant, priority, cost) =
                    (e.spec.tenant.clone(), e.spec.priority, e.spec.cost);
                if e.resume_next {
                    self.sched.requeue_front(id, &tenant, priority, cost);
                } else {
                    self.sched.enqueue(id, &tenant, priority, cost);
                }
            }
        }
    }

    /// Raise the preempt signal of the lowest-priority running job whose
    /// priority is strictly below `incoming`, if any (skipping jobs already
    /// asked to stop).
    fn preempt_lowest_below(&mut self, incoming: u32) {
        let victim = self
            .jobs
            .iter()
            .filter(|(_, e)| e.state == JobState::Running)
            .filter(|(_, e)| e.spec.priority < incoming)
            .filter(|(_, e)| e.preempt.as_ref().is_some_and(|s| !s.is_requested()))
            .min_by_key(|(id, e)| (e.spec.priority, std::cmp::Reverse(**id)))
            .map(|(id, _)| *id);
        if let Some(id) = victim {
            if let Some(sig) = &self.jobs[&id].preempt {
                sig.request();
            }
        }
    }

    fn running_count(&self, tenant: &str) -> usize {
        self.jobs
            .values()
            .filter(|e| e.state == JobState::Running && e.spec.tenant == tenant)
            .count()
    }

    fn heartbeat(&self) -> ServeHeartbeat {
        let running = self
            .jobs
            .values()
            .filter(|e| e.state == JobState::Running)
            .count() as u64;
        let tenants = self
            .sched
            .gauges()
            .into_iter()
            .map(|(tenant, queued, dispatched)| {
                let running = self.running_count(&tenant) as u64;
                TenantGauge {
                    tenant,
                    queued,
                    running,
                    dispatched,
                }
            })
            .collect();
        // Terminal/wait tallies come straight from the registry's atomics —
        // the same ones `GET /metrics` renders — so the two surfaces cannot
        // drift apart.
        let m = &self.metrics;
        let wait_count = m.queue_wait_ms.count();
        ServeHeartbeat {
            seq: self.health_seq,
            queue_depth: self.sched.depth() as u64,
            running,
            workers_idle: self.workers_idle,
            completed: m.completed.get(),
            failed: m.failed.get(),
            cancelled: m.cancelled.get(),
            preemptions: m.preemptions.get(),
            resumes: m.resumes.get(),
            max_wait_ms: m.max_wait_ms.get(),
            mean_wait_ms: if wait_count == 0 {
                0.0
            } else {
                m.queue_wait_ms.sum() / wait_count as f64
            },
            tenants,
            version: Some(env!("CARGO_PKG_VERSION").to_string()),
            kernel: Some(self.kernel_label.to_string()),
            site_repeats: Some(self.site_repeats_label.to_string()),
            uptime_secs: Some(self.started_at.elapsed().as_secs_f64()),
            reduce: Some(self.reduce_label.to_string()),
            gradient: Some(self.gradient_label.to_string()),
        }
    }

    /// Minimal journal equivalent to the current state: one `Submitted` per
    /// non-terminal job (+ `Preempted` when it must resume). Terminal jobs
    /// are dropped — their history is no longer needed for recovery.
    fn compaction_events(&self) -> Vec<JournalEvent> {
        let mut events = Vec::new();
        for (id, e) in &self.jobs {
            if e.state.is_terminal() {
                continue;
            }
            events.push(JournalEvent::Submitted {
                id: *id,
                spec: Box::new(e.spec.clone()),
            });
            if e.resume_next || e.state == JobState::Running {
                events.push(JournalEvent::Started { id: *id });
                events.push(JournalEvent::Preempted { id: *id });
            }
        }
        events
    }

    fn job_dir(&self, id: JobId) -> PathBuf {
        self.cfg.spool.join("jobs").join(format!("{id:08}"))
    }
}

/// What one dispatch needs outside the lock.
struct Dispatch {
    id: JobId,
    spec: JobSpec,
    resume: bool,
    signal: PreemptSignal,
    job_dir: PathBuf,
}

fn try_dispatch(core: &mut Core) -> Option<Dispatch> {
    let counts: std::collections::HashMap<String, usize> = core
        .jobs
        .values()
        .filter(|e| e.state == JobState::Running)
        .fold(std::collections::HashMap::new(), |mut m, e| {
            *m.entry(e.spec.tenant.clone()).or_insert(0) += 1;
            m
        });
    let picked = core
        .sched
        .next(&|tenant| counts.get(tenant).copied().unwrap_or(0))?;
    let id = picked.id;
    let job_dir = core.job_dir(id);
    // Resume only when a previous attempt actually committed a generation.
    let resume = {
        let e = &core.jobs[&id];
        e.resume_next && checkpoint::load_latest(&job_dir.join("ckpt")).is_ok()
    };
    if core.journal.append(&JournalEvent::Started { id }).is_err() {
        // Journal write failed: put the job back rather than running it
        // un-journaled.
        let e = &core.jobs[&id];
        let (tenant, priority, cost) = (e.spec.tenant.clone(), e.spec.priority, e.spec.cost);
        core.sched.requeue_front(id, &tenant, priority, cost);
        return None;
    }
    let now = Instant::now();
    let signal = PreemptSignal::new();
    let e = core.jobs.get_mut(&id).unwrap();
    e.state = JobState::Running;
    e.attempts += 1;
    e.preempt = Some(signal.clone());
    if e.first_dispatch.is_none() {
        e.first_dispatch = Some(now);
        let wait_ms = now.duration_since(e.submitted_at).as_secs_f64() * 1e3;
        core.metrics.queue_wait_ms.observe(wait_ms);
        core.metrics.max_wait_ms.set_max(wait_ms);
    }
    if resume {
        core.metrics.resumes.inc();
    }
    Some(Dispatch {
        id,
        spec: core.jobs[&id].spec.clone(),
        resume,
        signal,
        job_dir,
    })
}

fn worker_loop(inner: &Inner) {
    // Immutable after start; clone outside the dispatch loop so the run
    // itself never holds the daemon lock.
    let cfg = lock(inner).cfg.clone();
    loop {
        let dispatch = {
            let mut core = lock(inner);
            core.workers_idle += 1;
            let d = loop {
                if core.shutdown || core.pool_size > core.pool_target {
                    core.workers_idle -= 1;
                    core.pool_size -= 1;
                    return;
                }
                if let Some(d) = try_dispatch(&mut core) {
                    break d;
                }
                core = inner.cv.wait(core).unwrap_or_else(|e| e.into_inner());
            };
            core.workers_idle -= 1;
            d
        };
        let run_t0 = Instant::now();
        let result = run_job(&dispatch, &cfg);
        let run_ms = run_t0.elapsed().as_secs_f64() * 1e3;
        let mut core = lock(inner);
        let outcome_label = match &result {
            JobOutcome::Done { .. } => "done",
            JobOutcome::Preempted => "preempted",
            JobOutcome::Error(_) => "error",
        };
        core.metrics.run_duration_ms(outcome_label).observe(run_ms);
        let id = dispatch.id;
        match result {
            JobOutcome::Done { lnl, iterations } => {
                let _ = core.journal.append(&JournalEvent::Completed {
                    id,
                    lnl,
                    iterations,
                });
                let e = core.jobs.get_mut(&id).unwrap();
                e.state = JobState::Completed { lnl, iterations };
                e.preempt = None;
                core.metrics.completed.inc();
            }
            JobOutcome::Preempted => {
                core.metrics.preemptions.inc();
                let e = core.jobs.get_mut(&id).unwrap();
                e.preemptions += 1;
                e.preempt = None;
                if e.cancel_requested {
                    let _ = core.journal.append(&JournalEvent::Cancelled { id });
                    let e = core.jobs.get_mut(&id).unwrap();
                    e.state = JobState::Cancelled;
                    core.metrics.cancelled.inc();
                } else {
                    // Either a higher-priority job displaced us, or the
                    // daemon is shutting down. Both re-queue for resume.
                    let _ = core.journal.append(&JournalEvent::Preempted { id });
                    let e = core.jobs.get_mut(&id).unwrap();
                    e.state = JobState::Queued;
                    e.resume_next = true;
                    let (tenant, priority, cost) =
                        (e.spec.tenant.clone(), e.spec.priority, e.spec.cost);
                    core.sched.requeue_front(id, &tenant, priority, cost);
                }
            }
            JobOutcome::Error(error) => {
                let _ = core.journal.append(&JournalEvent::Failed {
                    id,
                    error: error.clone(),
                });
                let e = core.jobs.get_mut(&id).unwrap();
                e.state = JobState::Failed { error };
                e.preempt = None;
                core.metrics.failed.inc();
            }
        }
        // A finished/requeued job may unblock a tenant quota or leave work
        // for other parked workers.
        inner.cv.notify_all();
    }
}

enum JobOutcome {
    Done { lnl: f64, iterations: u64 },
    Preempted,
    Error(String),
}

/// Load the job's alignment: `exa-bio` binary first, then PHYLIP, then
/// FASTA text.
fn load_alignment(path: &Path, partitions: Option<&Path>) -> Result<CompressedAlignment, String> {
    if let Ok(compressed) = exa_bio::binary::read_file(path) {
        return Ok(compressed);
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read alignment {}: {e}", path.display()))?;
    let alignment = exa_bio::phylip::parse_phylip_auto(&text)
        .or_else(|_| exa_bio::fasta::parse_fasta(&text))
        .map_err(|e| format!("cannot parse alignment {}: {e}", path.display()))?;
    let scheme = match partitions {
        Some(p) => {
            let ptext = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read partitions {}: {e}", p.display()))?;
            exa_bio::partition::parse_partition_file(&ptext, alignment.n_sites())
                .map_err(|e| e.to_string())?
        }
        None => PartitionScheme::unpartitioned(alignment.n_sites()),
    };
    Ok(CompressedAlignment::build(&alignment, &scheme))
}

/// Execute one dispatch outside the lock. The spec's `RunConfig` is taken
/// verbatim except for the spool-owned fields.
fn run_job(d: &Dispatch, cfg: &DaemonConfig) -> JobOutcome {
    if let Err(e) = std::fs::create_dir_all(&d.job_dir) {
        return JobOutcome::Error(format!("cannot create job dir: {e}"));
    }
    let compressed = match load_alignment(&d.spec.alignment, d.spec.partitions.as_deref()) {
        Ok(c) => c,
        Err(e) => return JobOutcome::Error(e),
    };
    let ckpt_dir = d.job_dir.join("ckpt");
    let mut run = d.spec.config.clone();
    run.checkpoint_out = Some(ckpt_dir.clone());
    run.checkpoint_every = cfg.checkpoint_every;
    run.checkpoint_every_secs = cfg.checkpoint_every_secs;
    run.checkpoint_keep = cfg.checkpoint_keep;
    run.preempt = Some(d.signal.clone());
    run.health_out = Some(d.job_dir.join("health.jsonl"));
    run.resume_from = d.resume.then(|| ckpt_dir.clone());
    run.inject_kill = None;
    // Collect the per-rank trace so `GET /trace/<id>` can serve a Chrome
    // trace and the health report gains its critical-path block.
    run.collect_trace = true;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.run(&compressed)));
    match outcome {
        Ok(Ok(out)) => {
            if let Some(trace) = &out.trace {
                let _ = exa_obs::write_chrome_trace(&d.job_dir.join("trace.json"), trace);
            }
            JobOutcome::Done {
                lnl: out.result.lnl,
                iterations: out.result.iterations as u64,
            }
        }
        Ok(Err(RunError::Preempted { .. })) => JobOutcome::Preempted,
        Ok(Err(e)) => JobOutcome::Error(e.to_string()),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "run panicked".into());
            JobOutcome::Error(format!("panic: {msg}"))
        }
    }
}
