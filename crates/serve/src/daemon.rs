//! The daemon core: a journaled job table, the fair-share scheduler, and a
//! bounded worker pool executing `examl-core` runs with cooperative
//! checkpoint-preemption.
//!
//! All mutable state lives in one `Mutex<Core>`; workers park on a condvar
//! and race for dispatches through [`scheduler::FairShare`]. The invariant
//! that makes the queue crash-safe: **every state transition is fsynced to
//! the journal before it takes effect in memory**, so replaying the journal
//! always reconstructs a state the daemon actually passed through (modulo a
//! torn final append, which is dropped).
//!
//! Preemption handshake (the checkpoint-preemptive part of fair share):
//!
//! 1. `submit` finds no idle worker and a running job with strictly lower
//!    priority → it raises that job's [`PreemptSignal`].
//! 2. The run observes the signal at its next iteration boundary (both
//!    schemes agree collectively in the de-centralized driver), commits a
//!    final checkpoint generation, and unwinds as
//!    [`RunError::Preempted`](examl_core::RunError::Preempted).
//! 3. The worker journals `Preempted`, re-queues the job at the front of
//!    its priority class with `resume_next`, and goes back to the pool —
//!    freeing the worker for the higher-priority job.
//! 4. When the job is dispatched again it resumes from the newest intact
//!    generation in its spool directory, exactly like `--resume`; the
//!    deterministic replicated search makes the resumed trajectory
//!    bit-identical to an uninterrupted run.
//!
//! Cancellation of a running job and daemon shutdown reuse the same
//! signal: both are "checkpoint at the next boundary and unwind", differing
//! only in what the worker does with the carcass.

use crate::journal::{Journal, JournalEvent};
use crate::scheduler::{FairShare, TenantConfig};
use crate::{JobId, JobSpec, JobState, JobStatus};
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_obs::{ServeHeartbeat, TenantGauge};
use exa_search::PreemptSignal;
use examl_core::{checkpoint, RunError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Daemon-wide policy: spool location, pool size, scheduling and checkpoint
/// knobs applied to every job.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Spool directory: journal plus one subdirectory per job.
    pub spool: PathBuf,
    /// Worker threads (concurrent runs).
    pub workers: usize,
    /// Scheduler quantum (deficit credited per dispatch attempt).
    pub quantum: u64,
    /// Policy for tenants not named in `tenants`.
    pub default_tenant: TenantConfig,
    /// Named per-tenant overrides (weight, concurrency quota).
    pub tenants: Vec<(String, TenantConfig)>,
    /// Iteration checkpoint cadence forced onto every job (0 = only the
    /// time cadence / preemption commits).
    pub checkpoint_every: usize,
    /// Optional time cadence forced onto every job.
    pub checkpoint_every_secs: Option<f64>,
    /// Checkpoint generations retained per job.
    pub checkpoint_keep: usize,
}

impl DaemonConfig {
    /// Defaults: 2 workers, quantum 1, unit weights, unbounded quotas,
    /// checkpoint every iteration, keep the standard window.
    pub fn new(spool: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            spool: spool.into(),
            workers: 2,
            quantum: 1,
            default_tenant: TenantConfig::default(),
            tenants: Vec::new(),
            checkpoint_every: 1,
            checkpoint_every_secs: None,
            checkpoint_keep: checkpoint::KEEP_GENERATIONS,
        }
    }
}

/// In-memory job record. The journal is authoritative; this mirrors it.
#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    attempts: u64,
    preemptions: u64,
    /// Next dispatch should resume from the job's checkpoint directory.
    resume_next: bool,
    cancel_requested: bool,
    /// Present exactly while the job is running.
    preempt: Option<PreemptSignal>,
    submitted_at: Instant,
    first_dispatch: Option<Instant>,
}

struct Core {
    cfg: DaemonConfig,
    jobs: BTreeMap<JobId, JobEntry>,
    sched: FairShare,
    journal: Journal,
    next_id: JobId,
    shutdown: bool,
    workers_idle: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    preemptions: u64,
    resumes: u64,
    wait_sum_ms: f64,
    wait_count: u64,
    max_wait_ms: f64,
    health_seq: u64,
}

struct Inner {
    state: Mutex<Core>,
    cv: Condvar,
}

/// Cloneable handle on a running daemon. [`Daemon::shutdown`] checkpoints
/// and re-queues running jobs, then joins the pool.
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

fn lock(inner: &Inner) -> MutexGuard<'_, Core> {
    // A worker panicking mid-update is already a bug; keep serving.
    inner.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Daemon {
    /// Open the spool (replaying the journal) and start the worker pool.
    /// Jobs that were queued re-enter the scheduler; jobs that were running
    /// when the previous process died are re-queued and will resume from
    /// their newest intact checkpoint generation.
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        let (journal, events) = Journal::open(&cfg.spool)?;
        let mut sched = FairShare::new(cfg.quantum, cfg.default_tenant);
        for (name, tenant_cfg) in &cfg.tenants {
            sched.set_tenant(name, *tenant_cfg);
        }
        let mut core = Core {
            cfg,
            jobs: BTreeMap::new(),
            sched,
            journal,
            next_id: 1,
            shutdown: false,
            workers_idle: 0,
            completed: 0,
            failed: 0,
            cancelled: 0,
            preemptions: 0,
            resumes: 0,
            wait_sum_ms: 0.0,
            wait_count: 0,
            max_wait_ms: 0.0,
            health_seq: 0,
        };
        core.replay(events);
        let workers = core.cfg.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(core),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Daemon {
            inner,
            workers: Arc::new(Mutex::new(handles)),
        })
    }

    /// Admit a job: journal it, enqueue it, and — when every worker is busy
    /// and some running job has strictly lower priority — raise that job's
    /// preempt signal so this submission gets a worker at the victim's next
    /// iteration boundary.
    pub fn submit(&self, spec: JobSpec) -> std::io::Result<JobId> {
        let mut core = lock(&self.inner);
        if core.shutdown {
            return Err(std::io::Error::other("daemon is shutting down"));
        }
        let id = core.next_id;
        core.next_id += 1;
        core.journal.append(&JournalEvent::Submitted {
            id,
            spec: Box::new(spec.clone()),
        })?;
        core.sched
            .enqueue(id, &spec.tenant, spec.priority, spec.cost);
        let priority = spec.priority;
        core.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                attempts: 0,
                preemptions: 0,
                resume_next: false,
                cancel_requested: false,
                preempt: None,
                submitted_at: Instant::now(),
                first_dispatch: None,
            },
        );
        if core.workers_idle == 0 {
            core.preempt_lowest_below(priority);
        }
        self.inner.cv.notify_all();
        Ok(id)
    }

    /// Snapshot one job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let core = lock(&self.inner);
        core.jobs.get(&id).map(|e| snapshot(id, e))
    }

    /// Snapshot every job, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        let core = lock(&self.inner);
        core.jobs.iter().map(|(id, e)| snapshot(*id, e)).collect()
    }

    /// Cancel a job. A queued job is removed immediately; a running job is
    /// checkpoint-preempted and lands in `Cancelled` once it unwinds.
    /// Returns whether a cancellation was initiated.
    pub fn cancel(&self, id: JobId) -> std::io::Result<bool> {
        let mut core = lock(&self.inner);
        let Some(entry) = core.jobs.get(&id) else {
            return Ok(false);
        };
        match entry.state {
            JobState::Queued => {
                core.journal.append(&JournalEvent::Cancelled { id })?;
                core.sched.cancel(id);
                let entry = core.jobs.get_mut(&id).unwrap();
                entry.state = JobState::Cancelled;
                core.cancelled += 1;
                Ok(true)
            }
            JobState::Running => {
                let entry = core.jobs.get_mut(&id).unwrap();
                entry.cancel_requested = true;
                if let Some(sig) = &entry.preempt {
                    sig.request();
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Current daemon gauges as one [`ServeHeartbeat`].
    pub fn health(&self) -> ServeHeartbeat {
        let mut core = lock(&self.inner);
        core.health_seq += 1;
        core.heartbeat()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        lock(&self.inner).shutdown
    }

    /// Stop accepting work, checkpoint-preempt running jobs (journaled as
    /// `Preempted`, so a later daemon resumes them), join the pool, and
    /// compact the journal.
    pub fn shutdown(&self) {
        {
            let mut core = lock(&self.inner);
            core.shutdown = true;
            for entry in core.jobs.values() {
                if let Some(sig) = &entry.preempt {
                    sig.request();
                }
            }
            self.inner.cv.notify_all();
        }
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let mut core = lock(&self.inner);
        let snapshot_events = core.compaction_events();
        let _ = core.journal.compact(&snapshot_events);
    }
}

fn snapshot(id: JobId, e: &JobEntry) -> JobStatus {
    JobStatus {
        id,
        tenant: e.spec.tenant.clone(),
        priority: e.spec.priority,
        cost: e.spec.cost,
        state: e.state.clone(),
        attempts: e.attempts,
        preemptions: e.preemptions,
        wait_ms: e
            .first_dispatch
            .map(|t| t.duration_since(e.submitted_at).as_secs_f64() * 1e3),
    }
}

impl Core {
    /// Fold replayed journal events back into job table + scheduler.
    fn replay(&mut self, events: Vec<JournalEvent>) {
        for ev in events {
            match ev {
                JournalEvent::Submitted { id, spec } => {
                    self.next_id = self.next_id.max(id + 1);
                    self.jobs.insert(
                        id,
                        JobEntry {
                            spec: *spec,
                            state: JobState::Queued,
                            attempts: 0,
                            preemptions: 0,
                            resume_next: false,
                            cancel_requested: false,
                            preempt: None,
                            submitted_at: Instant::now(),
                            first_dispatch: None,
                        },
                    );
                }
                JournalEvent::Started { id } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Running;
                        e.attempts += 1;
                    }
                }
                JournalEvent::Preempted { id } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Queued;
                        e.resume_next = true;
                        e.preemptions += 1;
                        self.preemptions += 1;
                    }
                }
                JournalEvent::Cancelled { id } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Cancelled;
                        self.cancelled += 1;
                    }
                }
                JournalEvent::Completed {
                    id,
                    lnl,
                    iterations,
                } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Completed { lnl, iterations };
                        self.completed += 1;
                    }
                }
                JournalEvent::Failed { id, error } => {
                    if let Some(e) = self.jobs.get_mut(&id) {
                        e.state = JobState::Failed { error };
                        self.failed += 1;
                    }
                }
            }
        }
        // Jobs caught mid-run by a daemon crash restart from their last
        // committed generation, like any other preemption.
        let ids: Vec<JobId> = self.jobs.keys().copied().collect();
        for id in ids {
            let e = self.jobs.get_mut(&id).unwrap();
            if e.state == JobState::Running {
                e.state = JobState::Queued;
                e.resume_next = true;
            }
            if e.state == JobState::Queued {
                let (tenant, priority, cost) =
                    (e.spec.tenant.clone(), e.spec.priority, e.spec.cost);
                if e.resume_next {
                    self.sched.requeue_front(id, &tenant, priority, cost);
                } else {
                    self.sched.enqueue(id, &tenant, priority, cost);
                }
            }
        }
    }

    /// Raise the preempt signal of the lowest-priority running job whose
    /// priority is strictly below `incoming`, if any (skipping jobs already
    /// asked to stop).
    fn preempt_lowest_below(&mut self, incoming: u32) {
        let victim = self
            .jobs
            .iter()
            .filter(|(_, e)| e.state == JobState::Running)
            .filter(|(_, e)| e.spec.priority < incoming)
            .filter(|(_, e)| e.preempt.as_ref().is_some_and(|s| !s.is_requested()))
            .min_by_key(|(id, e)| (e.spec.priority, std::cmp::Reverse(**id)))
            .map(|(id, _)| *id);
        if let Some(id) = victim {
            if let Some(sig) = &self.jobs[&id].preempt {
                sig.request();
            }
        }
    }

    fn running_count(&self, tenant: &str) -> usize {
        self.jobs
            .values()
            .filter(|e| e.state == JobState::Running && e.spec.tenant == tenant)
            .count()
    }

    fn heartbeat(&self) -> ServeHeartbeat {
        let running = self
            .jobs
            .values()
            .filter(|e| e.state == JobState::Running)
            .count() as u64;
        let tenants = self
            .sched
            .gauges()
            .into_iter()
            .map(|(tenant, queued, dispatched)| {
                let running = self.running_count(&tenant) as u64;
                TenantGauge {
                    tenant,
                    queued,
                    running,
                    dispatched,
                }
            })
            .collect();
        ServeHeartbeat {
            seq: self.health_seq,
            queue_depth: self.sched.depth() as u64,
            running,
            workers_idle: self.workers_idle,
            completed: self.completed,
            failed: self.failed,
            cancelled: self.cancelled,
            preemptions: self.preemptions,
            resumes: self.resumes,
            max_wait_ms: self.max_wait_ms,
            mean_wait_ms: if self.wait_count == 0 {
                0.0
            } else {
                self.wait_sum_ms / self.wait_count as f64
            },
            tenants,
        }
    }

    /// Minimal journal equivalent to the current state: one `Submitted` per
    /// non-terminal job (+ `Preempted` when it must resume). Terminal jobs
    /// are dropped — their history is no longer needed for recovery.
    fn compaction_events(&self) -> Vec<JournalEvent> {
        let mut events = Vec::new();
        for (id, e) in &self.jobs {
            if e.state.is_terminal() {
                continue;
            }
            events.push(JournalEvent::Submitted {
                id: *id,
                spec: Box::new(e.spec.clone()),
            });
            if e.resume_next || e.state == JobState::Running {
                events.push(JournalEvent::Started { id: *id });
                events.push(JournalEvent::Preempted { id: *id });
            }
        }
        events
    }

    fn job_dir(&self, id: JobId) -> PathBuf {
        self.cfg.spool.join("jobs").join(format!("{id:08}"))
    }
}

/// What one dispatch needs outside the lock.
struct Dispatch {
    id: JobId,
    spec: JobSpec,
    resume: bool,
    signal: PreemptSignal,
    job_dir: PathBuf,
}

fn try_dispatch(core: &mut Core) -> Option<Dispatch> {
    let counts: std::collections::HashMap<String, usize> = core
        .jobs
        .values()
        .filter(|e| e.state == JobState::Running)
        .fold(std::collections::HashMap::new(), |mut m, e| {
            *m.entry(e.spec.tenant.clone()).or_insert(0) += 1;
            m
        });
    let picked = core
        .sched
        .next(&|tenant| counts.get(tenant).copied().unwrap_or(0))?;
    let id = picked.id;
    let job_dir = core.job_dir(id);
    // Resume only when a previous attempt actually committed a generation.
    let resume = {
        let e = &core.jobs[&id];
        e.resume_next && checkpoint::load_latest(&job_dir.join("ckpt")).is_ok()
    };
    if core.journal.append(&JournalEvent::Started { id }).is_err() {
        // Journal write failed: put the job back rather than running it
        // un-journaled.
        let e = &core.jobs[&id];
        let (tenant, priority, cost) = (e.spec.tenant.clone(), e.spec.priority, e.spec.cost);
        core.sched.requeue_front(id, &tenant, priority, cost);
        return None;
    }
    let now = Instant::now();
    let signal = PreemptSignal::new();
    let e = core.jobs.get_mut(&id).unwrap();
    e.state = JobState::Running;
    e.attempts += 1;
    e.preempt = Some(signal.clone());
    if e.first_dispatch.is_none() {
        e.first_dispatch = Some(now);
        let wait_ms = now.duration_since(e.submitted_at).as_secs_f64() * 1e3;
        core.wait_sum_ms += wait_ms;
        core.wait_count += 1;
        core.max_wait_ms = core.max_wait_ms.max(wait_ms);
    }
    if resume {
        core.resumes += 1;
    }
    Some(Dispatch {
        id,
        spec: core.jobs[&id].spec.clone(),
        resume,
        signal,
        job_dir,
    })
}

fn worker_loop(inner: &Inner) {
    // Immutable after start; clone outside the dispatch loop so the run
    // itself never holds the daemon lock.
    let cfg = lock(inner).cfg.clone();
    loop {
        let dispatch = {
            let mut core = lock(inner);
            core.workers_idle += 1;
            let d = loop {
                if core.shutdown {
                    core.workers_idle -= 1;
                    return;
                }
                if let Some(d) = try_dispatch(&mut core) {
                    break d;
                }
                core = inner.cv.wait(core).unwrap_or_else(|e| e.into_inner());
            };
            core.workers_idle -= 1;
            d
        };
        let result = run_job(&dispatch, &cfg);
        let mut core = lock(inner);
        let id = dispatch.id;
        match result {
            JobOutcome::Done { lnl, iterations } => {
                let _ = core.journal.append(&JournalEvent::Completed {
                    id,
                    lnl,
                    iterations,
                });
                let e = core.jobs.get_mut(&id).unwrap();
                e.state = JobState::Completed { lnl, iterations };
                e.preempt = None;
                core.completed += 1;
            }
            JobOutcome::Preempted => {
                core.preemptions += 1;
                let e = core.jobs.get_mut(&id).unwrap();
                e.preemptions += 1;
                e.preempt = None;
                if e.cancel_requested {
                    let _ = core.journal.append(&JournalEvent::Cancelled { id });
                    let e = core.jobs.get_mut(&id).unwrap();
                    e.state = JobState::Cancelled;
                    core.cancelled += 1;
                } else {
                    // Either a higher-priority job displaced us, or the
                    // daemon is shutting down. Both re-queue for resume.
                    let _ = core.journal.append(&JournalEvent::Preempted { id });
                    let e = core.jobs.get_mut(&id).unwrap();
                    e.state = JobState::Queued;
                    e.resume_next = true;
                    let (tenant, priority, cost) =
                        (e.spec.tenant.clone(), e.spec.priority, e.spec.cost);
                    core.sched.requeue_front(id, &tenant, priority, cost);
                }
            }
            JobOutcome::Error(error) => {
                let _ = core.journal.append(&JournalEvent::Failed {
                    id,
                    error: error.clone(),
                });
                let e = core.jobs.get_mut(&id).unwrap();
                e.state = JobState::Failed { error };
                e.preempt = None;
                core.failed += 1;
            }
        }
        // A finished/requeued job may unblock a tenant quota or leave work
        // for other parked workers.
        inner.cv.notify_all();
    }
}

enum JobOutcome {
    Done { lnl: f64, iterations: u64 },
    Preempted,
    Error(String),
}

/// Load the job's alignment: `exa-bio` binary first, then PHYLIP, then
/// FASTA text.
fn load_alignment(path: &Path, partitions: Option<&Path>) -> Result<CompressedAlignment, String> {
    if let Ok(compressed) = exa_bio::binary::read_file(path) {
        return Ok(compressed);
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read alignment {}: {e}", path.display()))?;
    let alignment = exa_bio::phylip::parse_phylip_auto(&text)
        .or_else(|_| exa_bio::fasta::parse_fasta(&text))
        .map_err(|e| format!("cannot parse alignment {}: {e}", path.display()))?;
    let scheme = match partitions {
        Some(p) => {
            let ptext = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read partitions {}: {e}", p.display()))?;
            exa_bio::partition::parse_partition_file(&ptext, alignment.n_sites())
                .map_err(|e| e.to_string())?
        }
        None => PartitionScheme::unpartitioned(alignment.n_sites()),
    };
    Ok(CompressedAlignment::build(&alignment, &scheme))
}

/// Execute one dispatch outside the lock. The spec's `RunConfig` is taken
/// verbatim except for the spool-owned fields.
fn run_job(d: &Dispatch, cfg: &DaemonConfig) -> JobOutcome {
    if let Err(e) = std::fs::create_dir_all(&d.job_dir) {
        return JobOutcome::Error(format!("cannot create job dir: {e}"));
    }
    let compressed = match load_alignment(&d.spec.alignment, d.spec.partitions.as_deref()) {
        Ok(c) => c,
        Err(e) => return JobOutcome::Error(e),
    };
    let ckpt_dir = d.job_dir.join("ckpt");
    let mut run = d.spec.config.clone();
    run.checkpoint_out = Some(ckpt_dir.clone());
    run.checkpoint_every = cfg.checkpoint_every;
    run.checkpoint_every_secs = cfg.checkpoint_every_secs;
    run.checkpoint_keep = cfg.checkpoint_keep;
    run.preempt = Some(d.signal.clone());
    run.health_out = Some(d.job_dir.join("health.jsonl"));
    run.resume_from = d.resume.then(|| ckpt_dir.clone());
    run.inject_kill = None;
    run.collect_trace = false;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.run(&compressed)));
    match outcome {
        Ok(Ok(out)) => JobOutcome::Done {
            lnl: out.result.lnl,
            iterations: out.result.iterations as u64,
        },
        Ok(Err(RunError::Preempted { .. })) => JobOutcome::Preempted,
        Ok(Err(e)) => JobOutcome::Error(e.to_string()),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "run panicked".into());
            JobOutcome::Error(format!("panic: {msg}"))
        }
    }
}
