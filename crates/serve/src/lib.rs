//! `exa-serve` — a multi-tenant inference daemon over `examl-core` runs.
//!
//! A single large tree search owns its process for hours; a lab running
//! many analyses wants one long-lived service that queues submissions,
//! shares the machine fairly between tenants, and never loses work across
//! restarts. This crate provides that service:
//!
//! * **Jobs are [`RunConfig`] JSON.** A [`JobSpec`] names a tenant, a
//!   priority, a cost estimate, the alignment file, and the run
//!   configuration verbatim — the daemon only overrides the spool-owned
//!   fields (checkpoint directory, cadence, preemption handle, health
//!   file).
//! * **Crash-safe queue.** Every state transition is appended to an fsynced
//!   JSON-lines journal ([`journal`]); on restart the journal is replayed
//!   and jobs that were running are re-queued, resuming from their last
//!   committed checkpoint generation.
//! * **Fair-share scheduling.** A weighted deficit round-robin scheduler
//!   ([`scheduler`]) with per-tenant concurrency quotas guarantees bounded
//!   wait for every tenant given bounded job costs.
//! * **Preemption via checkpoint.** A higher-priority submission (or a
//!   cancel, or shutdown) raises the running job's
//!   [`PreemptSignal`](exa_search::PreemptSignal); the run commits a final
//!   checkpoint at its next iteration boundary, unwinds cleanly, and is
//!   re-queued to resume later — no work is lost beyond the current
//!   iteration.
//!
//! The wire protocol ([`http`]) speaks both minimal HTTP/1.1 and a
//! line-oriented JSON protocol on the same socket; [`client`] is the
//! matching blocking client used by `examl serve …` subcommands.

pub mod client;
pub mod daemon;
pub mod http;
pub mod journal;
pub mod scheduler;
pub mod signal;

use examl_core::RunConfig;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Daemon-assigned job identifier, dense from 1 within one spool directory.
pub type JobId = u64;

/// One submission: who it belongs to, how urgent and how big it is, and the
/// run to execute. Spooled verbatim into the journal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Tenant the job is accounted against.
    pub tenant: String,
    /// Strict global priority class (higher dispatches first; fair share
    /// applies within a class) and the preemption trigger: a submission
    /// with strictly higher priority than a running job may
    /// checkpoint-preempt it when no worker is idle.
    pub priority: u32,
    /// Deficit charge in scheduler units — an estimate of the job's size
    /// (any monotone proxy works; the bench harness uses pattern count ×
    /// iterations). Clamped to at least 1.
    pub cost: u64,
    /// Alignment input: `exa-bio` binary (`.exml`) or PHYLIP/FASTA text.
    pub alignment: PathBuf,
    /// Optional RAxML-style partition file for text alignments.
    pub partitions: Option<PathBuf>,
    /// The run itself. `checkpoint_out`, `checkpoint_keep`,
    /// `checkpoint_every`, `checkpoint_every_secs`, `preempt`, `resume_from`
    /// and `health_out` are daemon-owned and overridden at dispatch.
    pub config: RunConfig,
}

/// Lifecycle of a job inside the daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the scheduler (also after a preemption, until
    /// re-dispatched).
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a final likelihood.
    Completed { lnl: f64, iterations: u64 },
    /// The run returned an error.
    Failed { error: String },
    /// Cancelled while queued, or checkpoint-stopped after a running
    /// cancel.
    Cancelled,
}

impl JobState {
    /// Whether the job can never run again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed { .. } | JobState::Failed { .. } | JobState::Cancelled
        )
    }
}

/// Point-in-time snapshot of one job, as returned by `status`/`list`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStatus {
    pub id: JobId,
    pub tenant: String,
    pub priority: u32,
    pub cost: u64,
    pub state: JobState,
    /// Dispatches so far (1 on the first run; +1 per resume).
    pub attempts: u64,
    /// Checkpoint-preemptions suffered.
    pub preemptions: u64,
    /// Queue wait from submission to first dispatch, once dispatched.
    pub wait_ms: Option<f64>,
}
