//! Wire protocol: minimal HTTP/1.1 and a line-oriented JSON protocol on
//! the same TCP listener.
//!
//! The daemon sniffs the first byte of each connection: `{` starts the
//! JSON-lines protocol (one request object per line, one response object
//! per line — what [`crate::client`] speaks), anything else is parsed as an
//! HTTP/1.1 request. Both surfaces expose the same six operations:
//!
//! | HTTP                      | JSON-lines `op`  |
//! |---------------------------|------------------|
//! | `POST /submit` (spec body)| `submit`         |
//! | `GET /status/<id>`        | `status`         |
//! | `POST /cancel/<id>`       | `cancel`         |
//! | `GET /list`               | `list`           |
//! | `GET /health`             | `health`         |
//! | `GET /stream-health`      | `stream-health`  |
//! | `GET /metrics`            | `metrics`        |
//! | `GET /trace/<id>`         | —                |
//! | `GET /job-health/<id>`    | —                |
//! | `POST /resize/<workers>`  | `resize`         |
//! | `POST /shutdown`          | `shutdown`       |
//!
//! `stream-health` emits one [`ServeHeartbeat`] JSON line per interval
//! (`?count=N&interval_ms=M`) until the count is reached, the client goes
//! away, or the daemon shuts down. `GET /metrics` returns the Prometheus
//! text exposition of the daemon + process registries (the JSON-lines
//! `metrics` op wraps the same text in `{"ok":true,"text":...}`).
//! `GET /trace/<id>` serves the job's Chrome trace (written on
//! completion); `GET /job-health/<id>` serves its heartbeat ndjson.
//! Everything else responds with a single JSON object `{"ok":true,...}` or
//! `{"ok":false,"error":...}`. Per-verb handling latency is recorded in
//! the daemon's `exa_http_request_ms` histogram.
//!
//! The parser is deliberately tiny: request line + `Content-Length`, no
//! chunked encoding, no keep-alive. Each connection is one thread; the
//! accept loop polls non-blocking so daemon shutdown is observed promptly.

use crate::daemon::Daemon;
use crate::{JobId, JobSpec};
use serde::{field, Serialize, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn ok_with(extra: Vec<(String, Value)>) -> Value {
    let mut m = vec![("ok".to_string(), Value::Bool(true))];
    m.extend(extra);
    Value::Map(m)
}

fn err_with(msg: impl Into<String>) -> Value {
    Value::Map(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(msg.into())),
    ])
}

/// Handle one non-streaming operation. `shutdown` responds before the
/// (blocking, graceful) shutdown itself begins, which the caller performs
/// after writing the response.
fn handle_op(daemon: &Daemon, op: &str, req: &Value) -> (Value, bool) {
    let entries = match req.as_map("request") {
        Ok(m) => m,
        Err(e) => return (err_with(e.0), false),
    };
    let id_of = |entries: &[(String, Value)]| -> Result<JobId, String> {
        field(entries, "id")
            .as_u64("id")
            .map_err(|e| e.0.to_string())
    };
    match op {
        "submit" => match <JobSpec as serde::Deserialize>::from_value(field(entries, "spec")) {
            Ok(spec) => match daemon.submit(spec) {
                Ok(id) => (ok_with(vec![("id".to_string(), Value::UInt(id))]), false),
                Err(e) => (err_with(e.to_string()), false),
            },
            Err(e) => (err_with(format!("bad spec: {}", e.0)), false),
        },
        "status" => match id_of(entries) {
            Ok(id) => match daemon.status(id) {
                Some(st) => (ok_with(vec![("job".to_string(), st.to_value())]), false),
                None => (err_with(format!("no such job {id}")), false),
            },
            Err(e) => (err_with(e), false),
        },
        "cancel" => match id_of(entries) {
            Ok(id) => match daemon.cancel(id) {
                Ok(hit) => (
                    ok_with(vec![("cancelled".to_string(), Value::Bool(hit))]),
                    false,
                ),
                Err(e) => (err_with(e.to_string()), false),
            },
            Err(e) => (err_with(e), false),
        },
        "list" => {
            let jobs: Vec<Value> = daemon.list().iter().map(|s| s.to_value()).collect();
            (
                ok_with(vec![("jobs".to_string(), Value::Array(jobs))]),
                false,
            )
        }
        "health" => (
            ok_with(vec![("health".to_string(), daemon.health().to_value())]),
            false,
        ),
        "metrics" => (
            ok_with(vec![(
                "text".to_string(),
                Value::Str(daemon.metrics_text()),
            )]),
            false,
        ),
        "resize" => match field(entries, "workers").as_u64("workers") {
            Ok(n) => match daemon.resize(n as usize) {
                Ok((previous, workers)) => (
                    ok_with(vec![
                        ("workers".to_string(), Value::UInt(workers as u64)),
                        ("previous".to_string(), Value::UInt(previous as u64)),
                    ]),
                    false,
                ),
                Err(e) => (err_with(e.to_string()), false),
            },
            Err(e) => (err_with(e.0), false),
        },
        "shutdown" => (ok_with(vec![]), true),
        other => (err_with(format!("unknown op {other:?}")), false),
    }
}

/// Write heartbeats until `count` lines, a write error, or shutdown.
fn stream_health(daemon: &Daemon, out: &mut dyn Write, count: u64, interval: Duration) {
    for i in 0..count {
        let line = daemon.health().to_json_line();
        if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
            return;
        }
        let _ = out.flush();
        if daemon.is_shutting_down() || i + 1 == count {
            return;
        }
        std::thread::sleep(interval);
    }
}

fn stream_params(req: &Value) -> (u64, Duration) {
    let entries = req.as_map("request").unwrap_or(&[]);
    let count = field(entries, "count").as_u64("count").unwrap_or(u64::MAX);
    let interval = field(entries, "interval_ms")
        .as_u64("interval_ms")
        .unwrap_or(200);
    (count.max(1), Duration::from_millis(interval))
}

fn handle_jsonl(daemon: &Daemon, stream: TcpStream, first: u8) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut pending = vec![first];
    loop {
        let mut rest = String::new();
        match reader.read_line(&mut rest) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
        pending.extend_from_slice(rest.as_bytes());
        let line = match String::from_utf8(std::mem::take(&mut pending)) {
            Ok(l) => l,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let req: Value = match serde_json::from_str(&line) {
            Ok(v) => v,
            Err(e) => {
                let _ = writeln!(
                    writer,
                    "{}",
                    to_line(&err_with(format!("bad request: {e}")))
                );
                continue;
            }
        };
        let op = req
            .as_map("request")
            .ok()
            .map(|m| field(m, "op"))
            .and_then(|v| v.as_str("op").ok().map(str::to_string))
            .unwrap_or_default();
        if op == "stream-health" {
            let (count, interval) = stream_params(&req);
            stream_health(daemon, &mut writer, count, interval);
            let _ = writeln!(writer, "{}", to_line(&ok_with(vec![])));
            continue;
        }
        let t0 = std::time::Instant::now();
        let (resp, shutdown) = handle_op(daemon, &op, &req);
        if writeln!(writer, "{}", to_line(&resp)).is_err() {
            return;
        }
        let _ = writer.flush();
        observe_request(daemon, &op, t0);
        if shutdown {
            daemon.shutdown();
            return;
        }
    }
}

fn to_line(v: &Value) -> String {
    serde_json::to_string(v).expect("value serialization cannot fail")
}

fn http_response(out: &mut dyn Write, status: &str, body: &str) {
    http_response_typed(out, status, "application/json", body);
}

fn http_response_typed(out: &mut dyn Write, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = out.flush();
}

/// Serve a per-job spool file (`trace.json`, `health.jsonl`) or a JSON 404
/// when the job or the file doesn't exist (yet).
fn serve_artifact(daemon: &Daemon, out: &mut dyn Write, id: JobId, file: &str, content_type: &str) {
    let body = daemon
        .job_artifact(id, file)
        .and_then(|p| std::fs::read_to_string(p).ok());
    match body {
        Some(body) => http_response_typed(out, "200 OK", content_type, &body),
        None => http_response(
            out,
            "404 Not Found",
            &to_line(&err_with(format!("no {file} for job {id}"))),
        ),
    }
}

/// Record one request's handling latency under its verb label. Arbitrary
/// wire strings collapse to `unknown` so a client can't mint unbounded
/// label values.
fn observe_request(daemon: &Daemon, verb: &str, t0: std::time::Instant) {
    const KNOWN: &[&str] = &[
        "submit",
        "status",
        "cancel",
        "list",
        "health",
        "stream-health",
        "metrics",
        "trace",
        "job-health",
        "resize",
        "shutdown",
    ];
    let verb = if KNOWN.contains(&verb) {
        verb
    } else {
        "unknown"
    };
    daemon
        .http_request_histogram(verb)
        .observe(t0.elapsed().as_secs_f64() * 1e3);
}

/// Parse `?count=N&interval_ms=M` from a path's query string.
fn query_params(path: &str) -> (u64, Duration) {
    let mut count = u64::MAX;
    let mut interval = 200u64;
    if let Some((_, query)) = path.split_once('?') {
        for pair in query.split('&') {
            if let Some((k, v)) = pair.split_once('=') {
                match k {
                    "count" => count = v.parse().unwrap_or(count),
                    "interval_ms" => interval = v.parse().unwrap_or(interval),
                    _ => {}
                }
            }
        }
    }
    (count.max(1), Duration::from_millis(interval))
}

fn handle_http(daemon: &Daemon, stream: TcpStream, first: u8) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Re-assemble the head: first sniffed byte + everything to the blank
    // line.
    let mut head = vec![first];
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        head.extend_from_slice(line.as_bytes());
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
        if head.len() > 64 * 1024 {
            http_response(&mut writer, "431 Request Header Fields Too Large", "{}");
            return;
        }
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            http_response(&mut writer, "400 Bad Request", "{}");
            return;
        }
    };
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length.min(16 * 1024 * 1024)];
    if reader.read_exact(&mut body).is_err() && content_length > 0 {
        http_response(&mut writer, "400 Bad Request", "{}");
        return;
    }
    let route = path.split('?').next().unwrap_or("");
    let t0 = std::time::Instant::now();
    let (op, req): (String, Value) = match (method.as_str(), route) {
        ("POST", "/submit") => {
            let spec: Value = match serde_json::from_slice(&body) {
                Ok(v) => v,
                Err(e) => {
                    http_response(
                        &mut writer,
                        "400 Bad Request",
                        &to_line(&err_with(format!("bad body: {e}"))),
                    );
                    return;
                }
            };
            (
                "submit".into(),
                Value::Map(vec![("spec".to_string(), spec)]),
            )
        }
        ("GET", "/list") => ("list".into(), Value::Map(vec![])),
        ("GET", "/health") => ("health".into(), Value::Map(vec![])),
        ("GET", "/metrics") => {
            let text = daemon.metrics_text();
            http_response_typed(&mut writer, "200 OK", "text/plain; version=0.0.4", &text);
            observe_request(daemon, "metrics", t0);
            return;
        }
        ("POST", "/shutdown") => ("shutdown".into(), Value::Map(vec![])),
        ("GET", "/stream-health") => {
            let (count, interval) = query_params(&path);
            let _ = write!(
                writer,
                "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
            );
            stream_health(daemon, &mut writer, count, interval);
            return;
        }
        (m, p) => {
            let id_route = |prefix: &str| -> Option<JobId> {
                p.strip_prefix(prefix).and_then(|s| s.parse().ok())
            };
            if m == "GET" {
                if let Some(id) = id_route("/trace/") {
                    serve_artifact(daemon, &mut writer, id, "trace.json", "application/json");
                    observe_request(daemon, "trace", t0);
                    return;
                }
                if let Some(id) = id_route("/job-health/") {
                    serve_artifact(
                        daemon,
                        &mut writer,
                        id,
                        "health.jsonl",
                        "application/x-ndjson",
                    );
                    observe_request(daemon, "job-health", t0);
                    return;
                }
                if let Some(id) = id_route("/status/") {
                    (
                        "status".into(),
                        Value::Map(vec![("id".to_string(), Value::UInt(id))]),
                    )
                } else {
                    http_response(
                        &mut writer,
                        "404 Not Found",
                        &to_line(&err_with("no route")),
                    );
                    return;
                }
            } else if m == "POST" {
                if let Some(id) = id_route("/cancel/") {
                    (
                        "cancel".into(),
                        Value::Map(vec![("id".to_string(), Value::UInt(id))]),
                    )
                } else if let Some(n) = id_route("/resize/") {
                    (
                        "resize".into(),
                        Value::Map(vec![("workers".to_string(), Value::UInt(n))]),
                    )
                } else {
                    http_response(
                        &mut writer,
                        "404 Not Found",
                        &to_line(&err_with("no route")),
                    );
                    return;
                }
            } else {
                http_response(
                    &mut writer,
                    "404 Not Found",
                    &to_line(&err_with("no route")),
                );
                return;
            }
        }
    };
    let (resp, shutdown) = handle_op(daemon, &op, &req);
    let ok = matches!(
        resp.as_map("response").ok().map(|m| field(m, "ok").clone()),
        Some(Value::Bool(true))
    );
    http_response(
        &mut writer,
        if ok { "200 OK" } else { "400 Bad Request" },
        &to_line(&resp),
    );
    observe_request(daemon, &op, t0);
    if shutdown {
        daemon.shutdown();
    }
}

fn handle_conn(daemon: Daemon, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut first = [0u8; 1];
    match stream.read(&mut first) {
        Ok(1) => {}
        _ => return,
    }
    if first[0] == b'{' {
        handle_jsonl(&daemon, stream, first[0]);
    } else {
        handle_http(&daemon, stream, first[0]);
    }
}

/// Serve connections on `listener` until the daemon shuts down. Returns
/// the join handle of the accept thread.
pub fn spawn(daemon: Daemon, listener: TcpListener) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let d = daemon.clone();
                    std::thread::spawn(move || handle_conn(d, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if daemon.is_shutting_down() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(_) => return,
            }
        }
    })
}
