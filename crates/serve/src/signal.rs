//! Async-signal bridge: SIGINT/SIGTERM → a process-wide flag → a
//! [`PreemptSignal`](exa_search::PreemptSignal).
//!
//! The container has no `libc` crate, so the handler is installed through
//! the C `signal(2)` symbol directly. The handler itself only stores into
//! an atomic (the one thing that is async-signal-safe); a watcher thread
//! polls the flag and raises the run's preempt signal, which the drivers
//! observe cooperatively at the next iteration boundary — so a `kill -TERM`
//! of a checkpointing run commits a final generation and exits cleanly
//! instead of dying mid-iteration.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERMINATION_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TERMINATION_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handler (idempotent; no-op off Unix).
pub fn install() {
    imp::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::SeqCst)
}

/// Spawn a watcher that raises `preempt` as soon as a termination signal
/// arrives. The watcher exits when `preempt` is dropped everywhere else or
/// after it has fired; it polls at 50 ms, far below any iteration length.
pub fn bridge_to(preempt: exa_search::PreemptSignal) {
    std::thread::spawn(move || loop {
        if termination_requested() {
            preempt.request();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}
