//! Weighted deficit round-robin fair-share scheduling.
//!
//! Each tenant owns a priority-ordered queue and a *deficit counter*. Every
//! [`FairShare::next`] call credits every backlogged tenant
//! `quantum × weight` deficit, then walks the tenants round-robin from a
//! rotating cursor and dispatches the first head job its tenant can afford,
//! debiting the job's cost. The counter resets when a tenant's queue
//! drains, so idle tenants cannot bank credit.
//!
//! Priorities form *strict global classes*: a dispatch always comes from
//! the highest priority class that has an eligible job, and the weighted
//! round-robin shares capacity between tenants *within* that class. Strict
//! classes are what make checkpoint-preemption coherent — the
//! higher-priority submission that preempted a running job is guaranteed to
//! dispatch before its victim resumes.
//!
//! Within a class the scheme gives the classic DRR guarantee in dispatch
//! counts rather than bytes: with `T` tenants and job costs bounded by `C`,
//! a tenant of weight `w` waits at most `ceil(C / (quantum·w)) + T`
//! dispatches before its head job runs — no starvation regardless of how
//! much same-class traffic other tenants submit. The property test in
//! `tests/fairness.rs` checks this bound under random workloads.
//!
//! The scheduler is pure bookkeeping: it knows nothing about threads,
//! journals or runs, which keeps it unit-testable and lets the daemon hold
//! it under one mutex.

use crate::JobId;

/// Per-tenant policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Relative share of dispatch capacity (deficit accrual rate). At least
    /// 1.
    pub weight: u64,
    /// Concurrency quota: jobs of this tenant allowed to run at once.
    pub max_running: usize,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            weight: 1,
            max_running: usize::MAX,
        }
    }
}

/// A job as the scheduler sees it: identity plus accounting inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    pub id: JobId,
    pub tenant: String,
    /// Intra-tenant order: higher priority first, then older `seq` first.
    pub priority: u32,
    /// Deficit charge (clamped to ≥ 1 on enqueue).
    pub cost: u64,
    /// Admission order; preempted jobs are re-queued with a negative `seq`
    /// so they return to the front of their priority class.
    pub seq: i64,
}

#[derive(Debug)]
struct TenantState {
    name: String,
    cfg: TenantConfig,
    deficit: u64,
    /// Sorted by (priority desc, seq asc); head at index 0.
    queue: Vec<QueuedJob>,
    dispatched: u64,
}

impl TenantState {
    fn insert(&mut self, job: QueuedJob) {
        let at = self
            .queue
            .partition_point(|q| (q.priority, -q.seq) >= (job.priority, -job.seq));
        self.queue.insert(at, job);
    }
}

/// The fair-share scheduler: all tenants, their queues and deficits.
#[derive(Debug)]
pub struct FairShare {
    quantum: u64,
    default_cfg: TenantConfig,
    /// First-seen order; the cursor rotates over this.
    tenants: Vec<TenantState>,
    cursor: usize,
    next_seq: i64,
    next_front_seq: i64,
}

impl FairShare {
    /// A scheduler crediting `quantum × weight` per [`FairShare::next`]
    /// call, with `default_cfg` for tenants never named in
    /// [`FairShare::set_tenant`].
    pub fn new(quantum: u64, default_cfg: TenantConfig) -> FairShare {
        FairShare {
            quantum: quantum.max(1),
            default_cfg,
            tenants: Vec::new(),
            cursor: 0,
            next_seq: 0,
            next_front_seq: -1,
        }
    }

    /// Install (or update) a tenant's policy. Unknown tenants get the
    /// default config on first enqueue.
    pub fn set_tenant(&mut self, name: &str, cfg: TenantConfig) {
        let cfg = TenantConfig {
            weight: cfg.weight.max(1),
            ..cfg
        };
        self.tenant_mut(name).cfg = cfg;
    }

    fn tenant_mut(&mut self, name: &str) -> &mut TenantState {
        if let Some(i) = self.tenants.iter().position(|t| t.name == name) {
            return &mut self.tenants[i];
        }
        self.tenants.push(TenantState {
            name: name.to_string(),
            cfg: self.default_cfg,
            deficit: 0,
            queue: Vec::new(),
            dispatched: 0,
        });
        self.tenants.last_mut().unwrap()
    }

    /// Admit a new job at the back of its priority class.
    pub fn enqueue(&mut self, id: JobId, tenant: &str, priority: u32, cost: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let job = QueuedJob {
            id,
            tenant: tenant.to_string(),
            priority,
            cost: cost.max(1),
            seq,
        };
        self.tenant_mut(tenant).insert(job);
    }

    /// Return a preempted job to the *front* of its priority class so a
    /// resumed run is not overtaken by its own tenant's backlog.
    pub fn requeue_front(&mut self, id: JobId, tenant: &str, priority: u32, cost: u64) {
        let seq = self.next_front_seq;
        self.next_front_seq -= 1;
        let job = QueuedJob {
            id,
            tenant: tenant.to_string(),
            priority,
            cost: cost.max(1),
            seq,
        };
        self.tenant_mut(tenant).insert(job);
    }

    /// Remove a queued job. Returns whether it was present.
    pub fn cancel(&mut self, id: JobId) -> bool {
        for t in &mut self.tenants {
            if let Some(i) = t.queue.iter().position(|q| q.id == id) {
                t.queue.remove(i);
                if t.queue.is_empty() {
                    t.deficit = 0;
                }
                return true;
            }
        }
        false
    }

    /// Total queued jobs across tenants.
    pub fn depth(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Per-tenant `(name, queued, dispatched)` gauges, in first-seen order.
    pub fn gauges(&self) -> Vec<(String, u64, u64)> {
        self.tenants
            .iter()
            .map(|t| (t.name.clone(), t.queue.len() as u64, t.dispatched))
            .collect()
    }

    /// Pick the next job to dispatch. `running` reports how many jobs of a
    /// tenant are currently executing, for quota enforcement. Returns
    /// `None` when no tenant has a dispatchable job (empty queues or all
    /// quotas exhausted).
    pub fn next(&mut self, running: &dyn Fn(&str) -> usize) -> Option<QueuedJob> {
        let quota_ok =
            |t: &TenantState| !t.queue.is_empty() && running(&t.name) < t.cfg.max_running;
        // Strict priority classes: only tenants whose head job sits in the
        // top eligible class compete for this dispatch.
        let top = self
            .tenants
            .iter()
            .filter(|t| quota_ok(t))
            .map(|t| t.queue[0].priority)
            .max()?;
        let eligible = move |t: &TenantState| quota_ok(t) && t.queue[0].priority == top;
        // Each round credits every eligible tenant once; the head job with
        // the largest cost bounds the rounds needed before someone affords.
        let max_cost = self
            .tenants
            .iter()
            .filter(|t| eligible(t))
            .filter_map(|t| t.queue.first().map(|j| j.cost))
            .max()
            .unwrap_or(1);
        let quantum = self.quantum;
        let rounds = max_cost.div_ceil(quantum) as usize + 1;
        let n = self.tenants.len();
        for _ in 0..rounds {
            for t in self.tenants.iter_mut().filter(|t| eligible(t)) {
                t.deficit = t.deficit.saturating_add(quantum * t.cfg.weight);
            }
            for i in 0..n {
                let idx = (self.cursor + i) % n;
                let t = &mut self.tenants[idx];
                if !eligible(t) {
                    continue;
                }
                let head_cost = t.queue[0].cost;
                if t.deficit >= head_cost {
                    t.deficit -= head_cost;
                    let job = t.queue.remove(0);
                    if t.queue.is_empty() {
                        t.deficit = 0;
                    }
                    t.dispatched += 1;
                    self.cursor = (idx + 1) % n;
                    return Some(job);
                }
            }
        }
        unreachable!("deficit accrual must afford the cheapest head job within {rounds} rounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_running(_: &str) -> usize {
        0
    }

    #[test]
    fn single_tenant_is_fifo_within_priority() {
        let mut s = FairShare::new(1, TenantConfig::default());
        s.enqueue(1, "a", 0, 1);
        s.enqueue(2, "a", 5, 1);
        s.enqueue(3, "a", 0, 1);
        s.enqueue(4, "a", 5, 1);
        let order: Vec<JobId> = std::iter::from_fn(|| s.next(&no_running).map(|j| j.id))
            .take(4)
            .collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
        assert_eq!(s.depth(), 0);
        assert!(s.next(&no_running).is_none());
    }

    #[test]
    fn requeue_front_overtakes_same_priority_backlog() {
        let mut s = FairShare::new(1, TenantConfig::default());
        s.enqueue(1, "a", 0, 1);
        s.enqueue(2, "a", 0, 1);
        s.requeue_front(9, "a", 0, 1);
        assert_eq!(s.next(&no_running).unwrap().id, 9);
        assert_eq!(s.next(&no_running).unwrap().id, 1);
    }

    #[test]
    fn weights_skew_dispatch_share() {
        let mut s = FairShare::new(1, TenantConfig::default());
        s.set_tenant(
            "heavy",
            TenantConfig {
                weight: 3,
                max_running: usize::MAX,
            },
        );
        // Equal-cost backlogs; the weight-3 tenant should get ~3× the
        // dispatches over any window.
        for i in 0..40 {
            s.enqueue(100 + i, "heavy", 0, 3);
            s.enqueue(200 + i, "light", 0, 3);
        }
        let mut heavy = 0;
        let mut light = 0;
        for _ in 0..24 {
            let j = s.next(&no_running).unwrap();
            if j.tenant == "heavy" {
                heavy += 1;
            } else {
                light += 1;
            }
        }
        assert!(
            heavy >= 2 * light,
            "weight-3 tenant got {heavy} of 24 dispatches vs {light}"
        );
        assert!(light > 0, "light tenant must not starve");
    }

    #[test]
    fn quota_caps_concurrency_and_releases() {
        let mut s = FairShare::new(1, TenantConfig::default());
        s.set_tenant(
            "a",
            TenantConfig {
                weight: 1,
                max_running: 1,
            },
        );
        s.enqueue(1, "a", 0, 1);
        s.enqueue(2, "a", 0, 1);
        assert_eq!(s.next(&no_running).unwrap().id, 1);
        // One "a" job running: quota of 1 blocks the second.
        assert!(s.next(&|t| usize::from(t == "a")).is_none());
        // Job finished: the quota frees up.
        assert_eq!(s.next(&no_running).unwrap().id, 2);
    }

    #[test]
    fn priority_classes_are_strict_across_tenants() {
        let mut s = FairShare::new(1, TenantConfig::default());
        // A preempted low-priority job re-queued at the front must still
        // lose to the high-priority submission that displaced it.
        s.requeue_front(1, "batch", 0, 100);
        s.enqueue(2, "interactive", 9, 1);
        assert_eq!(s.next(&no_running).unwrap().id, 2);
        assert_eq!(s.next(&no_running).unwrap().id, 1);
    }

    #[test]
    fn cancel_removes_queued_job() {
        let mut s = FairShare::new(1, TenantConfig::default());
        s.enqueue(1, "a", 0, 1);
        s.enqueue(2, "a", 0, 1);
        assert!(s.cancel(1));
        assert!(!s.cancel(1));
        assert_eq!(s.next(&no_running).unwrap().id, 2);
    }

    #[test]
    fn drained_tenant_loses_banked_deficit() {
        let mut s = FairShare::new(1, TenantConfig::default());
        s.enqueue(1, "a", 0, 1);
        assert_eq!(s.next(&no_running).unwrap().id, 1);
        // "a" drained; its deficit reset. A later expensive job must pay
        // full price (several next() calls of accrual), during which "b"
        // keeps dispatching — regression guard for credit banking.
        for i in 0..10 {
            s.enqueue(10 + i, "b", 0, 1);
        }
        s.enqueue(99, "a", 0, 5);
        let mut before_expensive = 0;
        loop {
            let j = s.next(&no_running).unwrap();
            if j.id == 99 {
                break;
            }
            before_expensive += 1;
        }
        assert!(
            (3..=6).contains(&before_expensive),
            "cost-5 job should wait ~4 dispatches, waited {before_expensive}"
        );
    }
}
