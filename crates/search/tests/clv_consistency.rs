//! CLV-consistency stress test: after every prune/graft/ungraft/restore
//! operation of an exhaustive SPR sweep, the partial-traversal likelihood
//! must bit-match a from-scratch (fully invalidated) evaluation. This is
//! the invariant the whole incremental-descriptor machinery rests on — a
//! regression here historically manifested as stale orientation markers
//! colliding with re-grafted node ids.
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::model::GtrModel;
use exa_search::evaluator::{BranchMode, Evaluator, SequentialEvaluator};
use exa_simgen::{random_tree_with_lengths, simulate, SimModel, SimRates};

fn fresh_lnl(e: &mut SequentialEvaluator, edge: usize) -> f64 {
    e.tree_mut().invalidate_all();
    e.evaluate(edge)
}

#[test]
fn spr_operations_preserve_clv_consistency() {
    let true_tree = random_tree_with_lengths(10, 1, 0.05, 0.3, 11);
    let scheme = PartitionScheme::unpartitioned(600);
    let model = SimModel {
        gtr: GtrModel::jukes_cantor(),
        rates: SimRates::Uniform,
    };
    let aln = simulate(&true_tree, &scheme, &[model], 11);
    let comp = CompressedAlignment::build(&aln, &scheme);
    let slices = vec![PartitionSlice::from_compressed(0, &comp.partitions[0])];
    let engine = Engine::new(10, slices, RateModelKind::Gamma, 1.0);
    let mut e = SequentialEvaluator::new(true_tree, engine, 1, BranchMode::Joint);

    let n_taxa = 10;
    for x in n_taxa..(2 * n_taxa - 2) {
        let subs: Vec<usize> = e.tree().neighbors(x).iter().map(|&(n, _)| n).collect();
        for sub in subs {
            if e.tree().edge_between(x, sub).is_none() {
                continue;
            }
            let info = e.tree_mut().prune(x, sub);
            let cands: Vec<usize> = e
                .tree()
                .edges_within_radius(info.merged_edge, 3)
                .into_iter()
                .filter(|&ed| {
                    let edge = e.tree().edge(ed);
                    edge.a != x && edge.b != x && ed != info.free_edge
                })
                .collect();
            for target in cands {
                let g = e.tree_mut().graft(&info, target);
                let partial = e.evaluate(g.target_edge);
                let full = fresh_lnl(&mut e, g.target_edge);
                assert!((partial-full).abs() < 1e-7,
                    "INCONSISTENT after graft x={x} sub={sub} target={target}: partial {partial} vs full {full}");
                e.tree_mut().ungraft(&g, &info);
                // In the pruned state only the main component is evaluable;
                // use the merged edge (always live there).
                let p2 = e.evaluate(info.merged_edge);
                e.tree_mut().invalidate_all();
                let f2 = e.evaluate(info.merged_edge);
                assert!((p2-f2).abs() < 1e-7,
                    "INCONSISTENT after ungraft x={x} sub={sub} target={target}: partial {p2} vs full {f2}");
            }
            e.tree_mut().restore_prune(&info);
            let p3 = e.evaluate(0);
            let f3 = fresh_lnl(&mut e, 0);
            assert!(
                (p3 - f3).abs() < 1e-7,
                "INCONSISTENT after restore x={x} sub={sub}: {p3} vs {f3}"
            );
        }
    }
    println!("all consistent");
}
