//! The [`Evaluator`] trait — the seam between the (shared) search algorithm
//! and the three execution back-ends — plus the sequential reference
//! implementation.

use exa_phylo::engine::Engine;
use exa_phylo::model::gtr::NUM_FREE_RATES;
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::{EdgeId, Tree};
use exa_phylo::GradientMode;
use serde::{Deserialize, Serialize};

/// Joint (`2n-3` branch lengths shared by all partitions) versus
/// per-partition (`p·(2n-3)`, the paper's `-M` option) branch estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchMode {
    Joint,
    PerPartition,
}

/// The globally replicated search state: everything every rank must agree
/// on. This is also exactly what a checkpoint stores and what fault
/// recovery restores — the paper's "maximum state redundancy" (§V).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalState {
    pub tree: Tree,
    /// Per-partition Γ shapes (empty under PSR).
    pub alphas: Vec<f64>,
    /// Per-partition free GTR exchangeabilities.
    pub gtr_rates: Vec<[f64; NUM_FREE_RATES]>,
}

/// Panic payload used by distributed evaluators to signal a rank failure
/// out of the (Result-free) evaluator methods; [`crate::driver::run_search`]
/// catches it at iteration boundaries and consults its hooks.
#[derive(Debug, Clone)]
pub struct CommFailurePanic {
    pub failed_ranks: Vec<usize>,
}

/// Everything a checkpoint must persist to re-enter the search loop
/// bit-identically: the loop position, the replicated [`GlobalState`], and
/// the per-pattern PSR rates (which live in the data-parallel engines, not
/// in the replicated state, and so have to be gathered at checkpoint
/// boundaries).
///
/// `lnl` is stored as raw IEEE-754 bits: the checkpoint codec is JSON, and
/// a text float round-trip must not be trusted to preserve the exact bits
/// the convergence test (`improvement < epsilon`) depends on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSnapshot {
    /// Boundary iteration the snapshot was taken at.
    pub iteration: usize,
    /// Log-likelihood at that boundary, as `f64::to_bits`.
    pub lnl_bits: u64,
    /// Accepted SPR moves up to that boundary.
    pub spr_moves: usize,
    /// The replicated search state (topology, branch lengths, model).
    pub state: GlobalState,
    /// Per-global-partition, per-global-pattern PSR rates as `f64` bits;
    /// empty under Γ. Indexed `[global_partition][global_pattern]`.
    pub psr_rates: Vec<Vec<u64>>,
}

impl SearchSnapshot {
    /// The loop re-entry point this snapshot encodes.
    pub fn resume_point(&self) -> crate::driver::ResumePoint {
        crate::driver::ResumePoint {
            iteration: self.iteration,
            lnl: f64::from_bits(self.lnl_bits),
            spr_moves: self.spr_moves,
        }
    }
}

/// The search algorithm's view of the world. One implementation per
/// execution scheme; §III-B's "identical search algorithm" claim holds
/// because the search only ever talks to this trait.
pub trait Evaluator {
    /// Number of taxa.
    fn n_taxa(&self) -> usize;
    /// Number of **global** partitions.
    fn n_partitions(&self) -> usize;
    /// Branch-length estimation mode.
    fn branch_mode(&self) -> BranchMode;
    /// Rate-heterogeneity model (uniform across partitions).
    fn rate_kind(&self) -> RateModelKind;

    /// The replicated tree (read).
    fn tree(&self) -> &Tree;
    /// The replicated tree (mutate — SPR moves, branch updates).
    fn tree_mut(&mut self) -> &mut Tree;

    /// Total log-likelihood at `edge`, performing whatever partial
    /// traversal is needed. Globally reduced (a single double on the wire
    /// under the de-centralized scheme — §III-B: processes only need "the
    /// same overall values for the log likelihood score"); every caller
    /// (rank) receives the identical value.
    fn evaluate(&mut self, edge: EdgeId) -> f64;
    /// Like [`Evaluator::evaluate`] but additionally reduces the
    /// per-partition log-likelihood vector (`p` doubles), needed by the
    /// batched model-parameter optimization. Refreshes
    /// [`Evaluator::last_per_partition`].
    fn evaluate_partitioned(&mut self, edge: EdgeId) -> f64;
    /// Per-global-partition log-likelihoods from the most recent
    /// [`Evaluator::evaluate_partitioned`] call.
    fn last_per_partition(&self) -> &[f64];

    /// Prepare branch-length derivative computation at `edge` (CLV updates
    /// plus sumtable construction).
    fn prepare_derivatives(&mut self, edge: EdgeId);
    /// First/second log-likelihood derivatives at the prepared edge, for
    /// candidate branch length(s): `lengths` has 1 entry under joint mode,
    /// one per global partition under per-partition mode. Returns globally
    /// reduced derivative vectors of the same arity.
    fn derivatives(&mut self, lengths: &[f64]) -> (Vec<f64>, Vec<f64>);
    /// Globally reduced `(d1, d2)` for **every** edge at the current branch
    /// lengths. The default walks the per-edge path (a `prepare_derivatives`
    /// and `derivatives` call at each edge — one collective per edge);
    /// evaluators running with `--gradient on` override it with the
    /// one-pass [`Engine::edge_gradient`] sweep and a **single** fat
    /// collective. Both routes are bitwise identical entry for entry
    /// (proven by the gradient-identity battery), so which one ran is
    /// observable only in [`FullGradient::collectives`] /
    /// [`FullGradient::swept`].
    fn full_gradient(&mut self) -> FullGradient {
        per_edge_full_gradient(self)
    }

    /// Current per-partition Γ shapes (empty under PSR).
    fn alphas(&self) -> Vec<f64>;
    /// Batched α update for **all** partitions at once (invalidates CLVs).
    fn set_alphas(&mut self, alphas: &[f64]);
    /// Current values of free GTR rate `rate_index` across partitions.
    fn gtr_rate(&self, rate_index: usize) -> Vec<f64>;
    /// Batched update of free GTR rate `rate_index` for all partitions.
    fn set_gtr_rate(&mut self, rate_index: usize, values: &[f64]);
    /// Optimize PSR per-site rates (no-op under Γ). Implementations keep
    /// this data-local except for the small normalization reduction.
    fn optimize_site_rates(&mut self);

    /// Snapshot the replicated global state (checkpointing, fault
    /// recovery).
    fn snapshot(&self) -> GlobalState;
    /// Restore a snapshot (after recovery or restart).
    fn restore(&mut self, state: &GlobalState);

    /// Downcasting hook: lets scheme-specific recovery code (e.g. the
    /// de-centralized fault handler rebuilding a rank's engine) reach its
    /// concrete evaluator through the trait object.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Digest of the likelihood-kernel backend this evaluator computes
    /// with, folded into [`Evaluator::state_fingerprint`] as
    /// [`exa_obs::Component::KernelBackend`]. Backends are bitwise
    /// identical by contract, so a mix never shows up in the numeric
    /// components — but mixed backends still break the interchangeability
    /// that fault-driven data redistribution relies on, so the sentinel
    /// flags them directly. Implementations backed by an engine return a
    /// hash of the kernel label; the default (0) means "unspecified" and
    /// only ever disagrees with an implementation that overrides this.
    fn backend_fingerprint(&self) -> u64 {
        0
    }

    /// Deterministic digest of the replicated search state, one 64-bit
    /// hash per [`exa_obs::Component`]. Under the de-centralized scheme
    /// every rank must produce the identical fingerprint at the same
    /// collective count — the replica-divergence sentinel exchanges and
    /// compares these. Bit-exact: hashes `f64::to_bits`, so a single
    /// flipped mantissa bit anywhere in the state changes the digest.
    fn state_fingerprint(&self) -> exa_obs::StateFingerprint {
        let mut model = exa_obs::Fnv1a::new();
        for a in self.alphas() {
            model.write_f64(a);
        }
        for r in 0..NUM_FREE_RATES {
            for v in self.gtr_rate(r) {
                model.write_f64(v);
            }
        }
        let tree = self.tree();
        let mut topology = exa_obs::Fnv1a::new();
        let mut branches = exa_obs::Fnv1a::new();
        for e in 0..tree.n_edges() {
            let edge = tree.edge(e);
            topology.write_u64(edge.a as u64);
            topology.write_u64(edge.b as u64);
            for &l in &edge.lengths {
                branches.write_f64(l);
            }
        }
        let mut lnl = exa_obs::Fnv1a::new();
        for &v in self.last_per_partition() {
            lnl.write_f64(v);
        }
        // Order matches `Component::ALL`.
        exa_obs::StateFingerprint {
            components: [
                model.finish(),
                branches.finish(),
                topology.finish(),
                lnl.finish(),
                self.backend_fingerprint(),
            ],
        }
    }
}

/// The all-edge derivative vector a branch-smoothing pass starts from,
/// produced by [`Evaluator::full_gradient`]. Entries follow edge ids;
/// each entry has the same arity as [`Evaluator::derivatives`] (1 under
/// joint mode, one per global partition under `-M`).
#[derive(Debug, Clone)]
pub struct FullGradient {
    /// First derivatives, `d1[edge][slot]`.
    pub d1: Vec<Vec<f64>>,
    /// Second derivatives, `d2[edge][slot]`.
    pub d2: Vec<Vec<f64>>,
    /// Collectives spent producing the vector (1 for the sweep, `n_edges`
    /// for the per-edge route) — what the bench guard's ratio is built on.
    pub collectives: u64,
    /// True when the one-pass gradient sweep produced it.
    pub swept: bool,
}

/// The per-edge reference route for [`Evaluator::full_gradient`]: prepare +
/// differentiate every edge at the current lengths, one collective each.
/// Kept callable on its own so tests can pit it against a sweep-capable
/// override directly.
pub fn per_edge_full_gradient<E: Evaluator + ?Sized>(eval: &mut E) -> FullGradient {
    let n_edges = eval.tree().n_edges();
    let mut d1 = Vec::with_capacity(n_edges);
    let mut d2 = Vec::with_capacity(n_edges);
    for e in 0..n_edges {
        eval.prepare_derivatives(e);
        let arity = match eval.branch_mode() {
            BranchMode::Joint => 1,
            BranchMode::PerPartition => eval.n_partitions(),
        };
        let t: Vec<f64> = (0..arity).map(|p| eval.tree().edge(e).length(p)).collect();
        let (e1, e2) = eval.derivatives(&t);
        d1.push(e1);
        d2.push(e2);
    }
    FullGradient {
        d1,
        d2,
        collectives: n_edges as u64,
        swept: false,
    }
}

/// The canonical [`Evaluator::backend_fingerprint`] digest for an engine's
/// compute configuration: FNV-1a over the kernel label, the site-repeats
/// setting, the reduction-mode label, the intra-rank thread count and the
/// gradient mode. All engine-backed evaluators use this so that identical
/// backends hash identically across schemes — and a rank that silently
/// resolved a different repeats setting, reduction mode (which would change
/// the bits of every collective sum), thread count or gradient mode
/// (result-neutral, but a heterogeneous world breaks the hybrid execution
/// model's uniformity contract and skews the collective counts ranks must
/// agree on) trips the sentinel like a kernel mismatch does, at the first
/// fingerprint sync.
pub fn kernel_fingerprint(
    kind: exa_phylo::KernelKind,
    repeats: exa_phylo::SiteRepeats,
    reduce: &str,
    threads: usize,
    gradient: GradientMode,
) -> u64 {
    exa_obs::fnv1a(
        format!(
            "{}+repeats:{}+reduce:{}+threads:{}+gradient:{}",
            kind.label(),
            repeats.label(),
            reduce,
            threads,
            gradient.label()
        )
        .as_bytes(),
    )
}

/// Helper shared by all back-ends: push global (α, GTR) parameters into an
/// engine's local partitions.
///
/// The existing model object is mutated (`set_rates`) rather than rebuilt
/// with `GtrModel::new`: reconstruction would re-normalize the already
/// normalized base frequencies, shifting them by an ULP and making a
/// restored engine bitwise-different from the live engine it snapshots —
/// which breaks the checkpoint/restart replay guarantee. `set_rates` also
/// applies the same clamping the in-run `set_gtr_rate` path does.
pub fn apply_global_params(engine: &mut Engine, state: &GlobalState) {
    for (local, global) in engine.global_indices().into_iter().enumerate() {
        let (mut model, mut rates) = engine.model_state(local);
        if let Some(&a) = state.alphas.get(global) {
            rates.set_alpha(a);
        }
        model.set_rates(&state.gtr_rates[global]);
        engine.set_model_state(local, model, rates);
    }
}

/// The sequential back-end: one engine holding all data, no communication.
/// This is both the correctness reference for the parallel schemes and the
/// single-rank execution path.
pub struct SequentialEvaluator {
    tree: Tree,
    engine: Engine,
    n_partitions: usize,
    branch_mode: BranchMode,
    gradient: GradientMode,
    alphas: Vec<f64>,
    gtr_rates: Vec<[f64; NUM_FREE_RATES]>,
    last_lnl: Vec<f64>,
}

impl SequentialEvaluator {
    /// Wrap a tree and a full-data engine. The tree's branch-length arity
    /// must match the mode (1 for joint, `n_partitions` for per-partition).
    pub fn new(tree: Tree, engine: Engine, n_partitions: usize, branch_mode: BranchMode) -> Self {
        let expected = match branch_mode {
            BranchMode::Joint => 1,
            BranchMode::PerPartition => n_partitions,
        };
        assert_eq!(
            tree.blen_count(),
            expected,
            "tree branch-length arity mismatch"
        );
        let alphas = match engine.rate_kind() {
            RateModelKind::Gamma => (0..engine.n_partitions())
                .map(|i| engine.alpha(i).unwrap())
                .collect(),
            RateModelKind::Psr => Vec::new(),
        };
        let gtr_rates = (0..engine.n_partitions())
            .map(|i| {
                let r = engine.gtr_rates(i);
                [r[0], r[1], r[2], r[3], r[4]]
            })
            .collect();
        SequentialEvaluator {
            tree,
            engine,
            n_partitions,
            branch_mode,
            gradient: GradientMode::Off,
            alphas,
            gtr_rates,
            last_lnl: vec![0.0; n_partitions],
        }
    }

    /// Select the full-tree gradient mode (builder style). There is no
    /// communication to save sequentially, but `On` still collapses a
    /// smoothing pass's `2(2n-3)` kernel dispatches into one sweep, and it
    /// keeps the single-rank path exercising the same code the distributed
    /// schemes negotiate.
    pub fn with_gradient(mut self, gradient: GradientMode) -> Self {
        self.gradient = gradient;
        self
    }

    /// The gradient mode this evaluator runs with.
    pub fn gradient(&self) -> GradientMode {
        self.gradient
    }

    /// Access the inner engine (tests, statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (advanced use/testing).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }
}

impl Evaluator for SequentialEvaluator {
    fn n_taxa(&self) -> usize {
        self.tree.n_taxa()
    }

    fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    fn branch_mode(&self) -> BranchMode {
        self.branch_mode
    }

    fn rate_kind(&self) -> RateModelKind {
        self.engine.rate_kind()
    }

    fn tree(&self) -> &Tree {
        &self.tree
    }

    fn tree_mut(&mut self) -> &mut Tree {
        &mut self.tree
    }

    fn evaluate(&mut self, edge: EdgeId) -> f64 {
        // Sequential: no communication, so the partitioned form is free.
        self.evaluate_partitioned(edge)
    }

    fn evaluate_partitioned(&mut self, edge: EdgeId) -> f64 {
        let d = self.tree.traversal_descriptor(edge);
        self.engine.execute(&d);
        let per_local = self.engine.evaluate(&d);
        self.last_lnl = vec![0.0; self.n_partitions];
        for (local, global) in self.engine.global_indices().into_iter().enumerate() {
            self.last_lnl[global] = per_local[local];
        }
        self.last_lnl.iter().sum()
    }

    fn last_per_partition(&self) -> &[f64] {
        &self.last_lnl
    }

    fn prepare_derivatives(&mut self, edge: EdgeId) {
        let d = self.tree.traversal_descriptor(edge);
        self.engine.execute(&d);
        self.engine.prepare_derivatives(&d);
    }

    fn derivatives(&mut self, lengths: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let (d1, d2) = self.engine.derivatives(lengths);
        match self.branch_mode {
            BranchMode::Joint => (vec![d1.iter().sum()], vec![d2.iter().sum()]),
            BranchMode::PerPartition => {
                let mut g1 = vec![0.0; self.n_partitions];
                let mut g2 = vec![0.0; self.n_partitions];
                for (local, global) in self.engine.global_indices().into_iter().enumerate() {
                    g1[global] = d1[local];
                    g2[global] = d2[local];
                }
                (g1, g2)
            }
        }
    }

    fn full_gradient(&mut self) -> FullGradient {
        if self.gradient == GradientMode::Off {
            return per_edge_full_gradient(self);
        }
        let d = self.tree.traversal_descriptor(0);
        self.engine.execute(&d);
        let plan = self.tree.gradient_plan(0);
        let sweep = self.engine.edge_gradient(&plan);
        let globals = self.engine.global_indices();
        let mut d1 = vec![Vec::new(); plan.n_edges];
        let mut d2 = vec![Vec::new(); plan.n_edges];
        for (e, (g1, g2)) in d1.iter_mut().zip(d2.iter_mut()).enumerate() {
            match self.branch_mode {
                // Same local-index summation order as `derivatives`, so the
                // fold is bitwise identical to the per-edge route's.
                BranchMode::Joint => {
                    *g1 = vec![sweep.iter().map(|p| p[e].0).sum()];
                    *g2 = vec![sweep.iter().map(|p| p[e].1).sum()];
                }
                BranchMode::PerPartition => {
                    *g1 = vec![0.0; self.n_partitions];
                    *g2 = vec![0.0; self.n_partitions];
                    for (local, &global) in globals.iter().enumerate() {
                        g1[global] = sweep[local][e].0;
                        g2[global] = sweep[local][e].1;
                    }
                }
            }
        }
        FullGradient {
            d1,
            d2,
            collectives: 0,
            swept: true,
        }
    }

    fn alphas(&self) -> Vec<f64> {
        self.alphas.clone()
    }

    fn set_alphas(&mut self, alphas: &[f64]) {
        assert_eq!(alphas.len(), self.n_partitions);
        self.alphas = alphas.to_vec();
        for (local, global) in self.engine.global_indices().into_iter().enumerate() {
            self.engine.set_alpha(local, alphas[global]);
        }
        self.tree.invalidate_all();
    }

    fn gtr_rate(&self, rate_index: usize) -> Vec<f64> {
        self.gtr_rates.iter().map(|r| r[rate_index]).collect()
    }

    fn set_gtr_rate(&mut self, rate_index: usize, values: &[f64]) {
        assert_eq!(values.len(), self.n_partitions);
        for (g, &v) in values.iter().enumerate() {
            self.gtr_rates[g][rate_index] = v;
        }
        for (local, global) in self.engine.global_indices().into_iter().enumerate() {
            self.engine.set_gtr_rate(local, rate_index, values[global]);
        }
        self.tree.invalidate_all();
    }

    fn optimize_site_rates(&mut self) {
        if self.engine.rate_kind() != RateModelKind::Psr {
            return;
        }
        let d = self.tree.full_traversal_descriptor(0);
        self.engine.execute(&d);
        let (num, den) = self.engine.optimize_site_rates(&d);
        if num > 0.0 {
            self.engine.finalize_site_rates(den / num);
        }
        self.tree.invalidate_all();
    }

    fn snapshot(&self) -> GlobalState {
        GlobalState {
            tree: self.tree.clone(),
            alphas: self.alphas.clone(),
            gtr_rates: self.gtr_rates.clone(),
        }
    }

    fn restore(&mut self, state: &GlobalState) {
        self.tree = state.tree.clone();
        self.alphas = state.alphas.clone();
        self.gtr_rates = state.gtr_rates.clone();
        apply_global_params(&mut self.engine, state);
        self.tree.invalidate_all();
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn backend_fingerprint(&self) -> u64 {
        kernel_fingerprint(
            self.engine.kernel_kind(),
            self.engine.site_repeats(),
            "fast",
            self.engine.threads(),
            self.gradient,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_bio::alignment::Alignment;
    use exa_bio::partition::PartitionScheme;
    use exa_bio::patterns::CompressedAlignment;
    use exa_phylo::engine::PartitionSlice;

    fn make_eval(kind: RateModelKind) -> SequentialEvaluator {
        let rows = [
            ("t0", "ACGTACGTACGTACGTAAAA"),
            ("t1", "ACGTACGAACGTACGTAAAC"),
            ("t2", "TCGAACGTACGAACGTAAAG"),
            ("t3", "TCGAACGAACGTACGAAAAT"),
            ("t4", "TCGATCGAACGTACGAATAT"),
        ];
        let aln = Alignment::from_ascii(&rows).unwrap();
        let scheme = PartitionScheme::uniform_chunks(2, 10);
        let comp = CompressedAlignment::build(&aln, &scheme);
        let slices: Vec<PartitionSlice> = comp
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| PartitionSlice::from_compressed(i, p))
            .collect();
        let engine = Engine::new(5, slices, kind, 1.0);
        let tree = Tree::random(5, 1, 3);
        SequentialEvaluator::new(tree, engine, 2, BranchMode::Joint)
    }

    #[test]
    fn evaluate_fills_per_partition() {
        let mut e = make_eval(RateModelKind::Gamma);
        let total = e.evaluate(0);
        let per: f64 = e.last_per_partition().iter().sum();
        assert!((total - per).abs() < 1e-12);
        assert!(total < 0.0);
        assert_eq!(e.last_per_partition().len(), 2);
    }

    #[test]
    fn set_alphas_changes_likelihood() {
        let mut e = make_eval(RateModelKind::Gamma);
        let l0 = e.evaluate(0);
        e.set_alphas(&[0.05, 0.05]);
        let l1 = e.evaluate(0);
        assert_ne!(l0, l1);
        assert_eq!(e.alphas(), vec![0.05, 0.05]);
    }

    #[test]
    fn set_gtr_rate_changes_likelihood() {
        let mut e = make_eval(RateModelKind::Gamma);
        let l0 = e.evaluate(0);
        e.set_gtr_rate(1, &[5.0, 5.0]);
        let l1 = e.evaluate(0);
        assert_ne!(l0, l1);
        assert_eq!(e.gtr_rate(1), vec![5.0, 5.0]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut e = make_eval(RateModelKind::Gamma);
        e.set_alphas(&[0.3, 2.0]);
        let l0 = e.evaluate(0);
        let snap = e.snapshot();

        // Perturb everything.
        e.set_alphas(&[1.0, 1.0]);
        e.set_gtr_rate(0, &[3.0, 3.0]);
        e.tree_mut().set_length(0, 0, 1.7);
        let l1 = e.evaluate(0);
        assert_ne!(l0, l1);

        e.restore(&snap);
        let l2 = e.evaluate(0);
        assert!(
            (l0 - l2).abs() < 1e-9,
            "restore must reproduce the snapshot: {l0} vs {l2}"
        );
    }

    #[test]
    fn state_fingerprint_localizes_perturbations() {
        use exa_obs::Component;
        let mut a = make_eval(RateModelKind::Gamma);
        let mut b = make_eval(RateModelKind::Gamma);
        a.evaluate(0);
        b.evaluate(0);
        assert_eq!(
            a.state_fingerprint(),
            b.state_fingerprint(),
            "identically-built evaluators fingerprint identically"
        );

        // A single-bit α flip moves exactly the ModelParams digest.
        let mut alphas = b.alphas();
        alphas[0] = f64::from_bits(alphas[0].to_bits() ^ 1);
        b.set_alphas(&alphas);
        let d = a.state_fingerprint().differing(&b.state_fingerprint());
        assert_eq!(d, vec![Component::ModelParams]);

        // A branch-length nudge on a restored copy moves BranchLengths
        // (the tree shape itself is untouched).
        let snap = a.snapshot();
        b.restore(&snap);
        assert_eq!(
            a.state_fingerprint().differing(&b.state_fingerprint()),
            vec![]
        );
        let old = b.tree().edge(2).lengths[0];
        b.tree_mut().set_length(2, 0, old + 1e-6);
        let d = a.state_fingerprint().differing(&b.state_fingerprint());
        assert_eq!(d, vec![Component::BranchLengths]);
    }

    #[test]
    fn psr_site_rate_optimization_is_safe() {
        let mut e = make_eval(RateModelKind::Psr);
        let l0 = e.evaluate(0);
        e.optimize_site_rates();
        let l1 = e.evaluate(0);
        assert!(l1 >= l0 - 1e-6, "{l0} -> {l1}");
    }

    #[test]
    fn gamma_site_rate_optimization_is_noop() {
        let mut e = make_eval(RateModelKind::Gamma);
        let l0 = e.evaluate(0);
        e.optimize_site_rates();
        let l1 = e.evaluate(0);
        assert_eq!(l0, l1);
    }
}
