//! The hill-climbing search driver.
//!
//! The loop structure follows RAxML-Light/ExaML: initial branch smoothing
//! and model optimization, then repeated (SPR round → branch smoothing →
//! model optimization) iterations until the log-likelihood improvement
//! drops below ε. The same driver runs sequentially, on the fork-join
//! master, and replicated on every de-centralized rank.
//!
//! Iteration boundaries are the **quiescent points** of the whole system:
//! hooks fire there for checkpointing, and a rank failure signalled from
//! inside an iteration (via a [`CommFailurePanic`] panic out of a
//! distributed evaluator) unwinds to the boundary, where the hook decides
//! whether to recover-and-retry the iteration from the last consistent
//! snapshot — the paper's §V fault-tolerance design built on full state
//! redundancy.

use crate::evaluator::{CommFailurePanic, Evaluator};
use crate::{branch, model, spr, SearchConfig};
use serde::{Deserialize, Serialize};

/// Result of a completed search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// Final total log-likelihood.
    pub lnl: f64,
    /// Search iterations executed (the paper reports 17–23 on the
    /// partitioned datasets, §IV-D).
    pub iterations: usize,
    /// Total accepted SPR moves.
    pub spr_moves: usize,
    /// Whether the ε-convergence criterion was reached (vs the iteration
    /// cap).
    pub converged: bool,
}

/// Search progress at an iteration boundary, handed to
/// [`SearchHooks::at_boundary`]. A struct (rather than positional
/// arguments) so new observability fields don't ripple through every hook
/// implementor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryInfo {
    /// Iteration about to start (0 = before the first).
    pub iteration: usize,
    /// Current total log-likelihood.
    pub lnl: f64,
    /// Accepted SPR moves so far.
    pub spr_moves: usize,
}

/// Where to re-enter the search loop on a checkpoint restart. The driver
/// skips initial conditioning (the checkpointed `lnl` already reflects it)
/// and seeds its loop counters from here, so a resumed run replays the
/// remaining iterations bit-identically to an uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResumePoint {
    /// Iteration to resume at (the checkpoint's boundary iteration).
    pub iteration: usize,
    /// Log-likelihood at that boundary (already max-folded by the loop).
    pub lnl: f64,
    /// Accepted SPR moves up to that boundary.
    pub spr_moves: usize,
}

/// A deterministic kill point for the crash/restart chaos harness:
/// terminate the run immediately after the `after_checkpoints`-th
/// checkpoint has been committed. With `rank: None` every rank dies at
/// that boundary (a job-level kill); with `rank: Some(r)` only rank `r`
/// dies (a node loss), which the kill-armed drivers escalate to a full
/// abort instead of recovering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillSpec {
    /// Die after this many checkpoints have been written (1 = after the
    /// first).
    pub after_checkpoints: u64,
    /// Victim rank, or `None` for all ranks.
    pub rank: Option<usize>,
}

/// Panic payload thrown by checkpoint hooks when an injected [`KillSpec`]
/// fires. Propagates through [`run_search_from`] (it is deliberately *not*
/// a recoverable [`CommFailurePanic`]) and is caught by the scheme driver,
/// which reports the run as killed.
#[derive(Debug, Clone)]
pub struct KillPanic {
    /// Checkpoints committed when the kill fired.
    pub after_checkpoints: u64,
    /// Boundary iteration at which the kill fired.
    pub iteration: usize,
}

/// Cooperative preemption request, shared between a controller (scheduler,
/// signal handler) and a running search. The controller calls
/// [`PreemptSignal::request`]; the run observes it at the next iteration
/// boundary — the same quiescent point where checkpoints commit — writes a
/// final checkpoint and unwinds with a [`PreemptPanic`]. The flag is a
/// plain `SeqCst` atomic: boundary hooks turn the racy per-rank read into a
/// collective decision (an allgather) so every rank preempts at the *same*
/// boundary.
#[derive(Clone, Default)]
pub struct PreemptSignal(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl PreemptSignal {
    pub fn new() -> PreemptSignal {
        PreemptSignal::default()
    }

    /// Ask the run to checkpoint and stop at its next boundary.
    pub fn request(&self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Has a preemption been requested?
    pub fn is_requested(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Clear a pending request (used when re-arming a resumed run).
    pub fn clear(&self) {
        self.0.store(false, std::sync::atomic::Ordering::SeqCst);
    }
}

impl std::fmt::Debug for PreemptSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PreemptSignal")
            .field(&self.is_requested())
            .finish()
    }
}

// A preempt handle is process-local: it never travels through a config
// file or checkpoint. Serialize to `Null` and deserialize to a fresh,
// disconnected signal so configs holding one still round-trip.
impl Serialize for PreemptSignal {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for PreemptSignal {
    fn from_value(_v: &serde::Value) -> Result<PreemptSignal, serde::DeError> {
        Ok(PreemptSignal::default())
    }
}

/// Panic payload thrown by boundary hooks when a [`PreemptSignal`] fires.
/// Like [`KillPanic`] it is control flow, not an error: the scheme driver
/// catches it and reports the run as cleanly preempted (checkpoint
/// committed, resumable).
#[derive(Debug, Clone)]
pub struct PreemptPanic {
    /// Boundary iteration at which the preemption was honoured.
    pub iteration: usize,
    /// Checkpoints committed by this run, including the preemption
    /// checkpoint itself when one was written.
    pub checkpoints: u64,
}

/// Hook points at iteration boundaries.
pub trait SearchHooks {
    /// Called before each iteration (and once before the first) with the
    /// current search progress. Checkpointing, heartbeats and fault
    /// injection live here.
    fn at_boundary(&mut self, eval: &mut dyn Evaluator, info: &BoundaryInfo);

    /// A recoverable failure unwound the current iteration. Return `true`
    /// after restoring consistent state (the driver retries the iteration),
    /// `false` to abort the search (the panic is re-raised).
    fn on_failure(&mut self, eval: &mut dyn Evaluator, failure: &CommFailurePanic) -> bool;
}

/// No-op hooks (sequential runs, tests).
pub struct NoHooks;

impl SearchHooks for NoHooks {
    fn at_boundary(&mut self, _eval: &mut dyn Evaluator, _info: &BoundaryInfo) {}
    fn on_failure(&mut self, _eval: &mut dyn Evaluator, _failure: &CommFailurePanic) -> bool {
        false
    }
}

/// Run the search to convergence.
pub fn run_search(
    eval: &mut dyn Evaluator,
    cfg: &SearchConfig,
    hooks: &mut dyn SearchHooks,
) -> SearchResult {
    run_search_from(eval, cfg, hooks, None)
}

/// [`run_search`], optionally re-entering the loop at a [`ResumePoint`].
///
/// On resume the initial conditioning phase (branch smoothing + model
/// optimization before iteration 0) is skipped: the restored model
/// parameters, branch lengths and `lnl` already include it, and re-running
/// it would perturb the state away from the uninterrupted trajectory. The
/// caller must have restored the evaluator to the checkpointed state first.
pub fn run_search_from(
    eval: &mut dyn Evaluator,
    cfg: &SearchConfig,
    hooks: &mut dyn SearchHooks,
    resume: Option<&ResumePoint>,
) -> SearchResult {
    let (mut lnl, mut iterations, mut spr_moves) = match resume {
        Some(rp) => (rp.lnl, rp.iteration, rp.spr_moves),
        None => {
            // Initial conditioning: branch lengths, then model.
            let lnl = run_recoverable(eval, hooks, &mut |e| {
                branch::smooth_all(e, cfg.smoothing_passes.max(2));
                if cfg.optimize_model {
                    model::optimize_model(e, cfg.model_tol).lnl
                } else {
                    e.evaluate(0)
                }
            });
            (lnl, 0, 0)
        }
    };
    let mut converged = false;

    while iterations < cfg.max_iterations {
        exa_obs::mark(|| format!("{}{iterations}", exa_obs::ITERATION_MARK));
        hooks.at_boundary(
            eval,
            &BoundaryInfo {
                iteration: iterations,
                lnl,
                spr_moves,
            },
        );
        let radius = cfg.spr_radius;
        let passes = cfg.smoothing_passes;
        let optimize = cfg.optimize_model;
        let tol = cfg.model_tol;
        let (new_lnl, accepted) = {
            let mut accepted_out = 0usize;
            let out = run_recoverable(eval, hooks, &mut |e| {
                let stats = spr::spr_round(e, radius, lnl, 0.01);
                accepted_out = stats.accepted;
                branch::smooth_all(e, passes);
                if optimize {
                    model::optimize_model(e, tol).lnl
                } else {
                    e.evaluate(0)
                }
            });
            (out, accepted_out)
        };
        iterations += 1;
        spr_moves += accepted;
        if exa_obs::metrics::enabled() {
            let reg = exa_obs::metrics::global();
            reg.counter(
                "exa_search_iterations_total",
                "SPR search iterations completed, summed over ranks running the loop \
                 (all ranks under the de-centralized scheme, the master under fork-join).",
                &[],
            )
            .inc();
            reg.counter(
                "exa_spr_moves_total",
                "Accepted SPR moves, summed over ranks running the search loop.",
                &[],
            )
            .add(accepted as u64);
        }
        let improvement = new_lnl - lnl;
        lnl = new_lnl.max(lnl);
        if improvement < cfg.epsilon {
            converged = true;
            break;
        }
    }

    SearchResult {
        lnl,
        iterations,
        spr_moves,
        converged,
    }
}

/// Execute `body`; if it panics with a [`CommFailurePanic`], consult the
/// hooks and retry (the hooks must have restored consistent state). Any
/// other panic propagates.
fn run_recoverable(
    eval: &mut dyn Evaluator,
    hooks: &mut dyn SearchHooks,
    body: &mut dyn FnMut(&mut dyn Evaluator) -> f64,
) -> f64 {
    loop {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(eval)));
        match outcome {
            Ok(v) => return v,
            Err(payload) => match payload.downcast::<CommFailurePanic>() {
                Ok(failure) => {
                    if !hooks.on_failure(eval, &failure) {
                        std::panic::resume_unwind(Box::new(*failure));
                    }
                    // Hooks restored state; retry the body.
                }
                Err(other) => std::panic::resume_unwind(other),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{BranchMode, SequentialEvaluator};
    use exa_phylo::engine::{Engine, PartitionSlice};
    use exa_phylo::model::rates::RateModelKind;
    use exa_phylo::tree::bipartitions::rf_distance;
    use exa_phylo::tree::Tree;
    use exa_simgen::workloads;

    fn make_eval(kind: RateModelKind, seed: u64) -> (SequentialEvaluator, Tree) {
        let w = workloads::partitioned(8, 2, 150, seed);
        let slices: Vec<PartitionSlice> = w
            .compressed
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| PartitionSlice::from_compressed(i, p))
            .collect();
        let engine = Engine::new(8, slices, kind, 1.0);
        let start = Tree::random(8, 1, seed + 99);
        (
            SequentialEvaluator::new(start, engine, 2, BranchMode::Joint),
            w.true_tree,
        )
    }

    #[test]
    fn search_converges_and_improves() {
        let (mut e, _) = make_eval(RateModelKind::Gamma, 5);
        let start_lnl = e.evaluate(0);
        let r = run_search(&mut e, &SearchConfig::fast(), &mut NoHooks);
        assert!(r.lnl > start_lnl, "{start_lnl} -> {}", r.lnl);
        assert!(r.iterations >= 1);
        e.tree().check_invariants().unwrap();
    }

    #[test]
    fn search_recovers_generating_topology() {
        let (mut e, true_tree) = make_eval(RateModelKind::Gamma, 13);
        let cfg = SearchConfig {
            max_iterations: 6,
            epsilon: 0.05,
            ..SearchConfig::fast()
        };
        run_search(&mut e, &cfg, &mut NoHooks);
        let rf = rf_distance(e.tree(), &true_tree);
        // 8 taxa, 300 simulated sites: the ML tree is almost always the
        // generating tree (allow one split of slack).
        assert!(rf <= 2, "RF distance to truth: {rf}");
    }

    #[test]
    fn search_is_deterministic() {
        let (mut a, _) = make_eval(RateModelKind::Gamma, 17);
        let (mut b, _) = make_eval(RateModelKind::Gamma, 17);
        let cfg = SearchConfig::fast();
        let ra = run_search(&mut a, &cfg, &mut NoHooks);
        let rb = run_search(&mut b, &cfg, &mut NoHooks);
        assert_eq!(
            ra.lnl.to_bits(),
            rb.lnl.to_bits(),
            "bit-identical likelihoods"
        );
        assert_eq!(ra.iterations, rb.iterations);
        assert_eq!(rf_distance(a.tree(), b.tree()), 0);
    }

    #[test]
    fn psr_search_runs() {
        let (mut e, _) = make_eval(RateModelKind::Psr, 23);
        let start = e.evaluate(0);
        let r = run_search(&mut e, &SearchConfig::fast(), &mut NoHooks);
        assert!(r.lnl > start);
    }

    #[test]
    fn hooks_fire_at_boundaries() {
        struct Counting {
            boundaries: usize,
        }
        impl SearchHooks for Counting {
            fn at_boundary(&mut self, _e: &mut dyn Evaluator, _info: &BoundaryInfo) {
                self.boundaries += 1;
            }
            fn on_failure(
                &mut self,
                _e: &mut dyn Evaluator,
                _f: &crate::evaluator::CommFailurePanic,
            ) -> bool {
                false
            }
        }
        let (mut e, _) = make_eval(RateModelKind::Gamma, 29);
        let mut hooks = Counting { boundaries: 0 };
        let r = run_search(&mut e, &SearchConfig::fast(), &mut hooks);
        assert_eq!(hooks.boundaries, r.iterations);
    }

    #[test]
    fn resume_from_boundary_is_bitwise_identical() {
        use crate::evaluator::GlobalState;
        // Reference: uninterrupted run.
        let (mut reference, _) = make_eval(RateModelKind::Gamma, 37);
        let cfg = SearchConfig::fast();
        let ref_result = run_search(&mut reference, &cfg, &mut NoHooks);
        assert!(ref_result.iterations >= 2, "need a boundary to resume at");

        // Capture the state at an interior boundary, as a checkpoint would.
        struct Capture {
            at: usize,
            point: Option<(ResumePoint, GlobalState)>,
        }
        impl SearchHooks for Capture {
            fn at_boundary(&mut self, e: &mut dyn Evaluator, info: &BoundaryInfo) {
                if info.iteration == self.at {
                    self.point = Some((
                        ResumePoint {
                            iteration: info.iteration,
                            lnl: info.lnl,
                            spr_moves: info.spr_moves,
                        },
                        e.snapshot(),
                    ));
                }
            }
            fn on_failure(&mut self, _e: &mut dyn Evaluator, _f: &CommFailurePanic) -> bool {
                false
            }
        }
        let (mut first, _) = make_eval(RateModelKind::Gamma, 37);
        let mut capture = Capture { at: 1, point: None };
        run_search(&mut first, &cfg, &mut capture);
        let (point, state) = capture.point.expect("boundary 1 must fire");

        // Restart a fresh evaluator from the captured state.
        let (mut resumed, _) = make_eval(RateModelKind::Gamma, 37);
        resumed.restore(&state);
        let res = run_search_from(&mut resumed, &cfg, &mut NoHooks, Some(&point));
        assert_eq!(res.lnl.to_bits(), ref_result.lnl.to_bits());
        assert_eq!(res.iterations, ref_result.iterations);
        assert_eq!(res.spr_moves, ref_result.spr_moves);
        assert_eq!(rf_distance(resumed.tree(), reference.tree()), 0);
    }

    #[test]
    fn unrelated_panics_propagate() {
        struct Boom;
        impl SearchHooks for Boom {
            fn at_boundary(&mut self, _e: &mut dyn Evaluator, info: &BoundaryInfo) {
                if info.iteration == 0 {
                    panic!("unrelated failure");
                }
            }
            fn on_failure(
                &mut self,
                _e: &mut dyn Evaluator,
                _f: &crate::evaluator::CommFailurePanic,
            ) -> bool {
                true
            }
        }
        let (mut e, _) = make_eval(RateModelKind::Gamma, 31);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_search(&mut e, &SearchConfig::fast(), &mut Boom)
        }));
        assert!(result.is_err());
    }
}
