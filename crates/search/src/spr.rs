//! Lazy SPR (subtree-prune-regraft) rounds — the topology moves of the
//! RAxML hill-climbing search (ref. 29 of the paper).
//!
//! "Lazy" means a candidate insertion is scored *without* optimizing branch
//! lengths (the split target branch takes half its length on each side);
//! only the accepted move gets its three affected branches Newton-optimized.
//! Every candidate evaluation is a short partial traversal — under
//! fork-join, each one is a parallel region with a descriptor broadcast,
//! which is precisely the traffic ExaML eliminates.

use crate::branch::optimize_branch;
use crate::evaluator::Evaluator;
use exa_phylo::tree::{EdgeId, NodeId};

/// Statistics from one SPR round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprStats {
    /// Subtrees pruned and re-tried.
    pub prunes: usize,
    /// Candidate insertions evaluated.
    pub insertions_tried: usize,
    /// Accepted (improving) moves.
    pub accepted: usize,
    /// Log-likelihood after the round.
    pub lnl: f64,
}

/// One full SPR round: every inner node is pruned in each of its three
/// subtree directions; candidates within `radius` of the pruning point are
/// scored lazily; the best strictly-improving insertion is applied and its
/// local branches are re-optimized. Deterministic iteration order keeps all
/// de-centralized ranks in lockstep.
pub fn spr_round(
    eval: &mut dyn Evaluator,
    radius: usize,
    start_lnl: f64,
    epsilon: f64,
) -> SprStats {
    let _span = exa_obs::region(exa_obs::RegionKind::SprRound);
    let n_taxa = eval.n_taxa();
    let n_nodes = 2 * n_taxa - 2;
    let mut stats = SprStats {
        prunes: 0,
        insertions_tried: 0,
        accepted: 0,
        lnl: start_lnl,
    };

    for x in n_taxa..n_nodes {
        // Deterministic neighbor directions (sorted by node id).
        let mut subs: Vec<NodeId> = eval.tree().neighbors(x).iter().map(|&(n, _)| n).collect();
        subs.sort_unstable();
        for sub in subs {
            // The neighbor set changes as moves are applied; skip stale
            // directions.
            if eval.tree().edge_between(x, sub).is_none() {
                continue;
            }
            stats.prunes += 1;
            // Snapshot for exact rollback if the thorough re-evaluation of
            // the best lazy candidate does not actually improve.
            let saved = eval.tree().clone();
            let info = eval.tree_mut().prune(x, sub);
            let candidates: Vec<EdgeId> = eval
                .tree()
                .edges_within_radius(info.merged_edge, radius)
                .into_iter()
                .filter(|&e| {
                    let ed = eval.tree().edge(e);
                    ed.a != x && ed.b != x && e != info.free_edge
                })
                .collect();

            // Lazy pass: rank candidate insertions without optimizing any
            // branch lengths.
            let mut best: Option<(f64, EdgeId)> = None;
            for target in candidates {
                let g = eval.tree_mut().graft(&info, target);
                // Score at the fresh attachment edge (partial traversal).
                let lnl = eval.evaluate(g.target_edge);
                stats.insertions_tried += 1;
                if best.is_none_or(|(b, _)| lnl > b) {
                    best = Some((lnl, target));
                }
                let tree = eval.tree_mut();
                tree.ungraft(&g, &info);
            }

            // Thorough pass: apply the lazily-best insertion, Newton-optimize
            // the three branches around it, and keep the move only if it
            // strictly improves on the current tree.
            match best {
                Some((_, target)) => {
                    let g = eval.tree_mut().graft(&info, target);
                    let mut local_edges = vec![g.target_edge, g.new_edge];
                    if let Some(e) = eval.tree().edge_between(x, info.sub) {
                        local_edges.push(e);
                    }
                    for e in local_edges {
                        optimize_branch(eval, e);
                    }
                    let new_lnl = eval.evaluate(g.target_edge);
                    if new_lnl > stats.lnl + epsilon {
                        stats.lnl = new_lnl;
                        stats.accepted += 1;
                    } else {
                        *eval.tree_mut() = saved;
                        eval.tree_mut().invalidate_all();
                    }
                }
                None => {
                    eval.tree_mut().restore_prune(&info);
                }
            }
        }
    }
    // Leave the evaluator with a consistent likelihood for the caller.
    stats.lnl = eval.evaluate(0);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::smooth_all;
    use crate::evaluator::{BranchMode, SequentialEvaluator};
    use exa_bio::partition::PartitionScheme;
    use exa_bio::patterns::CompressedAlignment;
    use exa_phylo::engine::{Engine, PartitionSlice};
    use exa_phylo::model::rates::RateModelKind;
    use exa_phylo::model::GtrModel;

    use exa_phylo::tree::bipartitions::rf_distance;
    use exa_phylo::tree::Tree;
    use exa_simgen::{random_tree_with_lengths, simulate, SimModel, SimRates};

    fn simulated_eval_from(seed: u64, start: Option<Tree>) -> (SequentialEvaluator, Tree) {
        let true_tree = random_tree_with_lengths(10, 1, 0.05, 0.3, seed);
        let scheme = PartitionScheme::unpartitioned(600);
        let model = SimModel {
            gtr: GtrModel::jukes_cantor(),
            rates: SimRates::Uniform,
        };
        let aln = simulate(&true_tree, &scheme, &[model], seed);
        let comp = CompressedAlignment::build(&aln, &scheme);
        let slices = vec![PartitionSlice::from_compressed(0, &comp.partitions[0])];
        let engine = Engine::new(10, slices, RateModelKind::Gamma, 1.0);
        let start = start.unwrap_or_else(|| Tree::random(10, 1, seed + 1000));
        (
            SequentialEvaluator::new(start, engine, 1, BranchMode::Joint),
            true_tree,
        )
    }

    fn simulated_eval(seed: u64) -> (SequentialEvaluator, Tree) {
        simulated_eval_from(seed, None)
    }

    #[test]
    fn spr_round_improves_likelihood() {
        let (mut e, _) = simulated_eval(3);
        smooth_all(&mut e, 1);
        let before = e.evaluate(0);
        let stats = spr_round(&mut e, 3, before, 0.01);
        assert!(stats.prunes > 0);
        assert!(stats.insertions_tried > stats.prunes);
        assert!(stats.lnl >= before, "{before} -> {}", stats.lnl);
        e.tree().check_invariants().unwrap();
    }

    #[test]
    fn spr_moves_toward_true_topology() {
        let (mut e, true_tree) = simulated_eval(7);
        smooth_all(&mut e, 2);
        let rf_before = rf_distance(e.tree(), &true_tree);
        let mut lnl = e.evaluate(0);
        for _ in 0..4 {
            let stats = spr_round(&mut e, 4, lnl, 0.01);
            smooth_all(&mut e, 1);
            lnl = e.evaluate(0);
            if stats.accepted == 0 {
                break;
            }
        }
        let rf_after = rf_distance(e.tree(), &true_tree);
        assert!(
            rf_after < rf_before,
            "search should approach the generating topology: {rf_before} -> {rf_after}"
        );
    }

    #[test]
    fn round_never_regresses_from_optimum() {
        // Start AT the generating tree with optimized branches: the round
        // must not make the likelihood worse (improving-only acceptance).
        let true_tree = simulated_eval(11).1;
        let (mut e, _) = simulated_eval_from(11, Some(true_tree));
        smooth_all(&mut e, 3);
        let before = e.evaluate(0);
        let stats = spr_round(&mut e, 3, before, 0.01);
        assert!(
            stats.lnl >= before - 1e-6,
            "round must not regress: {before} -> {}",
            stats.lnl
        );
        e.tree().check_invariants().unwrap();
    }

    #[test]
    fn tree_invariants_hold_after_many_rounds() {
        let (mut e, _) = simulated_eval(19);
        let mut lnl = e.evaluate(0);
        for _ in 0..3 {
            let s = spr_round(&mut e, 5, lnl, 0.0);
            lnl = s.lnl;
            e.tree().check_invariants().unwrap();
        }
    }
}
