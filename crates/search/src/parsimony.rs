//! Parsimony starting trees.
//!
//! RAxML-family searches start from randomized stepwise-addition maximum
//! parsimony trees rather than uniformly random topologies — they are much
//! closer to the ML optimum and cut the number of expensive likelihood SPR
//! rounds (the iteration counts of §IV-D presuppose such starting trees).
//!
//! This module implements the Fitch (1971) parsimony score over the 4-bit
//! nucleotide state sets and the classic randomized stepwise-addition
//! construction: taxa are inserted in random order, each at the edge that
//! minimizes the parsimony score increase.

use exa_phylo::tree::{EdgeId, NodeId, Tree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-taxon state rows: `tips[taxon][pattern]` 4-bit codes, plus weights —
/// exactly the compressed-partition layout.
pub struct ParsimonyData {
    pub tips: Vec<Vec<u8>>,
    pub weights: Vec<u32>,
}

impl ParsimonyData {
    /// Concatenate all partitions of a compressed alignment.
    pub fn from_compressed(aln: &exa_bio::patterns::CompressedAlignment) -> ParsimonyData {
        let n_taxa = aln.n_taxa();
        let mut tips = vec![Vec::new(); n_taxa];
        let mut weights = Vec::new();
        for part in &aln.partitions {
            for (t, row) in part.tips.iter().enumerate() {
                tips[t].extend_from_slice(row);
            }
            weights.extend_from_slice(&part.weights);
        }
        ParsimonyData { tips, weights }
    }

    fn n_patterns(&self) -> usize {
        self.weights.len()
    }
}

/// Fitch parsimony score of the (possibly still partial) tree component
/// attached to inner node `n_taxa`. For complete trees this is the full
/// parsimony score.
pub fn parsimony_score(tree: &Tree, data: &ParsimonyData) -> u64 {
    let root = tree.n_taxa();
    let children: Vec<NodeId> = tree.neighbors(root).iter().map(|&(n, _)| n).collect();
    debug_assert_eq!(children.len(), 3);
    let n = data.n_patterns();
    let (s0, c0) = fitch_sets(tree, data, children[0], root);
    let (s1, c1) = fitch_sets(tree, data, children[1], root);
    let (s2, c2) = fitch_sets(tree, data, children[2], root);
    let mut score = c0 + c1 + c2;
    // Fitch over the trifurcating root: fold pairwise.
    for i in 0..n {
        let first = s0[i] & s1[i];
        let (merged, add1) = if first != 0 {
            (first, 0)
        } else {
            (s0[i] | s1[i], 1)
        };
        let add2 = if merged & s2[i] != 0 { 0 } else { 1 };
        score += (add1 + add2) * data.weights[i] as u64;
    }
    score
}

/// Fitch state sets of the subtree at `v` seen from `parent`, plus the
/// accumulated mutation count inside the subtree.
fn fitch_sets(tree: &Tree, data: &ParsimonyData, v: NodeId, parent: NodeId) -> (Vec<u8>, u64) {
    if tree.is_tip(v) {
        return (data.tips[v].clone(), 0);
    }
    let children: Vec<NodeId> = tree
        .neighbors(v)
        .iter()
        .map(|&(n, _)| n)
        .filter(|&n| n != parent)
        .collect();
    debug_assert_eq!(children.len(), 2);
    let (left, lcount) = fitch_sets(tree, data, children[0], v);
    let (right, rcount) = fitch_sets(tree, data, children[1], v);
    let mut out = vec![0u8; data.n_patterns()];
    let mut count = lcount + rcount;
    for i in 0..data.n_patterns() {
        let inter = left[i] & right[i];
        if inter != 0 {
            out[i] = inter;
        } else {
            out[i] = left[i] | right[i];
            count += data.weights[i] as u64;
        }
    }
    (out, count)
}

/// Build a randomized stepwise-addition parsimony tree: insert taxa in a
/// seed-determined random order, each at the edge minimizing the Fitch
/// score. `blen_count` sets the branch-length arity of the result.
pub fn parsimony_tree(data: &ParsimonyData, blen_count: usize, seed: u64) -> Tree {
    let n_taxa = data.tips.len();
    assert!(n_taxa >= 3, "need at least 3 taxa");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n_taxa).collect();
    order.shuffle(&mut rng);

    // Remap: build the tree over *insertion-order* labels is messy; instead
    // start from the first three taxa of the shuffled order and insert the
    // rest by real taxon id.
    let mut tree = Tree::triplet(n_taxa, blen_count, [order[0], order[1], order[2]]);
    for &taxon in &order[3..] {
        let mut best: Option<(u64, EdgeId)> = None;
        for e in 0..tree.n_edges() {
            let mut trial = tree.clone();
            trial.attach_tip(taxon, e);
            let s = parsimony_score(&trial, data);
            if best.is_none_or(|(b, _)| s < b) {
                best = Some((s, e));
            }
        }
        let (_, edge) = best.expect("tree always has edges");
        tree.attach_tip(taxon, edge);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_bio::alignment::Alignment;
    use exa_bio::partition::PartitionScheme;
    use exa_bio::patterns::CompressedAlignment;
    use exa_phylo::model::GtrModel;
    use exa_phylo::tree::bipartitions::rf_distance;
    use exa_simgen::{random_tree_with_lengths, simulate, SimModel, SimRates};

    fn data_from(aln: &Alignment) -> ParsimonyData {
        let scheme = PartitionScheme::unpartitioned(aln.n_sites());
        ParsimonyData::from_compressed(&CompressedAlignment::build(aln, &scheme))
    }

    #[test]
    fn identical_sequences_have_zero_score() {
        let aln = Alignment::from_ascii(&[
            ("a", "ACGTACGT"),
            ("b", "ACGTACGT"),
            ("c", "ACGTACGT"),
            ("d", "ACGTACGT"),
        ])
        .unwrap();
        let data = data_from(&aln);
        let tree = Tree::random(4, 1, 1);
        assert_eq!(parsimony_score(&tree, &data), 0);
    }

    #[test]
    fn single_mutation_scores_one() {
        let aln = Alignment::from_ascii(&[("a", "A"), ("b", "A"), ("c", "A"), ("d", "C")]).unwrap();
        let data = data_from(&aln);
        let tree = Tree::random(4, 1, 1);
        assert_eq!(parsimony_score(&tree, &data), 1);
    }

    #[test]
    fn weights_multiply_scores() {
        // Two identical variable columns compress to one pattern, weight 2.
        let aln =
            Alignment::from_ascii(&[("a", "AA"), ("b", "AA"), ("c", "AA"), ("d", "CC")]).unwrap();
        let data = data_from(&aln);
        assert_eq!(data.n_patterns(), 1);
        let tree = Tree::random(4, 1, 1);
        assert_eq!(parsimony_score(&tree, &data), 2);
    }

    #[test]
    fn score_depends_on_topology() {
        // Pattern AABB: zero extra mutations on ((a,b),(c,d)) beyond 1, two
        // on ((a,c),(b,d)).
        let aln = Alignment::from_ascii(&[
            ("a", "AAAAA"),
            ("b", "AAAAA"),
            ("c", "CCCCC"),
            ("d", "CCCCC"),
        ])
        .unwrap();
        let data = data_from(&aln);
        let names: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let good = Tree::from_newick("((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1);", &names, 1).unwrap();
        let bad = Tree::from_newick("((a:0.1,c:0.1):0.1,(b:0.1,d:0.1):0.1);", &names, 1).unwrap();
        assert_eq!(parsimony_score(&good, &data), 5);
        assert_eq!(parsimony_score(&bad, &data), 10);
    }

    #[test]
    fn stepwise_addition_recovers_clear_signal() {
        // Simulate on a known tree; the parsimony tree should be close to
        // (usually equal to) the generating topology.
        let true_tree = random_tree_with_lengths(10, 1, 0.03, 0.15, 5);
        let scheme = PartitionScheme::unpartitioned(800);
        let model = SimModel {
            gtr: GtrModel::jukes_cantor(),
            rates: SimRates::Uniform,
        };
        let aln = simulate(&true_tree, &scheme, &[model], 5);
        let data = data_from(&aln);
        let pars = parsimony_tree(&data, 1, 3);
        pars.check_invariants().unwrap();
        let rf = rf_distance(&pars, &true_tree);
        assert!(
            rf <= 4,
            "parsimony tree should be near the truth: RF = {rf}"
        );

        // And it should score no worse than a random topology.
        let random = Tree::random(10, 1, 99);
        assert!(parsimony_score(&pars, &data) <= parsimony_score(&random, &data));
    }

    #[test]
    fn parsimony_tree_is_deterministic_in_seed() {
        let aln = Alignment::from_ascii(&[
            ("a", "ACGTACGTAC"),
            ("b", "ACGAACGTAC"),
            ("c", "TCGAACGGAC"),
            ("d", "TCGATCGGAA"),
            ("e", "TCGATCGGTA"),
        ])
        .unwrap();
        let data = data_from(&aln);
        let t1 = parsimony_tree(&data, 1, 7);
        let t2 = parsimony_tree(&data, 1, 7);
        assert_eq!(rf_distance(&t1, &t2), 0);
    }
}
