//! `exa-search` — the RAxML-style maximum-likelihood tree search.
//!
//! §III-B of the paper stresses that ExaML and RAxML-Light implement
//! **exactly the same search algorithm** and differ only in how the
//! likelihood is computed in parallel. This crate enforces that property by
//! construction: the search ([`driver::run_search`]) is written against the
//! [`evaluator::Evaluator`] trait, and the sequential engine, the fork-join
//! master, and each de-centralized rank plug in as back-ends.
//!
//! Components:
//!
//! * [`evaluator`] — the trait and the sequential reference back-end,
//! * [`branch`] — Newton–Raphson branch-length optimization and smoothing
//!   passes (joint or per-partition `-M` mode),
//! * [`model`] — batched model-parameter optimization: α and GTR rates via
//!   lockstep Brent (one parallel region evaluates proposals for *all*
//!   partitions, the load-balance fix from ref. 23), and PSR per-site rates,
//! * [`spr`] — lazy SPR rounds with rearrangement radius,
//! * [`driver`] — the hill-climbing loop with iteration hooks for
//!   checkpointing and fault recovery.

pub mod branch;
pub mod driver;
pub mod evaluator;
pub mod model;
pub mod parsimony;
pub mod spr;

pub use driver::{
    run_search, run_search_from, BoundaryInfo, KillPanic, KillSpec, NoHooks, PreemptPanic,
    PreemptSignal, ResumePoint, SearchHooks, SearchResult,
};
pub use evaluator::{
    kernel_fingerprint, per_edge_full_gradient, BranchMode, CommFailurePanic, Evaluator,
    FullGradient, GlobalState, SearchSnapshot, SequentialEvaluator,
};

use serde::{Deserialize, Serialize};

/// How the initial topology is obtained (every rank must derive the
/// identical tree, so all variants are deterministic given the config).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StartingTree {
    /// Random stepwise attachment (seeded).
    Random,
    /// Randomized stepwise-addition maximum-parsimony tree (seeded) — the
    /// RAxML-family default, much closer to the ML optimum.
    Parsimony,
    /// A user-supplied Newick string (taxon labels must match the
    /// alignment).
    Newick(String),
}

/// Build the starting tree for an alignment under the chosen policy.
pub fn build_starting_tree(
    aln: &exa_bio::patterns::CompressedAlignment,
    policy: &StartingTree,
    blen_count: usize,
    seed: u64,
) -> exa_phylo::tree::Tree {
    match policy {
        StartingTree::Random => exa_phylo::tree::Tree::random(aln.n_taxa(), blen_count, seed),
        StartingTree::Parsimony => {
            let data = parsimony::ParsimonyData::from_compressed(aln);
            parsimony::parsimony_tree(&data, blen_count, seed)
        }
        StartingTree::Newick(text) => {
            exa_phylo::tree::Tree::from_newick(text, &aln.taxa, blen_count)
                .expect("invalid starting tree")
        }
    }
}

/// Search configuration (mirrors the relevant RAxML-Light/ExaML options).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchConfig {
    /// SPR rearrangement radius (RAxML default regime: 5–10).
    pub spr_radius: usize,
    /// Convergence threshold on the log-likelihood between iterations.
    pub epsilon: f64,
    /// Hard cap on search iterations.
    pub max_iterations: usize,
    /// Branch-length smoothing passes per iteration.
    pub smoothing_passes: usize,
    /// Whether to optimize model parameters (α / GTR / PSR rates).
    pub optimize_model: bool,
    /// Relative tolerance for model-parameter optimization.
    pub model_tol: f64,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            spr_radius: 5,
            epsilon: 0.1,
            max_iterations: 10,
            smoothing_passes: 2,
            optimize_model: true,
            model_tol: 1e-3,
        }
    }
}

impl SearchConfig {
    /// A cheap configuration for tests: small radius, loose tolerances.
    pub fn fast() -> SearchConfig {
        SearchConfig {
            spr_radius: 3,
            epsilon: 0.5,
            max_iterations: 3,
            smoothing_passes: 1,
            optimize_model: true,
            model_tol: 1e-2,
        }
    }
}
