//! Newton–Raphson branch-length optimization.
//!
//! Each iteration evaluates `(dlnL/dt, d²lnL/dt²)` at the candidate length
//! from the prepared sumtable and takes a clamped Newton step; when the
//! curvature has the wrong sign the step falls back to a doubling/halving
//! move in the uphill direction (RAxML's safeguard). Under per-partition
//! mode (`-M`) every partition's length on the edge is iterated in lockstep
//! with a converged mask — each iteration is **one** parallel region
//! carrying `2p` doubles, which is exactly the message growth the paper
//! measures in Table I / Fig. 4(b).
//!
//! # Gradient-driven smoothing
//!
//! A full smoothing pass ([`smooth_all`]) no longer walks edges one at a
//! time: each Newton round obtains the all-edge derivative vector via
//! [`Evaluator::full_gradient`] — one fat collective under `--gradient on`,
//! the classic per-edge loop under `off`, **bitwise-identical numbers
//! either way** — and steps every still-moving edge simultaneously
//! (Jacobi-style), then recomputes the gradient at the updated lengths for
//! the next round. A round near convergence (the common case: every pass
//! after the first, and every pass on an already-smoothed region) freezes
//! all edges at once and ends the pass. That turns the `O(n · rounds)`
//! collectives per pass into `O(rounds)` — the ≥10x collective-count drop
//! the `examl-bench gradient --guard` harness pins. [`optimize_branch`]
//! keeps the classic per-edge Gauss–Seidel loop for single-edge call sites
//! (SPR candidate scoring).

use crate::evaluator::{BranchMode, Evaluator};
use exa_phylo::tree::{EdgeId, BL_MAX, BL_MIN};

/// Tolerance on branch-length convergence (RAxML's `zmin`-style epsilon).
const BL_TOL: f64 = 1e-7;
/// Maximum Newton iterations per edge.
const MAX_NEWTON: usize = 32;

/// One clamped Newton step (RAxML's safeguarded update): a proper Newton
/// move under negative curvature, otherwise doubling/halving uphill. The
/// clamp means a length already pinned at `BL_MIN`/`BL_MAX` that the
/// fallback pushes further out of range reprojects onto the bound and
/// registers as converged in one step — pinned by a regression test below.
fn newton_step(old: f64, d1: f64, d2: f64) -> f64 {
    if d2 < 0.0 {
        (old - d1 / d2).clamp(BL_MIN, BL_MAX)
    } else if d1 > 0.0 {
        (old * 2.0).clamp(BL_MIN, BL_MAX)
    } else {
        (old / 2.0).clamp(BL_MIN, BL_MAX)
    }
}

/// The per-slot convergence test shared by every Newton loop here.
fn step_converged(old: f64, new: f64) -> bool {
    (new - old).abs() < BL_TOL * (1.0 + old.abs())
}

/// Optimize the branch length(s) of `edge` in place. Returns the number of
/// Newton iterations spent (= derivative parallel regions triggered).
pub fn optimize_branch(eval: &mut dyn Evaluator, edge: EdgeId) -> usize {
    optimize_branch_seeded(eval, edge, None)
}

/// [`optimize_branch`] with an optional pre-computed first iteration: when
/// `seed` carries the `(d1, d2)` pair of this edge at its current lengths
/// (from [`Evaluator::full_gradient`]), the first Newton step consumes it
/// instead of triggering a derivative collective, and `prepare_derivatives`
/// is deferred until a second iteration is actually needed. With a seed the
/// return value counts only the *additional* derivative rounds, so an edge
/// that converges on the seeded step reports 0.
pub fn optimize_branch_seeded(
    eval: &mut dyn Evaluator,
    edge: EdgeId,
    seed: Option<(&[f64], &[f64])>,
) -> usize {
    let arity = match eval.branch_mode() {
        BranchMode::Joint => 1,
        BranchMode::PerPartition => eval.n_partitions(),
    };
    let mut t: Vec<f64> = (0..arity)
        .map(|p| eval.tree().edge(edge).length(p))
        .collect();
    let mut converged = vec![false; arity];
    let mut iterations = 0;
    let mut seed = seed.map(|(d1, d2)| (d1.to_vec(), d2.to_vec()));
    let mut prepared = false;

    for _ in 0..MAX_NEWTON {
        if converged.iter().all(|&c| c) {
            break;
        }
        let (d1, d2) = match seed.take() {
            Some(pair) => pair,
            None => {
                if !prepared {
                    eval.prepare_derivatives(edge);
                    prepared = true;
                }
                iterations += 1;
                let _span = exa_obs::region(exa_obs::RegionKind::NrIteration);
                eval.derivatives(&t)
            }
        };
        let mut any_moved = false;
        for p in 0..arity {
            if converged[p] {
                continue;
            }
            let old = t[p];
            let new = newton_step(old, d1[p], d2[p]);
            if step_converged(old, new) {
                converged[p] = true;
            } else {
                any_moved = true;
            }
            t[p] = new;
        }
        if !any_moved {
            break;
        }
    }

    eval.tree_mut().set_lengths(edge, &t);
    iterations
}

/// Edges in depth-first order from the first inner node: consecutive edges
/// are topologically adjacent, keeping the partial traversals between
/// successive branch optimizations short (the 4–5 node descriptors of
/// §III-B).
pub fn dfs_edge_order(eval: &dyn Evaluator) -> Vec<EdgeId> {
    let tree = eval.tree();
    let mut order = Vec::with_capacity(tree.n_edges());
    let mut seen_edge = vec![false; tree.n_edges()];
    let mut seen_node = vec![false; tree.n_nodes()];
    let start = tree.n_taxa();
    let mut stack = vec![start];
    seen_node[start] = true;
    while let Some(v) = stack.pop() {
        for &(w, e) in tree.neighbors(v) {
            if !seen_edge[e] {
                seen_edge[e] = true;
                order.push(e);
            }
            if !seen_node[w] {
                seen_node[w] = true;
                stack.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), tree.n_edges());
    order
}

/// One or more full smoothing passes over all edges, each driven by
/// iterated full-tree gradients (see the module doc). Returns total Newton
/// steps taken across all edges and rounds.
pub fn smooth_all(eval: &mut dyn Evaluator, passes: usize) -> usize {
    let mut total = 0;
    for _ in 0..passes {
        total += smooth_pass(eval);
    }
    total
}

/// One gradient-driven smoothing pass. Every round computes the all-edge
/// `(d1, d2)` vector at the *current* lengths and steps each still-moving
/// edge slot once; slots whose step lands within tolerance freeze for the
/// rest of the pass. The pass ends when a round moves nothing (or at the
/// `MAX_NEWTON` round cap). Both gradient modes run this exact code on the
/// exact same numbers — `--gradient` changes how each round's vector was
/// *reduced* (one fat collective vs one per edge), never its bits.
fn smooth_pass(eval: &mut dyn Evaluator) -> usize {
    let arity = match eval.branch_mode() {
        BranchMode::Joint => 1,
        BranchMode::PerPartition => eval.n_partitions(),
    };
    let n_edges = eval.tree().n_edges();
    let mut converged = vec![false; n_edges * arity];
    // Length each slot had *before its previous step*: a slot whose new
    // length equals it bitwise is caught in the doubling/halving
    // safeguard's 2-cycle (the curvature keeps the wrong sign at both
    // points) and freezes, instead of ping-ponging until the round cap.
    let mut before_prev = vec![f64::NAN; n_edges * arity];
    let mut steps = 0;
    let mut collectives = 0u64;
    let mut sweeps = 0u64;
    for _ in 0..MAX_NEWTON {
        let grad = eval.full_gradient();
        collectives += grad.collectives;
        sweeps += u64::from(grad.swept);
        let mut any_moved = false;
        for e in 0..n_edges {
            let mut t: Vec<f64> = (0..arity).map(|p| eval.tree().edge(e).length(p)).collect();
            let mut changed = false;
            for (p, tp) in t.iter_mut().enumerate() {
                let slot = e * arity + p;
                if converged[slot] {
                    continue;
                }
                let old = *tp;
                let new = newton_step(old, grad.d1[e][p], grad.d2[e][p]);
                let cycled = new.to_bits() == before_prev[slot].to_bits();
                before_prev[slot] = old;
                if step_converged(old, new) || cycled {
                    converged[slot] = true;
                } else {
                    any_moved = true;
                }
                *tp = new;
                changed = true;
                steps += 1;
            }
            if changed {
                eval.tree_mut().set_lengths(e, &t);
            }
        }
        if !any_moved {
            break;
        }
    }
    record_pass_metrics(sweeps, collectives);
    steps
}

/// Fold one smoothing pass into the metrics registry: sweeps taken and
/// collectives spent inside branch-length optimization (the numerator and
/// denominator of the bench guard's ratio).
fn record_pass_metrics(sweeps: u64, collectives: u64) {
    if !exa_obs::metrics::enabled() {
        return;
    }
    let reg = exa_obs::metrics::global();
    if sweeps > 0 {
        reg.counter(
            "exa_gradient_sweeps_total",
            "One-pass full-tree gradient sweeps driving branch smoothing.",
            &[],
        )
        .add(sweeps);
    }
    reg.counter(
        "exa_blo_collectives_total",
        "Collectives spent inside branch-length smoothing passes.",
        &[],
    )
    .add(collectives);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SequentialEvaluator;
    use exa_bio::alignment::Alignment;
    use exa_bio::partition::PartitionScheme;
    use exa_bio::patterns::CompressedAlignment;
    use exa_phylo::engine::{Engine, PartitionSlice};
    use exa_phylo::model::rates::RateModelKind;
    use exa_phylo::tree::Tree;

    fn make_eval(mode: BranchMode) -> SequentialEvaluator {
        let rows = [
            ("t0", "ACGTACGTACGTACGTAAAATTTT"),
            ("t1", "ACGTACGAACGTACGTAAACTTTA"),
            ("t2", "TCGAACGTACGAACGTAAAGTTAA"),
            ("t3", "TCGAACGAACGTACGAAAATTAAT"),
            ("t4", "TCGATCGAACGTACGAATATTCAT"),
            ("t5", "GCGATCGAACGAACGAATATGCAT"),
        ];
        let aln = Alignment::from_ascii(&rows).unwrap();
        let scheme = PartitionScheme::uniform_chunks(2, 12);
        let comp = CompressedAlignment::build(&aln, &scheme);
        let slices: Vec<PartitionSlice> = comp
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| PartitionSlice::from_compressed(i, p))
            .collect();
        let engine = Engine::new(6, slices, RateModelKind::Gamma, 1.0);
        let blens = match mode {
            BranchMode::Joint => 1,
            BranchMode::PerPartition => 2,
        };
        let tree = Tree::random(6, blens, 5);
        SequentialEvaluator::new(tree, engine, 2, mode)
    }

    #[test]
    fn single_branch_optimization_improves_likelihood() {
        let mut e = make_eval(BranchMode::Joint);
        // Deliberately bad starting length.
        e.tree_mut().set_length(0, 0, 3.0);
        let before = e.evaluate(0);
        let iters = optimize_branch(&mut e, 0);
        let after = e.evaluate(0);
        assert!(iters > 0);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn optimized_branch_has_zero_derivative() {
        let mut e = make_eval(BranchMode::Joint);
        optimize_branch(&mut e, 2);
        e.prepare_derivatives(2);
        let t = e.tree().edge(2).length(0);
        let (d1, _) = e.derivatives(&[t]);
        // Either an interior optimum (derivative ~ 0) or pinned at a bound.
        let at_bound = t <= BL_MIN * 1.01 || t >= BL_MAX * 0.99;
        assert!(d1[0].abs() < 1e-3 || at_bound, "d1 = {} at t = {t}", d1[0]);
    }

    #[test]
    fn smoothing_improves_monotonically() {
        let mut e = make_eval(BranchMode::Joint);
        let l0 = e.evaluate(0);
        smooth_all(&mut e, 1);
        let l1 = e.evaluate(0);
        smooth_all(&mut e, 1);
        let l2 = e.evaluate(0);
        assert!(l1 >= l0 - 1e-9, "{l0} -> {l1}");
        assert!(l2 >= l1 - 1e-9, "{l1} -> {l2}");
        // Second pass changes little (near convergence).
        assert!(l2 - l1 <= (l1 - l0).abs() + 1.0);
    }

    #[test]
    fn per_partition_mode_optimizes_independent_lengths() {
        let mut e = make_eval(BranchMode::PerPartition);
        smooth_all(&mut e, 2);
        // At least one edge should end with clearly different lengths for
        // the two partitions (they evolve under different data).
        let tree = e.tree();
        let distinct = tree
            .edge_ids()
            .any(|ed| (tree.edge(ed).lengths[0] - tree.edge(ed).lengths[1]).abs() > 1e-4);
        assert!(distinct, "per-partition lengths should diverge");
    }

    #[test]
    fn per_partition_beats_joint_in_likelihood() {
        // More parameters must fit at least as well (same data, nested
        // models).
        let mut joint = make_eval(BranchMode::Joint);
        smooth_all(&mut joint, 3);
        let lj = joint.evaluate(0);

        let mut per = make_eval(BranchMode::PerPartition);
        smooth_all(&mut per, 3);
        let lp = per.evaluate(0);
        assert!(lp >= lj - 0.5, "per-partition {lp} vs joint {lj}");
    }

    #[test]
    fn dfs_order_visits_every_edge_once() {
        let e = make_eval(BranchMode::Joint);
        let order = dfs_edge_order(&e);
        let mut seen = std::collections::HashSet::new();
        for ed in &order {
            assert!(seen.insert(*ed));
        }
        assert_eq!(order.len(), e.tree().n_edges());
    }

    /// Scripted evaluator: returns fixed `(d1, d2)` pairs and counts how
    /// many derivative rounds the optimizer actually triggers — the
    /// instrument for the clamp-at-bound and seeding contracts.
    struct ScriptedEvaluator {
        tree: Tree,
        d1: f64,
        d2: f64,
        derivative_calls: usize,
        prepare_calls: usize,
    }

    impl ScriptedEvaluator {
        fn new(d1: f64, d2: f64) -> ScriptedEvaluator {
            ScriptedEvaluator {
                tree: Tree::random(4, 1, 11),
                d1,
                d2,
                derivative_calls: 0,
                prepare_calls: 0,
            }
        }
    }

    impl Evaluator for ScriptedEvaluator {
        fn n_taxa(&self) -> usize {
            self.tree.n_taxa()
        }
        fn n_partitions(&self) -> usize {
            1
        }
        fn branch_mode(&self) -> BranchMode {
            BranchMode::Joint
        }
        fn rate_kind(&self) -> RateModelKind {
            RateModelKind::Gamma
        }
        fn tree(&self) -> &Tree {
            &self.tree
        }
        fn tree_mut(&mut self) -> &mut Tree {
            &mut self.tree
        }
        fn evaluate(&mut self, _edge: usize) -> f64 {
            0.0
        }
        fn evaluate_partitioned(&mut self, _edge: usize) -> f64 {
            0.0
        }
        fn last_per_partition(&self) -> &[f64] {
            &[]
        }
        fn prepare_derivatives(&mut self, _edge: usize) {
            self.prepare_calls += 1;
        }
        fn derivatives(&mut self, _lengths: &[f64]) -> (Vec<f64>, Vec<f64>) {
            self.derivative_calls += 1;
            (vec![self.d1], vec![self.d2])
        }
        fn alphas(&self) -> Vec<f64> {
            Vec::new()
        }
        fn set_alphas(&mut self, _alphas: &[f64]) {}
        fn gtr_rate(&self, _rate_index: usize) -> Vec<f64> {
            Vec::new()
        }
        fn set_gtr_rate(&mut self, _rate_index: usize, _values: &[f64]) {}
        fn optimize_site_rates(&mut self) {}
        fn snapshot(&self) -> crate::evaluator::GlobalState {
            unimplemented!("scripted evaluator is never checkpointed")
        }
        fn restore(&mut self, _state: &crate::evaluator::GlobalState) {
            unimplemented!("scripted evaluator is never restored")
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Regression: a length pinned at `BL_MAX` whose curvature safeguard
    /// says "double" must reproject onto the bound and count as converged
    /// after a single derivative round — not burn all `MAX_NEWTON`
    /// iterations ramming the clamp.
    #[test]
    fn doubling_at_upper_bound_converges_in_one_step() {
        let mut e = ScriptedEvaluator::new(5.0, 3.0); // uphill, wrong-sign d2
        e.tree_mut().set_length(0, 0, BL_MAX);
        let iters = optimize_branch(&mut e, 0);
        assert_eq!(iters, 1, "clamped doubling must converge immediately");
        assert_eq!(e.derivative_calls, 1);
        assert_eq!(e.tree().edge(0).length(0), BL_MAX);
    }

    /// Regression: the mirror case — halving at `BL_MIN` (downhill, positive
    /// curvature) reprojects onto the lower bound in one step.
    #[test]
    fn halving_at_lower_bound_converges_in_one_step() {
        let mut e = ScriptedEvaluator::new(-5.0, 3.0);
        e.tree_mut().set_length(0, 0, BL_MIN);
        let iters = optimize_branch(&mut e, 0);
        assert_eq!(iters, 1, "clamped halving must converge immediately");
        assert_eq!(e.derivative_calls, 1);
        assert_eq!(e.tree().edge(0).length(0), BL_MIN);
    }

    /// A seed whose step converges immediately must cost zero derivative
    /// rounds and zero sumtable preparations — that is the entire
    /// collective-count saving of the gradient-seeded pass.
    #[test]
    fn converged_seed_costs_no_derivative_rounds() {
        let mut e = ScriptedEvaluator::new(5.0, 3.0);
        e.tree_mut().set_length(0, 0, BL_MAX);
        let iters = optimize_branch_seeded(&mut e, 0, Some((&[5.0], &[3.0])));
        assert_eq!(iters, 0);
        assert_eq!(e.derivative_calls, 0);
        assert_eq!(e.prepare_calls, 0);
        assert_eq!(e.tree().edge(0).length(0), BL_MAX);
    }

    /// A seed that keeps the edge moving falls back to refinement: the
    /// seeded route must land on exactly the lengths the unseeded route
    /// finds, one derivative round cheaper.
    #[test]
    fn seeded_refinement_matches_unseeded_route() {
        let mut unseeded = make_eval(BranchMode::Joint);
        let mut seeded = make_eval(BranchMode::Joint);
        for e in [0usize, 3, 5] {
            unseeded.tree_mut().set_length(e, 0, 2.0);
            seeded.tree_mut().set_length(e, 0, 2.0);
        }
        for e in [0usize, 3, 5] {
            let iters_u = optimize_branch(&mut unseeded, e);
            // Hand the seeded route the same first-iteration derivatives the
            // unseeded route computes internally.
            seeded.prepare_derivatives(e);
            let t0 = seeded.tree().edge(e).length(0);
            let (d1, d2) = seeded.derivatives(&[t0]);
            let iters_s = optimize_branch_seeded(&mut seeded, e, Some((&d1, &d2)));
            assert_eq!(iters_u, iters_s + 1, "seed replaces exactly one round");
            assert_eq!(
                unseeded.tree().edge(e).length(0).to_bits(),
                seeded.tree().edge(e).length(0).to_bits(),
                "edge {e}: seeded and unseeded routes must agree bitwise"
            );
        }
    }

    /// The gradient-seeded pass must land on the same final lengths
    /// regardless of gradient mode — `full_gradient`'s two routes produce
    /// bitwise-identical seeds, and everything after the seed is shared.
    #[test]
    fn smoothing_is_bitwise_invariant_to_gradient_mode() {
        use exa_phylo::GradientMode;
        let mut off = make_eval(BranchMode::Joint);
        let mut on = make_eval(BranchMode::Joint).with_gradient(GradientMode::On);
        let i_off = smooth_all(&mut off, 2);
        let i_on = smooth_all(&mut on, 2);
        assert_eq!(i_off, i_on, "iteration counts must match");
        let (t_off, t_on) = (off.tree(), on.tree());
        for e in 0..t_off.n_edges() {
            assert_eq!(
                t_off.edge(e).length(0).to_bits(),
                t_on.edge(e).length(0).to_bits(),
                "edge {e} diverged between gradient modes"
            );
        }
        let l_off = off.evaluate(0);
        let l_on = on.evaluate(0);
        assert_eq!(l_off.to_bits(), l_on.to_bits());
    }
}
