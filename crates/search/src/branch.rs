//! Newton–Raphson branch-length optimization.
//!
//! Each iteration evaluates `(dlnL/dt, d²lnL/dt²)` at the candidate length
//! from the prepared sumtable and takes a clamped Newton step; when the
//! curvature has the wrong sign the step falls back to a doubling/halving
//! move in the uphill direction (RAxML's safeguard). Under per-partition
//! mode (`-M`) every partition's length on the edge is iterated in lockstep
//! with a converged mask — each iteration is **one** parallel region
//! carrying `2p` doubles, which is exactly the message growth the paper
//! measures in Table I / Fig. 4(b).

use crate::evaluator::{BranchMode, Evaluator};
use exa_phylo::tree::{EdgeId, BL_MAX, BL_MIN};

/// Tolerance on branch-length convergence (RAxML's `zmin`-style epsilon).
const BL_TOL: f64 = 1e-7;
/// Maximum Newton iterations per edge.
const MAX_NEWTON: usize = 32;

/// Optimize the branch length(s) of `edge` in place. Returns the number of
/// Newton iterations spent (= derivative parallel regions triggered).
pub fn optimize_branch(eval: &mut dyn Evaluator, edge: EdgeId) -> usize {
    eval.prepare_derivatives(edge);
    let arity = match eval.branch_mode() {
        BranchMode::Joint => 1,
        BranchMode::PerPartition => eval.n_partitions(),
    };
    let mut t: Vec<f64> = (0..arity)
        .map(|p| eval.tree().edge(edge).length(p))
        .collect();
    let mut converged = vec![false; arity];
    let mut iterations = 0;

    for _ in 0..MAX_NEWTON {
        if converged.iter().all(|&c| c) {
            break;
        }
        let (d1, d2) = {
            let _span = exa_obs::region(exa_obs::RegionKind::NrIteration);
            eval.derivatives(&t)
        };
        iterations += 1;
        let mut any_moved = false;
        for p in 0..arity {
            if converged[p] {
                continue;
            }
            let old = t[p];
            let new = if d2[p] < 0.0 {
                (old - d1[p] / d2[p]).clamp(BL_MIN, BL_MAX)
            } else if d1[p] > 0.0 {
                (old * 2.0).clamp(BL_MIN, BL_MAX)
            } else {
                (old / 2.0).clamp(BL_MIN, BL_MAX)
            };
            if (new - old).abs() < BL_TOL * (1.0 + old.abs()) {
                converged[p] = true;
            } else {
                any_moved = true;
            }
            t[p] = new;
        }
        if !any_moved {
            break;
        }
    }

    eval.tree_mut().set_lengths(edge, &t);
    iterations
}

/// Edges in depth-first order from the first inner node: consecutive edges
/// are topologically adjacent, keeping the partial traversals between
/// successive branch optimizations short (the 4–5 node descriptors of
/// §III-B).
pub fn dfs_edge_order(eval: &dyn Evaluator) -> Vec<EdgeId> {
    let tree = eval.tree();
    let mut order = Vec::with_capacity(tree.n_edges());
    let mut seen_edge = vec![false; tree.n_edges()];
    let mut seen_node = vec![false; tree.n_nodes()];
    let start = tree.n_taxa();
    let mut stack = vec![start];
    seen_node[start] = true;
    while let Some(v) = stack.pop() {
        for &(w, e) in tree.neighbors(v) {
            if !seen_edge[e] {
                seen_edge[e] = true;
                order.push(e);
            }
            if !seen_node[w] {
                seen_node[w] = true;
                stack.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), tree.n_edges());
    order
}

/// One or more full smoothing passes over all edges. Returns total Newton
/// iterations.
pub fn smooth_all(eval: &mut dyn Evaluator, passes: usize) -> usize {
    let mut total = 0;
    for _ in 0..passes {
        let order = dfs_edge_order(eval);
        for e in order {
            total += optimize_branch(eval, e);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SequentialEvaluator;
    use exa_bio::alignment::Alignment;
    use exa_bio::partition::PartitionScheme;
    use exa_bio::patterns::CompressedAlignment;
    use exa_phylo::engine::{Engine, PartitionSlice};
    use exa_phylo::model::rates::RateModelKind;
    use exa_phylo::tree::Tree;

    fn make_eval(mode: BranchMode) -> SequentialEvaluator {
        let rows = [
            ("t0", "ACGTACGTACGTACGTAAAATTTT"),
            ("t1", "ACGTACGAACGTACGTAAACTTTA"),
            ("t2", "TCGAACGTACGAACGTAAAGTTAA"),
            ("t3", "TCGAACGAACGTACGAAAATTAAT"),
            ("t4", "TCGATCGAACGTACGAATATTCAT"),
            ("t5", "GCGATCGAACGAACGAATATGCAT"),
        ];
        let aln = Alignment::from_ascii(&rows).unwrap();
        let scheme = PartitionScheme::uniform_chunks(2, 12);
        let comp = CompressedAlignment::build(&aln, &scheme);
        let slices: Vec<PartitionSlice> = comp
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| PartitionSlice::from_compressed(i, p))
            .collect();
        let engine = Engine::new(6, slices, RateModelKind::Gamma, 1.0);
        let blens = match mode {
            BranchMode::Joint => 1,
            BranchMode::PerPartition => 2,
        };
        let tree = Tree::random(6, blens, 5);
        SequentialEvaluator::new(tree, engine, 2, mode)
    }

    #[test]
    fn single_branch_optimization_improves_likelihood() {
        let mut e = make_eval(BranchMode::Joint);
        // Deliberately bad starting length.
        e.tree_mut().set_length(0, 0, 3.0);
        let before = e.evaluate(0);
        let iters = optimize_branch(&mut e, 0);
        let after = e.evaluate(0);
        assert!(iters > 0);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn optimized_branch_has_zero_derivative() {
        let mut e = make_eval(BranchMode::Joint);
        optimize_branch(&mut e, 2);
        e.prepare_derivatives(2);
        let t = e.tree().edge(2).length(0);
        let (d1, _) = e.derivatives(&[t]);
        // Either an interior optimum (derivative ~ 0) or pinned at a bound.
        let at_bound = t <= BL_MIN * 1.01 || t >= BL_MAX * 0.99;
        assert!(d1[0].abs() < 1e-3 || at_bound, "d1 = {} at t = {t}", d1[0]);
    }

    #[test]
    fn smoothing_improves_monotonically() {
        let mut e = make_eval(BranchMode::Joint);
        let l0 = e.evaluate(0);
        smooth_all(&mut e, 1);
        let l1 = e.evaluate(0);
        smooth_all(&mut e, 1);
        let l2 = e.evaluate(0);
        assert!(l1 >= l0 - 1e-9, "{l0} -> {l1}");
        assert!(l2 >= l1 - 1e-9, "{l1} -> {l2}");
        // Second pass changes little (near convergence).
        assert!(l2 - l1 <= (l1 - l0).abs() + 1.0);
    }

    #[test]
    fn per_partition_mode_optimizes_independent_lengths() {
        let mut e = make_eval(BranchMode::PerPartition);
        smooth_all(&mut e, 2);
        // At least one edge should end with clearly different lengths for
        // the two partitions (they evolve under different data).
        let tree = e.tree();
        let distinct = tree
            .edge_ids()
            .any(|ed| (tree.edge(ed).lengths[0] - tree.edge(ed).lengths[1]).abs() > 1e-4);
        assert!(distinct, "per-partition lengths should diverge");
    }

    #[test]
    fn per_partition_beats_joint_in_likelihood() {
        // More parameters must fit at least as well (same data, nested
        // models).
        let mut joint = make_eval(BranchMode::Joint);
        smooth_all(&mut joint, 3);
        let lj = joint.evaluate(0);

        let mut per = make_eval(BranchMode::PerPartition);
        smooth_all(&mut per, 3);
        let lp = per.evaluate(0);
        assert!(lp >= lj - 0.5, "per-partition {lp} vs joint {lj}");
    }

    #[test]
    fn dfs_order_visits_every_edge_once() {
        let e = make_eval(BranchMode::Joint);
        let order = dfs_edge_order(&e);
        let mut seen = std::collections::HashSet::new();
        for ed in &order {
            assert!(seen.insert(*ed));
        }
        assert_eq!(order.len(), e.tree().n_edges());
    }
}
