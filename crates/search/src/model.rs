//! Model-parameter optimization with **simultaneous all-partition
//! proposals**.
//!
//! Reference 23 (§II of the paper) showed that partitioned parallel
//! efficiency requires proposing and evaluating parameter changes for *all*
//! partitions in one parallel region. The lockstep
//! [`exa_phylo::numerics::brent::BatchedBrent`] driver provides exactly
//! that: each round produces one candidate per partition, a single
//! `set_*` + `evaluate` pair scores all of them, and every partition's
//! Brent instance advances independently.
//!
//! Optimization is done in log-parameter space (α and GTR rates are scale
//! parameters, and their likelihood surfaces are much closer to quadratic
//! in `ln θ`).

use crate::evaluator::Evaluator;
use exa_phylo::model::gtr::{NUM_FREE_RATES, RATE_MAX, RATE_MIN};
use exa_phylo::model::rates::{RateModelKind, ALPHA_MAX, ALPHA_MIN};
use exa_phylo::numerics::brent::BatchedBrent;

/// Outcome of one model-optimization round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelOptStats {
    /// Parallel regions spent (evaluate calls).
    pub evaluations: usize,
    /// Final total log-likelihood.
    pub lnl: f64,
}

/// Optimize the Γ shape of every partition simultaneously. No-op under PSR.
pub fn optimize_alphas(eval: &mut dyn Evaluator, tol: f64) -> ModelOptStats {
    if eval.rate_kind() != RateModelKind::Gamma {
        let lnl = eval.evaluate(0);
        return ModelOptStats {
            evaluations: 1,
            lnl,
        };
    }
    let p = eval.n_partitions();
    let brackets = vec![(ALPHA_MIN.ln(), ALPHA_MAX.ln()); p];
    let mut brent = BatchedBrent::new(&brackets, tol);
    let mut evaluations = 0;
    while let Some(log_props) = brent.proposals() {
        let props: Vec<f64> = log_props.iter().map(|x| x.exp()).collect();
        eval.set_alphas(&props);
        let _ = eval.evaluate_partitioned(0);
        evaluations += 1;
        // Brent minimizes, so feed negative per-partition log-likelihoods.
        let values: Vec<f64> = eval.last_per_partition().iter().map(|l| -l).collect();
        brent.update(&values);
    }
    let best: Vec<f64> = (0..p).map(|i| brent.best_x(i).exp()).collect();
    eval.set_alphas(&best);
    let lnl = eval.evaluate(0);
    ModelOptStats {
        evaluations: evaluations + 1,
        lnl,
    }
}

/// Optimize the five free GTR exchangeabilities by coordinate descent, each
/// coordinate batched across partitions.
pub fn optimize_gtr(eval: &mut dyn Evaluator, tol: f64) -> ModelOptStats {
    let p = eval.n_partitions();
    let mut evaluations = 0;
    for rate_index in 0..NUM_FREE_RATES {
        let brackets = vec![(RATE_MIN.ln(), RATE_MAX.ln()); p];
        let mut brent = BatchedBrent::new(&brackets, tol);
        while let Some(log_props) = brent.proposals() {
            let props: Vec<f64> = log_props.iter().map(|x| x.exp()).collect();
            eval.set_gtr_rate(rate_index, &props);
            let _ = eval.evaluate_partitioned(0);
            evaluations += 1;
            let values: Vec<f64> = eval.last_per_partition().iter().map(|l| -l).collect();
            brent.update(&values);
        }
        let best: Vec<f64> = (0..p).map(|i| brent.best_x(i).exp()).collect();
        eval.set_gtr_rate(rate_index, &best);
    }
    let lnl = eval.evaluate(0);
    ModelOptStats {
        evaluations: evaluations + 1,
        lnl,
    }
}

/// Full model-optimization round: α (Γ) or per-site rates (PSR), then GTR
/// exchangeabilities.
pub fn optimize_model(eval: &mut dyn Evaluator, tol: f64) -> ModelOptStats {
    let _span = exa_obs::region(exa_obs::RegionKind::ModelOptRound);
    let mut evaluations = 0;
    match eval.rate_kind() {
        RateModelKind::Gamma => {
            let s = optimize_alphas(eval, tol);
            evaluations += s.evaluations;
        }
        RateModelKind::Psr => {
            eval.optimize_site_rates();
            evaluations += 1;
        }
    }
    let s = optimize_gtr(eval, tol);
    evaluations += s.evaluations;
    ModelOptStats {
        evaluations,
        lnl: s.lnl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{BranchMode, SequentialEvaluator};
    use exa_bio::partition::PartitionScheme;
    use exa_bio::patterns::CompressedAlignment;
    use exa_phylo::engine::{Engine, PartitionSlice};
    use exa_phylo::model::GtrModel;
    use exa_phylo::tree::Tree;
    use exa_simgen::{random_tree_with_lengths, simulate, SimModel, SimRates};

    /// Simulated data with known generating parameters so optimization has
    /// a meaningful target.
    fn make_eval(alpha: f64, kind: RateModelKind) -> SequentialEvaluator {
        let tree = random_tree_with_lengths(8, 1, 0.05, 0.4, 11);
        let scheme = PartitionScheme::uniform_chunks(2, 400);
        let models = vec![
            SimModel {
                gtr: GtrModel::jukes_cantor(),
                rates: SimRates::Gamma { alpha },
            },
            SimModel {
                gtr: GtrModel::new([1.0, 4.0, 1.0, 1.0, 4.0, 1.0], [0.25; 4]),
                rates: SimRates::Gamma { alpha },
            },
        ];
        let aln = simulate(&tree, &scheme, &models, 21);
        let comp = CompressedAlignment::build(&aln, &scheme);
        let slices: Vec<PartitionSlice> = comp
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| PartitionSlice::from_compressed(i, p))
            .collect();
        let engine = Engine::new(8, slices, kind, 1.0);
        let t = Tree::random(8, 1, 11);
        SequentialEvaluator::new(t, engine, 2, BranchMode::Joint)
    }

    #[test]
    fn alpha_optimization_improves_likelihood() {
        let mut e = make_eval(0.3, RateModelKind::Gamma);
        let before = e.evaluate(0);
        let stats = optimize_alphas(&mut e, 1e-3);
        assert!(stats.lnl >= before, "{before} -> {}", stats.lnl);
        assert!(stats.evaluations > 2);
    }

    #[test]
    fn alpha_estimates_reflect_heterogeneity() {
        // Data generated with strong rate variation (alpha = 0.3) should
        // yield a small fitted alpha; weak variation a larger one.
        let mut strong = make_eval(0.3, RateModelKind::Gamma);
        optimize_alphas(&mut strong, 1e-4);
        let a_strong = strong.alphas()[0];

        let mut weak = make_eval(5.0, RateModelKind::Gamma);
        optimize_alphas(&mut weak, 1e-4);
        let a_weak = weak.alphas()[0];
        assert!(
            a_strong < a_weak,
            "alpha(strong het) = {a_strong} should be < alpha(weak het) = {a_weak}"
        );
    }

    #[test]
    fn gtr_optimization_improves_and_recovers_transition_bias() {
        let mut e = make_eval(1.0, RateModelKind::Gamma);
        let before = e.evaluate(0);
        let stats = optimize_gtr(&mut e, 1e-3);
        assert!(stats.lnl >= before - 1e-9);
        // Partition 1 was generated with AG = CT = 4 (transition-heavy);
        // fitted AG should exceed a transversion rate like AT.
        let ag = e.gtr_rate(1)[1];
        let at = e.gtr_rate(2)[1];
        assert!(ag > at, "AG = {ag} should exceed AT = {at}");
    }

    #[test]
    fn full_model_round_improves_likelihood() {
        let mut e = make_eval(0.7, RateModelKind::Gamma);
        let before = e.evaluate(0);
        let stats = optimize_model(&mut e, 1e-3);
        assert!(stats.lnl > before, "{before} -> {}", stats.lnl);
    }

    #[test]
    fn psr_model_round_runs_site_rates_not_alphas() {
        let mut e = make_eval(0.5, RateModelKind::Psr);
        let before = e.evaluate(0);
        let stats = optimize_model(&mut e, 1e-3);
        assert!(stats.lnl >= before - 1e-6);
        assert!(e.alphas().is_empty());
    }

    #[test]
    fn per_partition_alphas_fit_independently() {
        // Two partitions with very different generating alphas.
        let tree = random_tree_with_lengths(8, 1, 0.05, 0.4, 31);
        let scheme = PartitionScheme::uniform_chunks(2, 500);
        let models = vec![
            SimModel {
                gtr: GtrModel::jukes_cantor(),
                rates: SimRates::Gamma { alpha: 0.15 },
            },
            SimModel {
                gtr: GtrModel::jukes_cantor(),
                rates: SimRates::Gamma { alpha: 8.0 },
            },
        ];
        let aln = simulate(&tree, &scheme, &models, 5);
        let comp = CompressedAlignment::build(&aln, &scheme);
        let slices: Vec<PartitionSlice> = comp
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| PartitionSlice::from_compressed(i, p))
            .collect();
        let engine = Engine::new(8, slices, RateModelKind::Gamma, 1.0);
        let t = Tree::random(8, 1, 31);
        let mut e = SequentialEvaluator::new(t, engine, 2, BranchMode::Joint);
        crate::branch::smooth_all(&mut e, 2);
        optimize_alphas(&mut e, 1e-4);
        let a = e.alphas();
        assert!(a[0] < a[1], "independent per-partition alphas: {a:?}");
    }
}
