//! Engine edge cases: zero-partition engines, scaling counter behaviour,
//! PSR quantization through the engine API, and memory accounting.

use exa_bio::alignment::Alignment;
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::Tree;

fn slices_from(aln: &Alignment, parts: usize) -> Vec<PartitionSlice> {
    let scheme = if parts == 1 {
        PartitionScheme::unpartitioned(aln.n_sites())
    } else {
        PartitionScheme::uniform_chunks(parts, aln.n_sites() / parts)
    };
    let comp = CompressedAlignment::build(aln, &scheme);
    comp.partitions
        .iter()
        .enumerate()
        .map(|(i, p)| PartitionSlice::from_compressed(i, p))
        .collect()
}

fn small_alignment(n_taxa: usize, sites: usize, seed: u64) -> Alignment {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows: Vec<(String, String)> = (0..n_taxa)
        .map(|i| {
            let seq: String = (0..sites)
                .map(|_| ['A', 'C', 'G', 'T'][(next() % 4) as usize])
                .collect();
            (format!("t{i}"), seq)
        })
        .collect();
    let refs: Vec<(&str, &str)> = rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    Alignment::from_ascii(&refs).unwrap()
}

#[test]
fn empty_engine_keeps_configured_kind() {
    // A rank holding zero partitions must still report the configured rate
    // model so its collective call sequence matches loaded ranks.
    let e = Engine::new(5, Vec::new(), RateModelKind::Psr, 1.0);
    assert_eq!(e.rate_kind(), RateModelKind::Psr);
    assert_eq!(e.n_partitions(), 0);
    assert_eq!(e.total_patterns(), 0);
    assert_eq!(e.clv_bytes(), 0);

    let g = Engine::new(5, Vec::new(), RateModelKind::Gamma, 1.0);
    assert_eq!(g.rate_kind(), RateModelKind::Gamma);
}

#[test]
fn empty_engine_executes_descriptors_harmlessly() {
    let mut e = Engine::new(6, Vec::new(), RateModelKind::Gamma, 1.0);
    let mut tree = Tree::random(6, 1, 1);
    let d = tree.full_traversal_descriptor(0);
    e.execute(&d);
    let lnls = e.evaluate(&d);
    assert!(lnls.is_empty());
    e.prepare_derivatives(&d);
    let (d1, d2) = e.derivatives(&[0.1]);
    assert!(d1.is_empty() && d2.is_empty());
    let (num, den) = e.optimize_site_rates(&d);
    assert_eq!((num, den), (0.0, 0.0));
}

#[test]
fn scaling_counters_activate_on_deep_trees() {
    // 60 taxa with long branches forces CLV rescaling; the per-pattern
    // likelihood must remain finite and negative.
    let aln = small_alignment(60, 20, 7);
    let mut e = Engine::new(60, slices_from(&aln, 1), RateModelKind::Gamma, 0.4);
    let mut tree = Tree::random(60, 1, 7);
    for edge in 0..tree.n_edges() {
        tree.set_length(edge, 0, 3.0);
    }
    let d = tree.full_traversal_descriptor(0);
    e.execute(&d);
    let lnl = e.evaluate(&d)[0];
    assert!(lnl.is_finite() && lnl < 0.0, "{lnl}");
    // Without scaling, 58+ inner nodes × branch length 3 would underflow
    // f64 (each pattern multiplies ~e^-3-ish factors 60 times per state
    // path); finite output implies the counters fired.
}

#[test]
fn psr_rates_quantize_to_bounded_categories() {
    let aln = small_alignment(8, 300, 9);
    let mut e = Engine::new(8, slices_from(&aln, 1), RateModelKind::Psr, 1.0);
    let mut tree = Tree::random(8, 1, 9);
    let d = tree.full_traversal_descriptor(0);
    e.execute(&d);
    let (num, den) = e.optimize_site_rates(&d);
    assert!(num > 0.0 && den > 0.0);
    e.finalize_site_rates(den / num);
    let (_, rates) = e.model_state(0);
    let distinct = rates.distinct_rates();
    assert!(distinct.len() <= exa_phylo::model::rates::PSR_MAX_CATEGORIES);
    assert!(
        distinct.len() > 1,
        "300 random sites should span multiple rate categories"
    );
}

#[test]
fn clv_bytes_track_rate_model() {
    let aln = small_alignment(10, 200, 3);
    let g = Engine::new(10, slices_from(&aln, 1), RateModelKind::Gamma, 1.0);
    let p = Engine::new(10, slices_from(&aln, 1), RateModelKind::Psr, 1.0);
    // Γ CLVs are 4x PSR CLVs; totals include scalers/sumtable so the ratio
    // lands a bit below 4.
    let ratio = g.clv_bytes() as f64 / p.clv_bytes() as f64;
    assert!(ratio > 3.0 && ratio <= 4.0, "ratio {ratio}");
}

#[test]
fn work_counters_scale_with_category_count() {
    let aln = small_alignment(8, 100, 5);
    let mut tree_g = Tree::random(8, 1, 5);
    let mut tree_p = tree_g.clone();

    let mut g = Engine::new(8, slices_from(&aln, 1), RateModelKind::Gamma, 1.0);
    let dg = tree_g.full_traversal_descriptor(0);
    g.execute(&dg);

    let mut p = Engine::new(8, slices_from(&aln, 1), RateModelKind::Psr, 1.0);
    let dp = tree_p.full_traversal_descriptor(0);
    p.execute(&dp);

    assert_eq!(
        g.work().clv_updates,
        4 * p.work().clv_updates,
        "Γ does 4 rate categories of CLV work per pattern"
    );
}

#[test]
fn model_state_roundtrip_preserves_likelihood() {
    let aln = small_alignment(7, 120, 11);
    let mut e = Engine::new(7, slices_from(&aln, 2), RateModelKind::Gamma, 0.8);
    let mut tree = Tree::random(7, 1, 11);
    e.set_gtr_rate(0, 1, 3.5);
    e.set_alpha(1, 0.33);
    let d = tree.full_traversal_descriptor(0);
    e.execute(&d);
    let before = e.evaluate(&d);

    // Export, perturb, re-import, verify.
    let saved: Vec<_> = (0..2).map(|i| e.model_state(i)).collect();
    e.set_alpha(1, 2.0);
    e.set_gtr_rate(0, 0, 9.0);
    for (i, (m, r)) in saved.into_iter().enumerate() {
        e.set_model_state(i, m, r);
    }
    let d2 = tree.full_traversal_descriptor(0);
    e.execute(&d2);
    let after = e.evaluate(&d2);
    for (b, a) in before.iter().zip(&after) {
        assert!((b - a).abs() < 1e-12, "{b} vs {a}");
    }
}
