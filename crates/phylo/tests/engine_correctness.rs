//! Engine correctness against an independent brute-force likelihood
//! implementation, plus the structural invariants parallel execution relies
//! on (root-invariance, partial-traversal equivalence, additivity of
//! pattern-split likelihoods).

// The brute-force reference implementation uses explicit site/state indices.
#![allow(clippy::needless_range_loop)]

use exa_bio::alignment::Alignment;
use exa_bio::dna::NUM_STATES;
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, PartitionSlice};
use exa_phylo::model::pmatrix::prob_matrix;
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::model::GtrModel;
use exa_phylo::tree::{NodeId, Tree};

/// Deterministic pseudo-random alignment over `n` taxa and `len` sites.
fn random_alignment(n: usize, len: usize, seed: u64) -> Alignment {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
    let rows: Vec<String> = (0..n)
        .map(|_| {
            (0..len)
                .map(|_| match next() % 20 {
                    0..=4 => 'A',
                    5..=9 => 'C',
                    10..=13 => 'G',
                    14..=17 => 'T',
                    18 => 'N',
                    _ => 'R',
                })
                .collect()
        })
        .collect();
    let named: Vec<(&str, &str)> = names
        .iter()
        .map(String::as_str)
        .zip(rows.iter().map(String::as_str))
        .collect();
    Alignment::from_ascii(&named).unwrap()
}

fn build_engine(aln: &Alignment, kind: RateModelKind) -> Engine {
    let comp = CompressedAlignment::build(aln, &PartitionScheme::unpartitioned(aln.n_sites()));
    let slices = vec![PartitionSlice::from_compressed(0, &comp.partitions[0])];
    Engine::new(aln.n_taxa(), slices, kind, 1.0)
}

/// Brute-force per-partition log-likelihood: direct Felsenstein recursion
/// over the tree, integrating categories, no scaling (small trees only).
fn brute_force_lnl(
    tree: &Tree,
    tips: &[Vec<u8>],
    weights: &[f64],
    model: &GtrModel,
    cat_rates_of_pattern: &dyn Fn(usize) -> Vec<(f64, f64)>, // (rate, weight)
) -> f64 {
    let root_edge = 0;
    let (a, b) = (tree.edge(root_edge).a, tree.edge(root_edge).b);
    let t_root = tree.edge(root_edge).length(0);
    let n_patterns = weights.len();
    let mut lnl = 0.0;
    for i in 0..n_patterns {
        let mut site = 0.0;
        for (rate, w) in cat_rates_of_pattern(i) {
            let xa = conditional(tree, tips, model, a, b, i, rate);
            let xb = conditional(tree, tips, model, b, a, i, rate);
            let p = prob_matrix(model, t_root, rate);
            let freqs = model.freqs();
            let mut acc = 0.0;
            for s in 0..NUM_STATES {
                let mut pb = 0.0;
                for t in 0..NUM_STATES {
                    pb += p[s][t] * xb[t];
                }
                acc += freqs[s] * xa[s] * pb;
            }
            site += w * acc;
        }
        lnl += weights[i] * site.ln();
    }
    lnl
}

fn conditional(
    tree: &Tree,
    tips: &[Vec<u8>],
    model: &GtrModel,
    v: NodeId,
    parent: NodeId,
    pattern: usize,
    rate: f64,
) -> [f64; NUM_STATES] {
    if tree.is_tip(v) {
        let code = tips[v][pattern] as usize & 0xf;
        let mut out = [0.0; NUM_STATES];
        for (s, o) in out.iter_mut().enumerate() {
            if code & (1 << s) != 0 {
                *o = 1.0;
            }
        }
        return out;
    }
    let mut out = [1.0; NUM_STATES];
    for &(c, e) in tree.neighbors(v) {
        if c == parent {
            continue;
        }
        let child = conditional(tree, tips, model, c, v, pattern, rate);
        let p = prob_matrix(model, tree.edge(e).length(0), rate);
        for (s, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for t in 0..NUM_STATES {
                acc += p[s][t] * child[t];
            }
            *o *= acc;
        }
    }
    out
}

fn tips_and_weights(aln: &Alignment) -> (Vec<Vec<u8>>, Vec<f64>) {
    let comp = CompressedAlignment::build(aln, &PartitionScheme::unpartitioned(aln.n_sites()));
    let p = &comp.partitions[0];
    (
        p.tips.clone(),
        p.weights.iter().map(|&w| w as f64).collect(),
    )
}

#[test]
fn gamma_likelihood_matches_brute_force() {
    for seed in [1u64, 2, 3] {
        let aln = random_alignment(6, 40, seed);
        let mut tree = Tree::random(6, 1, seed);
        let mut engine = build_engine(&aln, RateModelKind::Gamma);
        engine.set_alpha(0, 0.7);

        let d = tree.full_traversal_descriptor(0);
        engine.execute(&d);
        let lnl = engine.evaluate(&d)[0];

        let (tips, weights) = tips_and_weights(&aln);
        let model = GtrModel::new([1.0; 6], engine.freqs(0));
        let gamma_rates = exa_phylo::numerics::gamma::discrete_gamma_rates(0.7, 4);
        let cats: Vec<(f64, f64)> = gamma_rates.iter().map(|&r| (r, 0.25)).collect();
        let reference = brute_force_lnl(&tree, &tips, &weights, &model, &|_| cats.clone());
        assert!(
            (lnl - reference).abs() < 1e-8,
            "seed {seed}: engine {lnl} vs brute force {reference}"
        );
    }
}

#[test]
fn psr_likelihood_matches_brute_force() {
    let aln = random_alignment(5, 30, 11);
    let mut tree = Tree::random(5, 1, 4);
    let mut engine = build_engine(&aln, RateModelKind::Psr);

    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let lnl = engine.evaluate(&d)[0];

    let (tips, weights) = tips_and_weights(&aln);
    let model = GtrModel::new([1.0; 6], engine.freqs(0));
    // Fresh PSR: all rates 1.
    let reference = brute_force_lnl(&tree, &tips, &weights, &model, &|_| vec![(1.0, 1.0)]);
    assert!(
        (lnl - reference).abs() < 1e-8,
        "engine {lnl} vs brute force {reference}"
    );
}

#[test]
fn gtr_rates_affect_likelihood_consistently() {
    let aln = random_alignment(5, 30, 21);
    let mut tree = Tree::random(5, 1, 2);
    let mut engine = build_engine(&aln, RateModelKind::Gamma);
    engine.set_alpha(0, 1.2);
    engine.set_gtr_rate(0, 1, 4.0); // transition-heavy AG rate
    tree.invalidate_all();

    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let lnl = engine.evaluate(&d)[0];

    let (tips, weights) = tips_and_weights(&aln);
    let mut rates = [1.0f64; 6];
    rates[1] = 4.0;
    let model = GtrModel::new(rates, engine.freqs(0));
    let gamma_rates = exa_phylo::numerics::gamma::discrete_gamma_rates(1.2, 4);
    let cats: Vec<(f64, f64)> = gamma_rates.iter().map(|&r| (r, 0.25)).collect();
    let reference = brute_force_lnl(&tree, &tips, &weights, &model, &|_| cats.clone());
    assert!(
        (lnl - reference).abs() < 1e-8,
        "engine {lnl} vs brute force {reference}"
    );
}

#[test]
fn likelihood_invariant_under_root_choice() {
    // Felsenstein's pulley principle: the likelihood must not depend on
    // which edge hosts the virtual root.
    let aln = random_alignment(8, 60, 5);
    let mut tree = Tree::random(8, 1, 9);
    let mut engine = build_engine(&aln, RateModelKind::Gamma);
    engine.set_alpha(0, 0.5);

    let d0 = tree.full_traversal_descriptor(0);
    engine.execute(&d0);
    let reference = engine.evaluate(&d0)[0];
    for e in 1..tree.n_edges() {
        let d = tree.traversal_descriptor(e);
        engine.execute(&d);
        let lnl = engine.evaluate(&d)[0];
        assert!(
            (lnl - reference).abs() < 1e-7,
            "edge {e}: {lnl} vs {reference} (diff {})",
            (lnl - reference).abs()
        );
    }
}

#[test]
fn partial_traversal_equals_full_traversal() {
    let aln = random_alignment(10, 50, 6);
    let mut tree = Tree::random(10, 1, 6);
    let mut engine = build_engine(&aln, RateModelKind::Gamma);

    // Full traversal once, then change one distant branch and do a partial.
    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let _ = engine.evaluate(&d);

    let far = tree.n_edges() - 1;
    tree.set_length(far, 0, 0.37);
    let partial = tree.traversal_descriptor(0);
    assert!(
        partial.len() < tree.n_inner(),
        "expected a partial traversal"
    );
    engine.execute(&partial);
    let lnl_partial = engine.evaluate(&partial)[0];

    // Reference: full recomputation from scratch.
    let mut tree2 = tree.clone();
    let mut engine2 = build_engine(&aln, RateModelKind::Gamma);
    let d2 = tree2.full_traversal_descriptor(0);
    engine2.execute(&d2);
    let lnl_full = engine2.evaluate(&d2)[0];

    assert!(
        (lnl_partial - lnl_full).abs() < 1e-9,
        "partial {lnl_partial} vs full {lnl_full}"
    );
}

#[test]
fn derivatives_match_finite_differences() {
    let aln = random_alignment(7, 40, 8);
    let mut tree = Tree::random(7, 1, 8);
    let mut engine = build_engine(&aln, RateModelKind::Gamma);
    engine.set_alpha(0, 0.9);

    let root = 2;
    let mut d = tree.full_traversal_descriptor(root);
    engine.execute(&d);
    engine.prepare_derivatives(&d);

    let t0 = 0.23;
    let (d1, d2) = engine.derivatives(&[t0]);

    // Finite differences via evaluate with hand-edited root lengths (CLVs
    // are independent of the root-edge length).
    let h = 1e-6;
    let lnl_at =
        |t: f64, eng: &mut Engine, desc: &mut exa_phylo::tree::traversal::TraversalDescriptor| {
            desc.root_lengths = vec![t];
            eng.evaluate(desc)[0]
        };
    let lp = lnl_at(t0 + h, &mut engine, &mut d);
    let lm = lnl_at(t0 - h, &mut engine, &mut d);
    let l0 = lnl_at(t0, &mut engine, &mut d);
    let fd1 = (lp - lm) / (2.0 * h);
    let fd2 = (lp - 2.0 * l0 + lm) / (h * h);

    assert!(
        (d1[0] - fd1).abs() < 1e-4 * (1.0 + fd1.abs()),
        "d1 {} vs fd {fd1}",
        d1[0]
    );
    assert!(
        (d2[0] - fd2).abs() < 1e-2 * (1.0 + fd2.abs()),
        "d2 {} vs fd {fd2}",
        d2[0]
    );
}

#[test]
fn derivative_zero_at_optimum() {
    // Newton-Raphson target: at the ML branch length the first derivative
    // crosses zero and the second is negative.
    let aln = random_alignment(6, 80, 13);
    let mut tree = Tree::random(6, 1, 13);
    let mut engine = build_engine(&aln, RateModelKind::Gamma);

    let root = 1;
    let d = tree.full_traversal_descriptor(root);
    engine.execute(&d);
    engine.prepare_derivatives(&d);

    // Newton iteration to convergence.
    let mut t = 0.1;
    for _ in 0..50 {
        let (d1, d2) = engine.derivatives(&[t]);
        if d2[0] >= 0.0 {
            break;
        }
        let step = d1[0] / d2[0];
        t = (t - step).clamp(1e-8, 10.0);
        if step.abs() < 1e-12 {
            break;
        }
    }
    let (d1, d2) = engine.derivatives(&[t]);
    assert!(d1[0].abs() < 1e-6, "derivative at optimum: {}", d1[0]);
    assert!(
        d2[0] < 0.0,
        "second derivative at optimum must be negative: {}",
        d2[0]
    );
}

#[test]
fn pattern_split_likelihoods_are_additive() {
    // The parallel-correctness invariant: distributing patterns across
    // engines and summing their local log-likelihoods must reproduce the
    // single-engine value exactly (up to summation order).
    let aln = random_alignment(9, 100, 17);
    let comp = CompressedAlignment::build(&aln, &PartitionScheme::unpartitioned(aln.n_sites()));
    let part = &comp.partitions[0];
    let n = part.n_patterns();

    let mut tree = Tree::random(9, 1, 17);
    let d = tree.full_traversal_descriptor(0);

    // Full engine. Use fixed uniform frequencies so every split engine has
    // the identical model (empirical frequencies would differ per subset).
    let full_slice = PartitionSlice::from_compressed(0, part);
    let mut full = Engine::new(9, vec![full_slice], RateModelKind::Gamma, 1.0);
    let model = GtrModel::new([1.0; 6], [0.25; 4]);
    let (_, rh) = full.model_state(0);
    full.set_model_state(0, model.clone(), rh);
    full.execute(&d);
    let lnl_full = full.evaluate(&d)[0];

    // Split engines: cyclic distribution over 3 "ranks".
    let mut total = 0.0;
    for rank in 0..3 {
        let indices: Vec<usize> = (0..n).filter(|i| i % 3 == rank).collect();
        if indices.is_empty() {
            continue;
        }
        let sub = part.select_patterns(&indices);
        let slice = PartitionSlice::from_compressed(0, &sub);
        let mut eng = Engine::new(9, vec![slice], RateModelKind::Gamma, 1.0);
        let (_, rh) = eng.model_state(0);
        eng.set_model_state(0, model.clone(), rh);
        eng.execute(&d);
        total += eng.evaluate(&d)[0];
    }
    assert!(
        (total - lnl_full).abs() < 1e-8,
        "split sum {total} vs full {lnl_full}"
    );
}

#[test]
fn scaling_keeps_likelihood_finite_on_larger_trees() {
    // 40 taxa with long branches would underflow without CLV rescaling.
    let aln = random_alignment(40, 30, 23);
    let mut tree = Tree::random(40, 1, 23);
    for e in 0..tree.n_edges() {
        tree.set_length(e, 0, 2.0);
    }
    let mut engine = build_engine(&aln, RateModelKind::Gamma);
    engine.set_alpha(0, 0.3);
    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let lnl = engine.evaluate(&d)[0];
    assert!(lnl.is_finite(), "likelihood must stay finite: {lnl}");
    assert!(lnl < 0.0);

    // And stays root-invariant in the scaled regime.
    let d2 = tree.traversal_descriptor(tree.n_edges() / 2);
    engine.execute(&d2);
    let lnl2 = engine.evaluate(&d2)[0];
    assert!((lnl - lnl2).abs() < 1e-6, "{lnl} vs {lnl2}");
}

#[test]
fn work_counters_accumulate() {
    let aln = random_alignment(6, 30, 3);
    let mut tree = Tree::random(6, 1, 3);
    let mut engine = build_engine(&aln, RateModelKind::Gamma);
    assert_eq!(engine.work().total(), 0);
    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let after_exec = engine.work();
    assert!(after_exec.clv_updates > 0);
    let _ = engine.evaluate(&d);
    assert!(engine.work().eval_patterns > 0);
    engine.reset_work();
    assert_eq!(engine.work().total(), 0);
}

#[test]
fn psr_site_rate_optimization_improves_likelihood() {
    let aln = random_alignment(6, 60, 31);
    let mut tree = Tree::random(6, 1, 31);
    let mut engine = build_engine(&aln, RateModelKind::Psr);

    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let before = engine.evaluate(&d)[0];

    let (num, den) = engine.optimize_site_rates(&d);
    assert!(den > 0.0);
    engine.finalize_site_rates(den / num);
    tree.invalidate_all();
    let d2 = tree.full_traversal_descriptor(0);
    engine.execute(&d2);
    let after = engine.evaluate(&d2)[0];
    // Normalization can trade some of the gain away, but the optimized
    // rates should not be materially worse and usually improve.
    assert!(
        after >= before - 1e-6,
        "site-rate optimization regressed: {before} -> {after}"
    );
}

#[test]
fn per_partition_branch_lengths_select_correct_slot() {
    // Two partitions, per-partition lengths: partition 1's likelihood must
    // react only to its own branch-length slot.
    let aln = random_alignment(5, 40, 41);
    let scheme = PartitionScheme::uniform_chunks(2, 20);
    let comp = CompressedAlignment::build(&aln, &scheme);
    let slices: Vec<PartitionSlice> = comp
        .partitions
        .iter()
        .enumerate()
        .map(|(i, p)| PartitionSlice::from_compressed(i, p))
        .collect();
    let mut engine = Engine::new(5, slices, RateModelKind::Gamma, 1.0);
    let mut tree = Tree::random(5, 2, 41);

    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let base = engine.evaluate(&d);

    // Change edge 3's length for partition 0 only.
    let e = 3;
    let mut lengths = tree.edge(e).lengths.clone();
    lengths[0] = 0.456;
    tree.set_lengths(e, &lengths);
    let d2 = tree.traversal_descriptor(0);
    engine.execute(&d2);
    let changed = engine.evaluate(&d2);

    assert!(
        (changed[1] - base[1]).abs() < 1e-10,
        "partition 1 must be unaffected"
    );
    assert!(
        (changed[0] - base[0]).abs() > 1e-10,
        "partition 0 must react"
    );
}
