//! Property-based invariants of the likelihood substrate: tree surgery
//! safety, model-math identities, and the pulley principle over random
//! inputs.

// Matrix identities below are written with explicit row/column indices.
#![allow(clippy::needless_range_loop)]

use exa_phylo::model::pmatrix::prob_matrix;
use exa_phylo::model::GtrModel;
use exa_phylo::numerics::gamma::discrete_gamma_rates;
use exa_phylo::tree::Tree;
use proptest::prelude::*;

prop_compose! {
    fn arb_gtr()(rates in prop::collection::vec(0.05f64..20.0, 6),
                 freqs in prop::collection::vec(0.05f64..1.0, 4)) -> GtrModel {
        GtrModel::new(
            [rates[0], rates[1], rates[2], rates[3], rates[4], rates[5]],
            [freqs[0], freqs[1], freqs[2], freqs[3]],
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gtr_q_matrix_is_proper_generator(model in arb_gtr()) {
        let q = model.q_matrix();
        for i in 0..4 {
            let rowsum: f64 = q[i].iter().sum();
            prop_assert!(rowsum.abs() < 1e-10, "row {} sums to {}", i, rowsum);
            prop_assert!(q[i][i] < 0.0);
            for j in 0..4 {
                if i != j {
                    prop_assert!(q[i][j] >= 0.0);
                }
            }
        }
        // Detailed balance (time reversibility).
        for i in 0..4 {
            for j in 0..4 {
                let lhs = model.freqs()[i] * q[i][j];
                let rhs = model.freqs()[j] * q[j][i];
                prop_assert!((lhs - rhs).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn p_matrices_are_stochastic(model in arb_gtr(), t in 0.0f64..5.0, r in 0.01f64..10.0) {
        let p = prob_matrix(&model, t, r);
        for row in &p {
            let s: f64 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8, "row sum {}", s);
            for &x in row {
                prop_assert!((-1e-12..=1.0 + 1e-9).contains(&x));
            }
        }
    }

    #[test]
    fn chapman_kolmogorov_holds(model in arb_gtr(), s in 0.001f64..1.0, t in 0.001f64..1.0) {
        let ps = prob_matrix(&model, s, 1.0);
        let pt = prob_matrix(&model, t, 1.0);
        let pst = prob_matrix(&model, s + t, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                let mut prod = 0.0;
                for k in 0..4 {
                    prod += ps[i][k] * pt[k][j];
                }
                prop_assert!((prod - pst[i][j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn discrete_gamma_always_mean_one(alpha in 0.021f64..99.0, k in 1usize..12) {
        let rates = discrete_gamma_rates(alpha, k);
        let mean: f64 = rates.iter().sum::<f64>() / k as f64;
        prop_assert!((mean - 1.0).abs() < 1e-8, "alpha={} k={} mean={}", alpha, k, mean);
        for &r in &rates {
            prop_assert!(r > 0.0 && r.is_finite());
        }
    }

    #[test]
    fn random_trees_satisfy_invariants(n in 3usize..40, blens in 1usize..4, seed in any::<u64>()) {
        let t = Tree::random(n, blens, seed);
        prop_assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn newick_roundtrip_preserves_topology(n in 4usize..20, seed in any::<u64>()) {
        use exa_phylo::tree::bipartitions::rf_distance;
        let t = Tree::random(n, 1, seed);
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let text = t.to_newick(&names);
        let back = Tree::from_newick(&text, &names, 1).unwrap();
        prop_assert_eq!(rf_distance(&t, &back), 0);
    }

    #[test]
    fn spr_sequences_preserve_invariants(
        n in 5usize..16,
        seed in any::<u64>(),
        moves in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..6),
    ) {
        let mut t = Tree::random(n, 1, seed);
        for (xr, sr, tr) in moves {
            let x = n + (xr as usize % t.n_inner());
            let subs: Vec<usize> = t.neighbors(x).iter().map(|&(v, _)| v).collect();
            let sub = subs[sr as usize % subs.len()];
            let info = t.prune(x, sub);
            let cands: Vec<usize> = t
                .edges_within_radius(info.merged_edge, 4)
                .into_iter()
                .filter(|&e| {
                    let ed = t.edge(e);
                    ed.a != x && ed.b != x && e != info.free_edge
                })
                .collect();
            if cands.is_empty() {
                t.restore_prune(&info);
            } else {
                let target = cands[tr as usize % cands.len()];
                t.graft(&info, target);
            }
            prop_assert!(t.check_invariants().is_ok());
        }
    }

    #[test]
    fn prune_restore_is_always_identity(n in 5usize..16, seed in any::<u64>(), which in any::<u32>()) {
        let t0 = Tree::random(n, 1, seed);
        let mut t = t0.clone();
        let x = n + (which as usize % t.n_inner());
        let sub = t.neighbors(x)[which as usize % 3].0;
        let info = t.prune(x, sub);
        t.restore_prune(&info);
        prop_assert!(t.check_invariants().is_ok());
        use exa_phylo::tree::bipartitions::rf_distance;
        prop_assert_eq!(rf_distance(&t0, &t), 0);
        // Branch lengths restored exactly.
        for e in 0..t.n_edges() {
            prop_assert_eq!(&t.edge(e).lengths, &t0.edge(e).lengths);
        }
    }
}
