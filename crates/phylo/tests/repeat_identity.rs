//! Subtree-repeat compression must be bitwise invisible.
//!
//! Compression changes *which* CLV columns `newview` computes (class
//! representatives only; duplicates are filled by copying), but never the
//! arithmetic or its association order — so every observable output
//! (`evaluate`, `derivatives`, PSR rate sums) must be bit-identical with
//! compression on and off, on both kernel backends, across SPR topology
//! changes and in the deep-tree regime where CLV rescaling fires. The
//! engines here are built through [`Engine::with_config`] with the setting
//! forced explicitly, so the tests hold regardless of `EXAML_SITE_REPEATS`
//! in the environment.

use exa_bio::alignment::Alignment;
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, KernelKind, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::Tree;
use exa_phylo::SiteRepeats;
use proptest::prelude::*;

/// Deterministic repeat-rich alignment: every site is one of `n_distinct`
/// base columns with a single point mutation. Exact whole-column duplicates
/// would be folded away by pattern compression before the engine ever sees
/// them; near-duplicates survive it as distinct patterns whose *sub*-columns
/// repeat under most inner nodes — the workload the subtree-repeat layer
/// exists for. Base columns include ambiguity codes to exercise the full
/// 16-way tip-class space.
fn repeat_rich_alignment(n_taxa: usize, len: usize, n_distinct: usize, seed: u64) -> Alignment {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let cols: Vec<Vec<char>> = (0..n_distinct)
        .map(|_| {
            (0..n_taxa)
                .map(|_| match next() % 14 {
                    0..=2 => 'A',
                    3..=5 => 'C',
                    6..=8 => 'G',
                    9..=11 => 'T',
                    12 => 'N',
                    _ => 'R',
                })
                .collect()
        })
        .collect();
    let pick: Vec<usize> = (0..len).map(|_| (next() as usize) % n_distinct).collect();
    let mut grid: Vec<Vec<char>> = (0..n_taxa)
        .map(|t| pick.iter().map(|&p| cols[p][t]).collect())
        .collect();
    #[allow(clippy::needless_range_loop)] // `s` indexes a row picked per site
    for s in 0..len {
        let t = (next() as usize) % n_taxa;
        grid[t][s] = match next() % 4 {
            0 => 'A',
            1 => 'C',
            2 => 'G',
            _ => 'T',
        };
    }
    let names: Vec<String> = (0..n_taxa).map(|i| format!("t{i}")).collect();
    let rows: Vec<String> = grid.into_iter().map(|r| r.into_iter().collect()).collect();
    let named: Vec<(&str, &str)> = names
        .iter()
        .map(String::as_str)
        .zip(rows.iter().map(String::as_str))
        .collect();
    Alignment::from_ascii(&named).unwrap()
}

/// Build a compressed/uncompressed engine pair over the same single slice.
fn engine_pair(aln: &Alignment, kind: RateModelKind, kernel: KernelKind) -> (Engine, Engine) {
    let comp = CompressedAlignment::build(aln, &PartitionScheme::unpartitioned(aln.n_sites()));
    let slice = PartitionSlice::from_compressed(0, &comp.partitions[0]);
    let on = Engine::with_config(
        aln.n_taxa(),
        vec![slice.clone()],
        kind,
        0.7,
        kernel,
        SiteRepeats::On,
    );
    let off = Engine::with_config(
        aln.n_taxa(),
        vec![slice],
        kind,
        0.7,
        kernel,
        SiteRepeats::Off,
    );
    (on, off)
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str, seed: u64) {
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y} (seed {seed})");
    }
}

/// Drive the pair through the full kernel surface — newview over a full
/// traversal, evaluate, derivatives at rescaling-prone branch lengths, a
/// sequence of SPR moves (graft where possible, restore otherwise), and a
/// PSR rate round when applicable — asserting bitwise agreement at every
/// observable output, then check the work accounting balances.
#[allow(clippy::too_many_arguments)]
fn assert_on_off_identical(
    kernel: KernelKind,
    kind: RateModelKind,
    n_taxa: usize,
    len: usize,
    n_distinct: usize,
    seed: u64,
    scale: f64,
    moves: &[(u32, u32, u32)],
) {
    let aln = repeat_rich_alignment(n_taxa, len, n_distinct, seed);
    let (mut on, mut off) = engine_pair(&aln, kind, kernel);
    let mut tree = Tree::random(n_taxa, 1, seed);
    for e in 0..tree.n_edges() {
        let l = tree.edge(e).length(0);
        tree.set_length(e, 0, l * scale);
    }

    let d = tree.full_traversal_descriptor(0);
    on.execute(&d);
    off.execute(&d);
    assert_bits_equal(&on.evaluate(&d), &off.evaluate(&d), "evaluate", seed);

    on.prepare_derivatives(&d);
    off.prepare_derivatives(&d);
    for t in [1e-6, 0.05, 0.3, 1.5] {
        let (a1, a2) = on.derivatives(&[t]);
        let (b1, b2) = off.derivatives(&[t]);
        assert_bits_equal(&a1, &b1, "d1", seed);
        assert_bits_equal(&a2, &b2, "d2", seed);
    }

    // SPR moves rebuild repeat classes incrementally (child-stamp cache
    // misses) — every post-surgery likelihood must still match bitwise.
    for &(xr, sr, tr) in moves {
        let x = n_taxa + (xr as usize % tree.n_inner());
        let subs: Vec<usize> = tree.neighbors(x).iter().map(|&(v, _)| v).collect();
        let sub = subs[sr as usize % subs.len()];
        let info = tree.prune(x, sub);
        let cands: Vec<usize> = tree
            .edges_within_radius(info.merged_edge, 4)
            .into_iter()
            .filter(|&e| {
                let ed = tree.edge(e);
                ed.a != x && ed.b != x && e != info.free_edge
            })
            .collect();
        if cands.is_empty() {
            tree.restore_prune(&info);
        } else {
            tree.graft(&info, cands[tr as usize % cands.len()]);
        }
        tree.invalidate_all();
        let d = tree.full_traversal_descriptor(0);
        on.execute(&d);
        off.execute(&d);
        assert_bits_equal(
            &on.evaluate(&d),
            &off.evaluate(&d),
            "post-SPR evaluate",
            seed,
        );
    }

    if kind == RateModelKind::Psr {
        let d = tree.full_traversal_descriptor(0);
        let (na, da) = on.optimize_site_rates(&d);
        let (nb, db) = off.optimize_site_rates(&d);
        assert_eq!(na.to_bits(), nb.to_bits(), "psr numerator (seed {seed})");
        assert_eq!(da.to_bits(), db.to_bits(), "psr denominator (seed {seed})");
        on.finalize_site_rates(da / na);
        off.finalize_site_rates(db / nb);
        tree.invalidate_all();
        let d = tree.full_traversal_descriptor(0);
        on.execute(&d);
        off.execute(&d);
        assert_bits_equal(
            &on.evaluate(&d),
            &off.evaluate(&d),
            "post-PSR evaluate",
            seed,
        );
    }

    // Work accounting: both engines executed identical descriptors, so
    // computed + copied columns on the compressed side must equal the
    // uncompressed side's total, and only the compressed side saves.
    let (won, woff) = (on.work(), off.work());
    assert_eq!(woff.clv_saved, 0, "seed {seed}");
    assert_eq!(
        won.clv_updates + won.clv_saved,
        woff.clv_updates,
        "seed {seed}"
    );
    assert!(
        won.clv_saved > 0,
        "a {n_distinct}-column alignment over {len} sites must compress (seed {seed})"
    );
}

#[test]
fn on_off_identical_in_the_rescaling_regime() {
    // 40 taxa forces CLV rescaling on interior nodes (the same regime the
    // backend-agreement suite uses for its rescaling coverage): scale-count
    // copies must stay consistent with the representative's CLV copy.
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        assert_on_off_identical(
            kernel,
            RateModelKind::Gamma,
            40,
            60,
            6,
            99,
            3.0,
            &[(5, 1, 2)],
        );
    }
}

#[test]
fn on_off_identical_under_psr_rate_rounds() {
    // PSR folds per-site rate categories into the repeat classes (second
    // pairing round) and bumps the class epoch on finalize; both must stay
    // bitwise invisible.
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        assert_on_off_identical(kernel, RateModelKind::Psr, 9, 80, 5, 17, 1.0, &[(2, 0, 1)]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: on random repeat-rich alignments, random
    /// trees, random branch scalings and random SPR sequences, compression
    /// is bitwise invisible on BOTH backends.
    #[test]
    fn compression_is_bitwise_invisible(
        n_taxa in 5usize..10,
        n_distinct in 1usize..8,
        seed in any::<u64>(),
        scale in 0.2f64..4.0,
        moves in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..5),
    ) {
        for kernel in [KernelKind::Scalar, KernelKind::Simd] {
            assert_on_off_identical(
                kernel, RateModelKind::Gamma, n_taxa, 72, n_distinct, seed, scale, &moves,
            );
        }
    }
}
