//! Batching and intra-rank threading must be bitwise invisible.
//!
//! The batched runner changes *who* executes a partition's kernels (which
//! pool thread, under which batch's shared scratch) but never the
//! arithmetic or its association order: results land in indexed
//! per-partition slots and every cross-partition reduction happens
//! serially in local order. So every observable output — evaluate,
//! derivatives, term sinks, PSR rate sums, work totals — must be
//! bit-identical between the default layout (singleton batches, one
//! thread) and any packed/threaded layout, on both kernel backends.

use exa_bio::alignment::Alignment;
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, KernelKind, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::Tree;
use exa_phylo::SiteRepeats;

/// Deterministic multi-partition alignment with uneven partition lengths.
fn alignment(n_taxa: usize, lengths: &[usize], seed: u64) -> (Alignment, PartitionScheme) {
    let len: usize = lengths.iter().sum();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows: Vec<String> = (0..n_taxa)
        .map(|_| {
            (0..len)
                .map(|_| match next() % 5 {
                    0 => 'A',
                    1 => 'C',
                    2 => 'G',
                    3 => 'T',
                    _ => 'N',
                })
                .collect()
        })
        .collect();
    let names: Vec<String> = (0..n_taxa).map(|i| format!("t{i}")).collect();
    let named: Vec<(&str, &str)> = names
        .iter()
        .map(String::as_str)
        .zip(rows.iter().map(String::as_str))
        .collect();
    (
        Alignment::from_ascii(&named).unwrap(),
        PartitionScheme::from_lengths(lengths.iter().copied()),
    )
}

fn build(
    aln: &Alignment,
    scheme: &PartitionScheme,
    kind: RateModelKind,
    kernel: KernelKind,
    threads: usize,
    batches: Option<Vec<std::ops::Range<usize>>>,
) -> Engine {
    let comp = CompressedAlignment::build(aln, scheme);
    let slices: Vec<PartitionSlice> = comp
        .partitions
        .iter()
        .enumerate()
        .map(|(g, p)| PartitionSlice::from_compressed(g, p))
        .collect();
    let mut e = Engine::with_config(aln.n_taxa(), slices, kind, 0.7, kernel, SiteRepeats::On);
    e.set_threads(threads);
    if let Some(b) = batches {
        e.set_batches(b);
    }
    e
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
    }
}

/// Drive a reference engine (serial, singleton batches) and a
/// packed/threaded engine through the full kernel surface and assert
/// bitwise agreement everywhere.
fn assert_layouts_identical(
    kernel: KernelKind,
    kind: RateModelKind,
    threads: usize,
    batches: Vec<std::ops::Range<usize>>,
) {
    let n_taxa = 8;
    let (aln, scheme) = alignment(n_taxa, &[23, 7, 41, 13, 29, 11, 17], 42);
    let mut reference = build(&aln, &scheme, kind, kernel, 1, None);
    let mut packed = build(&aln, &scheme, kind, kernel, threads, Some(batches));

    let mut tree = Tree::random(n_taxa, 1, 7);
    let d = tree.full_traversal_descriptor(0);
    reference.execute(&d);
    packed.execute(&d);
    assert_bits_equal(&reference.evaluate(&d), &packed.evaluate(&d), "evaluate");

    // Term sinks must observe the same partitions in the same order with
    // the same bits.
    let mut terms_ref: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut terms_packed: Vec<(usize, Vec<f64>)> = Vec::new();
    let a = reference.evaluate_with_terms(&d, &mut |l, t| terms_ref.push((l, t.to_vec())));
    let b = packed.evaluate_with_terms(&d, &mut |l, t| terms_packed.push((l, t.to_vec())));
    assert_bits_equal(&a, &b, "evaluate_with_terms");
    assert_eq!(terms_ref.len(), terms_packed.len());
    for ((la, ta), (lb, tb)) in terms_ref.iter().zip(&terms_packed) {
        assert_eq!(la, lb, "sink order");
        assert_bits_equal(ta, tb, "evaluate terms");
    }

    reference.prepare_derivatives(&d);
    packed.prepare_derivatives(&d);
    for t in [1e-6, 0.05, 0.3, 1.5] {
        let (a1, a2) = reference.derivatives(&[t]);
        let (b1, b2) = packed.derivatives(&[t]);
        assert_bits_equal(&a1, &b1, "d1");
        assert_bits_equal(&a2, &b2, "d2");
    }
    let mut dref: Vec<(usize, Vec<f64>, Vec<f64>)> = Vec::new();
    let mut dpacked: Vec<(usize, Vec<f64>, Vec<f64>)> = Vec::new();
    let (a1, a2) = reference.derivatives_with_terms(&[0.11], &mut |l, t1, t2| {
        dref.push((l, t1.to_vec(), t2.to_vec()))
    });
    let (b1, b2) = packed.derivatives_with_terms(&[0.11], &mut |l, t1, t2| {
        dpacked.push((l, t1.to_vec(), t2.to_vec()))
    });
    assert_bits_equal(&a1, &b1, "d1 terms variant");
    assert_bits_equal(&a2, &b2, "d2 terms variant");
    for ((la, x1, x2), (lb, y1, y2)) in dref.iter().zip(&dpacked) {
        assert_eq!(la, lb, "deriv sink order");
        assert_bits_equal(x1, y1, "d1 terms");
        assert_bits_equal(x2, y2, "d2 terms");
    }

    if kind == RateModelKind::Psr {
        let (na, da) = reference.optimize_site_rates(&d);
        let (nb, db) = packed.optimize_site_rates(&d);
        assert_eq!(na.to_bits(), nb.to_bits(), "psr numerator");
        assert_eq!(da.to_bits(), db.to_bits(), "psr denominator");
        reference.finalize_site_rates(da / na);
        packed.finalize_site_rates(db / nb);
    }

    // A topology change on top (CLV orientation churn).
    tree.invalidate_all();
    let d = tree.full_traversal_descriptor(1 % tree.n_edges());
    reference.execute(&d);
    packed.execute(&d);
    assert_bits_equal(
        &reference.evaluate(&d),
        &packed.evaluate(&d),
        "post-invalidate evaluate",
    );

    // Work accounting: identical pattern-category totals; only the dispatch
    // count may differ (that is the point of packing).
    let (wr, wp) = (reference.work(), packed.work());
    assert_eq!(wr.clv_updates, wp.clv_updates);
    assert_eq!(wr.clv_saved, wp.clv_saved);
    assert_eq!(wr.eval_patterns, wp.eval_patterns);
    assert_eq!(wr.deriv_patterns, wp.deriv_patterns);
    assert_eq!(wr.site_rate_patterns, wp.site_rate_patterns);
    assert!(
        wp.dispatches <= wr.dispatches,
        "packing must not add dispatches"
    );
}

#[test]
#[allow(clippy::single_range_in_vec_init)] // batch lists really are Vec<Range>
fn packed_threaded_layouts_are_bitwise_invisible() {
    let layouts: &[(usize, &[std::ops::Range<usize>])] = &[
        (1, &[0..7]),                                     // one giant batch, serial
        (2, &[0..3, 3..5, 5..7]),                         // uneven packing, 2 threads
        (8, &[0..1, 1..2, 2..3, 3..4, 4..5, 5..6, 6..7]), // singletons, 8 threads
        (8, &[0..4, 4..7]),                               // fewer batches than threads
    ];
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        for (threads, batches) in layouts {
            assert_layouts_identical(kernel, RateModelKind::Gamma, *threads, batches.to_vec());
        }
    }
}

#[test]
fn packed_threaded_layouts_are_bitwise_invisible_under_psr() {
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        assert_layouts_identical(kernel, RateModelKind::Psr, 8, vec![0..2, 2..7]);
    }
}

#[test]
#[allow(clippy::single_range_in_vec_init)] // batch lists really are Vec<Range>
fn set_batches_rejects_non_covers() {
    let (aln, scheme) = alignment(6, &[11, 13, 9], 3);
    let comp = CompressedAlignment::build(&aln, &scheme);
    let slices: Vec<PartitionSlice> = comp
        .partitions
        .iter()
        .enumerate()
        .map(|(g, p)| PartitionSlice::from_compressed(g, p))
        .collect();
    let mk = || {
        Engine::with_config(
            6,
            slices.clone(),
            RateModelKind::Gamma,
            0.7,
            KernelKind::Scalar,
            SiteRepeats::Off,
        )
    };
    for bad in [
        vec![0..1, 2..3], // gap
        vec![0..2],       // short cover
        vec![0..2, 1..3], // overlap
        vec![1..3, 0..1], // permuted
        vec![0..0, 0..3], // empty batch
    ] {
        let mut e = mk();
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e.set_batches(bad.clone())))
                .is_err(),
            "{bad:?} must be rejected"
        );
    }
    let mut e = mk();
    e.set_batches(vec![0..2, 2..3]); // valid cover accepted
    assert_eq!(e.batch_count(), 2);
}
