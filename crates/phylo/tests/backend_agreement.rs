//! Scalar-vs-SIMD backend agreement.
//!
//! The SIMD backend is designed to be *bitwise identical* to the scalar
//! backend (no FMA, scalar association orders — see the backend module
//! docs), which is stronger than the ≤1-ulp-per-site contract these tests
//! assert. The bitwise tests pin the stronger property on every kernel; the
//! proptest phrases the public contract (per-site log-likelihoods within
//! 1 ulp on random trees and models) so a future backend that only meets
//! the weaker guarantee shows up as a deliberate test change, not silence.

use exa_bio::alignment::Alignment;
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, KernelKind, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::Tree;
use proptest::prelude::*;

/// Deterministic pseudo-random alignment over `n` taxa and `len` sites.
fn random_alignment(n: usize, len: usize, seed: u64) -> Alignment {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
    let rows: Vec<String> = (0..n)
        .map(|_| {
            (0..len)
                .map(|_| match next() % 20 {
                    0..=4 => 'A',
                    5..=9 => 'C',
                    10..=13 => 'G',
                    14..=17 => 'T',
                    18 => 'N',
                    _ => 'R',
                })
                .collect()
        })
        .collect();
    let named: Vec<(&str, &str)> = names
        .iter()
        .map(String::as_str)
        .zip(rows.iter().map(String::as_str))
        .collect();
    Alignment::from_ascii(&named).unwrap()
}

fn engine_with(aln: &Alignment, kind: RateModelKind, kernel: KernelKind, alpha: f64) -> Engine {
    let comp = CompressedAlignment::build(aln, &PartitionScheme::unpartitioned(aln.n_sites()));
    let slices = vec![PartitionSlice::from_compressed(0, &comp.partitions[0])];
    Engine::with_kernel(aln.n_taxa(), slices, kind, alpha, kernel)
}

/// Drive both backends through the full kernel surface (newview over a full
/// traversal, evaluate, sumtable + derivatives at several branch lengths,
/// then a partial traversal after a branch change) and assert bitwise
/// agreement at every observable output.
fn assert_backends_agree(n_taxa: usize, sites: usize, seed: u64, kind: RateModelKind) {
    let aln = random_alignment(n_taxa, sites, seed);
    let mut tree = Tree::random(n_taxa, 1, seed);
    let mut scalar = engine_with(&aln, kind, KernelKind::Scalar, 0.7);
    let mut simd = engine_with(&aln, kind, KernelKind::Simd, 0.7);
    assert_eq!(scalar.kernel_kind(), KernelKind::Scalar);
    assert_eq!(simd.kernel_kind(), KernelKind::Simd);

    let d = tree.full_traversal_descriptor(0);
    scalar.execute(&d);
    simd.execute(&d);
    let lnl_scalar = scalar.evaluate(&d);
    let lnl_simd = simd.evaluate(&d);
    for (a, b) in lnl_scalar.iter().zip(&lnl_simd) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "evaluate: {a} vs {b} (seed {seed})"
        );
    }

    scalar.prepare_derivatives(&d);
    simd.prepare_derivatives(&d);
    for t in [1e-6, 0.05, 0.3, 1.5] {
        let (s1, s2) = scalar.derivatives(&[t]);
        let (v1, v2) = simd.derivatives(&[t]);
        assert_eq!(
            s1[0].to_bits(),
            v1[0].to_bits(),
            "d1 at t={t} (seed {seed})"
        );
        assert_eq!(
            s2[0].to_bits(),
            v2[0].to_bits(),
            "d2 at t={t} (seed {seed})"
        );
    }

    // A branch change plus partial traversal exercises the tip/inner child
    // mix differently from the initial full traversal.
    let e = tree.n_edges() / 2;
    tree.set_length(e, 0, 0.71);
    let partial = tree.traversal_descriptor(0);
    scalar.execute(&partial);
    simd.execute(&partial);
    let a = scalar.evaluate(&partial)[0];
    let b = simd.evaluate(&partial)[0];
    assert_eq!(a.to_bits(), b.to_bits(), "partial evaluate (seed {seed})");

    if kind == RateModelKind::Psr {
        let d2 = tree.full_traversal_descriptor(0);
        let (na, da) = scalar.optimize_site_rates(&d2);
        let (nb, db) = simd.optimize_site_rates(&d2);
        assert_eq!(na.to_bits(), nb.to_bits(), "psr numerator (seed {seed})");
        assert_eq!(da.to_bits(), db.to_bits(), "psr denominator (seed {seed})");
        scalar.finalize_site_rates(da / na);
        simd.finalize_site_rates(db / nb);
        tree.invalidate_all();
        let d3 = tree.full_traversal_descriptor(0);
        scalar.execute(&d3);
        simd.execute(&d3);
        let a = scalar.evaluate(&d3)[0];
        let b = simd.evaluate(&d3)[0];
        assert_eq!(a.to_bits(), b.to_bits(), "post-PSR evaluate (seed {seed})");
    }
}

#[test]
fn backends_agree_bitwise_under_gamma() {
    for seed in [1u64, 7, 42, 1234] {
        assert_backends_agree(8, 120, seed, RateModelKind::Gamma);
    }
    // Long branches force CLV rescaling on both paths.
    assert_backends_agree(40, 40, 99, RateModelKind::Gamma);
}

#[test]
fn backends_agree_bitwise_under_psr() {
    for seed in [3u64, 11, 77] {
        assert_backends_agree(7, 90, seed, RateModelKind::Psr);
    }
}

/// Distance in units-in-the-last-place between two finite doubles.
fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.signum() != b.signum() {
        return u64::MAX;
    }
    (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The public contract: per-site log-likelihoods from the two backends
    /// agree within 1 ulp on random trees and models. Sites are isolated by
    /// building single-pattern engines, so this really is per-site (not a
    /// cancellation-prone total).
    #[test]
    fn per_site_lnl_within_one_ulp(
        seed in 1u64..5000,
        alpha in 0.1f64..5.0,
        ag_rate in 0.2f64..8.0,
        scale in 0.2f64..3.0,
    ) {
        let n_taxa = 6;
        let aln = random_alignment(n_taxa, 30, seed);
        let comp = CompressedAlignment::build(&aln, &PartitionScheme::unpartitioned(aln.n_sites()));
        let part = &comp.partitions[0];
        let mut tree = Tree::random(n_taxa, 1, seed);
        for e in 0..tree.n_edges() {
            let l = tree.edge(e).length(0);
            tree.set_length(e, 0, l * scale);
        }
        for i in 0..part.n_patterns() {
            let single = part.select_patterns(&[i]);
            let slice = PartitionSlice::from_compressed(0, &single);
            let mut scalar = Engine::with_kernel(
                n_taxa, vec![slice.clone()], RateModelKind::Gamma, alpha, KernelKind::Scalar,
            );
            let mut simd = Engine::with_kernel(
                n_taxa, vec![slice], RateModelKind::Gamma, alpha, KernelKind::Simd,
            );
            scalar.set_gtr_rate(0, 1, ag_rate);
            simd.set_gtr_rate(0, 1, ag_rate);
            let d = tree.full_traversal_descriptor(0);
            scalar.execute(&d);
            simd.execute(&d);
            let a = scalar.evaluate(&d)[0];
            let b = simd.evaluate(&d)[0];
            prop_assert!(
                ulp_distance(a, b) <= 1,
                "site {} (seed {}): {} vs {} ({} ulps)",
                i, seed, a, b, ulp_distance(a, b)
            );
        }
    }
}
