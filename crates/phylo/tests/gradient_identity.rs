//! The full-tree gradient sweep must be bitwise identical to the per-edge
//! derivative path, and analytically correct.
//!
//! [`Engine::edge_gradient`] materializes "outside" CLVs in one pre-order
//! pass and feeds every edge's sumtable through the same
//! `derivatives_from_sumtable` kernel the per-edge Newton path runs. Because
//! inward CLVs are pure functions of tree + model (traversal order never
//! changes the arithmetic — children are always sorted smaller-node-id
//! first) and the outside CLV of an edge is exactly the CLV a per-edge
//! traversal would compute for the far side, every `(d1, d2)` pair must
//! match the per-edge `prepare_derivatives` + `derivatives` result **bit for
//! bit** — on both kernel backends, under Γ and PSR rate models, with
//! subtree-repeat compression on and off, including the deep-tree regime
//! where CLV rescaling fires. On top of the identity, central finite
//! differences pin the analytic first and second derivatives to the actual
//! log-likelihood surface.

use exa_bio::alignment::Alignment;
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, KernelKind, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::Tree;
use exa_phylo::SiteRepeats;
use proptest::prelude::*;

/// Deterministic repeat-rich alignment (near-duplicate columns survive
/// pattern compression but repeat under most inner nodes), same construction
/// the repeat-identity suite uses so both compression settings are
/// meaningfully exercised.
fn repeat_rich_alignment(n_taxa: usize, len: usize, n_distinct: usize, seed: u64) -> Alignment {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let cols: Vec<Vec<char>> = (0..n_distinct)
        .map(|_| {
            (0..n_taxa)
                .map(|_| match next() % 14 {
                    0..=2 => 'A',
                    3..=5 => 'C',
                    6..=8 => 'G',
                    9..=11 => 'T',
                    12 => 'N',
                    _ => 'R',
                })
                .collect()
        })
        .collect();
    let pick: Vec<usize> = (0..len).map(|_| (next() as usize) % n_distinct).collect();
    let mut grid: Vec<Vec<char>> = (0..n_taxa)
        .map(|t| pick.iter().map(|&p| cols[p][t]).collect())
        .collect();
    #[allow(clippy::needless_range_loop)] // `s` indexes a row picked per site
    for s in 0..len {
        let t = (next() as usize) % n_taxa;
        grid[t][s] = match next() % 4 {
            0 => 'A',
            1 => 'C',
            2 => 'G',
            _ => 'T',
        };
    }
    let names: Vec<String> = (0..n_taxa).map(|i| format!("t{i}")).collect();
    let rows: Vec<String> = grid.into_iter().map(|r| r.into_iter().collect()).collect();
    let named: Vec<(&str, &str)> = names
        .iter()
        .map(String::as_str)
        .zip(rows.iter().map(String::as_str))
        .collect();
    Alignment::from_ascii(&named).unwrap()
}

fn build_engine(
    aln: &Alignment,
    kind: RateModelKind,
    kernel: KernelKind,
    repeats: SiteRepeats,
) -> Engine {
    let comp = CompressedAlignment::build(aln, &PartitionScheme::unpartitioned(aln.n_sites()));
    let slice = PartitionSlice::from_compressed(0, &comp.partitions[0]);
    Engine::with_config(aln.n_taxa(), vec![slice], kind, 0.7, kernel, repeats)
}

/// The identity battery: one sweep at edge 0, then the per-edge path at
/// every edge of the tree, asserting bitwise-equal `(d1, d2)` pairs. Also
/// checks the `with_terms` variant returns identical pairs and that its
/// per-pattern addends re-sum (serially, in pattern order) to the scalar —
/// the contract the reproducible binned reduction relies on.
#[allow(clippy::too_many_arguments)]
fn assert_sweep_matches_per_edge(
    kernel: KernelKind,
    kind: RateModelKind,
    repeats: SiteRepeats,
    n_taxa: usize,
    len: usize,
    n_distinct: usize,
    seed: u64,
    scale: f64,
) {
    let aln = repeat_rich_alignment(n_taxa, len, n_distinct, seed);
    let mut engine = build_engine(&aln, kind, kernel, repeats);
    let mut tree = Tree::random(n_taxa, 1, seed);
    for e in 0..tree.n_edges() {
        let l = tree.edge(e).length(0);
        tree.set_length(e, 0, l * scale);
    }

    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let plan = tree.gradient_plan(0);
    assert_eq!(plan.n_edges, tree.n_edges());
    let sweep = engine.edge_gradient(&plan);

    // The terms-producing variant must not perturb the pairs, and its
    // addends must re-sum to them exactly.
    let mut terms: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); plan.n_edges];
    let sweep_t = engine.edge_gradient_with_terms(&plan, &mut |local, edge, t1, t2| {
        assert_eq!(local, 0);
        terms[edge] = (t1.to_vec(), t2.to_vec());
    });
    for e in 0..plan.n_edges {
        assert_eq!(sweep[0][e].0.to_bits(), sweep_t[0][e].0.to_bits());
        assert_eq!(sweep[0][e].1.to_bits(), sweep_t[0][e].1.to_bits());
        let (re1, re2) = (
            terms[e].0.iter().fold(0.0f64, |a, t| a + t),
            terms[e].1.iter().fold(0.0f64, |a, t| a + t),
        );
        assert_eq!(
            re1.to_bits(),
            sweep[0][e].0.to_bits(),
            "t1 re-sum, edge {e}"
        );
        assert_eq!(
            re2.to_bits(),
            sweep[0][e].1.to_bits(),
            "t2 re-sum, edge {e}"
        );
    }

    for (e, &(s1, s2)) in sweep[0].iter().enumerate() {
        let de = tree.traversal_descriptor(e);
        engine.execute(&de);
        engine.prepare_derivatives(&de);
        let lengths = tree.edge(e).lengths.clone();
        let (d1, d2) = engine.derivatives(&lengths);
        assert_eq!(
            s1.to_bits(),
            d1[0].to_bits(),
            "d1 at edge {e}: sweep {} vs per-edge {} ({kernel:?} {kind:?} {repeats:?} seed {seed})",
            s1,
            d1[0],
        );
        assert_eq!(
            s2.to_bits(),
            d2[0].to_bits(),
            "d2 at edge {e}: sweep {} vs per-edge {} ({kernel:?} {kind:?} {repeats:?} seed {seed})",
            s2,
            d2[0],
        );
    }
}

#[test]
fn sweep_matches_per_edge_bitwise_gamma() {
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        for repeats in [SiteRepeats::On, SiteRepeats::Off] {
            assert_sweep_matches_per_edge(
                kernel,
                RateModelKind::Gamma,
                repeats,
                12,
                80,
                6,
                42,
                1.0,
            );
        }
    }
}

#[test]
fn sweep_matches_per_edge_bitwise_psr() {
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        for repeats in [SiteRepeats::On, SiteRepeats::Off] {
            assert_sweep_matches_per_edge(kernel, RateModelKind::Psr, repeats, 9, 72, 5, 17, 1.0);
        }
    }
}

#[test]
fn sweep_matches_per_edge_in_the_rescaling_regime() {
    // 40 taxa with 3× branch lengths forces CLV rescaling on interior nodes;
    // the outside CLVs must carry the same scale counts the per-edge
    // traversals would, or the (scaling-cancelled) derivative ratios drift.
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        assert_sweep_matches_per_edge(
            kernel,
            RateModelKind::Gamma,
            SiteRepeats::On,
            40,
            60,
            6,
            99,
            3.0,
        );
    }
}

/// Central finite differences of the actual log-likelihood pin the analytic
/// derivatives to the surface they claim to describe: the identity tests
/// above prove sweep ≡ per-edge, this proves both are *correct*.
#[test]
fn sweep_derivatives_match_finite_differences() {
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        let aln = repeat_rich_alignment(10, 120, 7, 7);
        let mut engine = build_engine(&aln, RateModelKind::Gamma, kernel, SiteRepeats::Off);
        let mut tree = Tree::random(10, 1, 7);

        let lnl_at = |tree: &mut Tree, engine: &mut Engine, edge: usize, t: f64| -> f64 {
            tree.set_length(edge, 0, t);
            let d = tree.full_traversal_descriptor(0);
            engine.execute(&d);
            engine.evaluate(&d).iter().sum::<f64>()
        };

        let d = tree.full_traversal_descriptor(0);
        engine.execute(&d);
        let plan = tree.gradient_plan(0);
        let sweep = engine.edge_gradient(&plan);

        // A tip edge, an internal edge, and the rooting edge itself.
        let probe: Vec<usize> = vec![0, tree.n_edges() / 2, tree.n_edges() - 1];
        for e in probe {
            let t = tree.edge(e).length(0);
            let (d1, d2) = sweep[0][e];

            let h1 = 1e-5 * (1.0 + t);
            let up = lnl_at(&mut tree, &mut engine, e, t + h1);
            let dn = lnl_at(&mut tree, &mut engine, e, t - h1);
            let fd1 = (up - dn) / (2.0 * h1);
            assert!(
                (d1 - fd1).abs() <= 1e-3 * (1.0 + d1.abs()),
                "edge {e}: analytic d1 {d1} vs central difference {fd1} ({kernel:?})"
            );

            let h2 = 1e-4 * (1.0 + t);
            let up = lnl_at(&mut tree, &mut engine, e, t + h2);
            let mid = lnl_at(&mut tree, &mut engine, e, t);
            let dn = lnl_at(&mut tree, &mut engine, e, t - h2);
            let fd2 = (up - 2.0 * mid + dn) / (h2 * h2);
            assert!(
                (d2 - fd2).abs() <= 1e-2 * (1.0 + d2.abs()),
                "edge {e}: analytic d2 {d2} vs central difference {fd2} ({kernel:?})"
            );

            // Restore the probed length so later probes see the original
            // tree (and the sweep's pairs stay the right reference).
            lnl_at(&mut tree, &mut engine, e, t);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: on random repeat-rich alignments, random trees
    /// and random branch scalings, the one-pass sweep is bitwise identical
    /// to the per-edge derivative path on BOTH backends and BOTH compression
    /// settings.
    #[test]
    fn sweep_identity_on_random_trees(
        n_taxa in 5usize..10,
        n_distinct in 1usize..8,
        seed in any::<u64>(),
        scale in 0.2f64..4.0,
    ) {
        for kernel in [KernelKind::Scalar, KernelKind::Simd] {
            for repeats in [SiteRepeats::On, SiteRepeats::Off] {
                assert_sweep_matches_per_edge(
                    kernel, RateModelKind::Gamma, repeats, n_taxa, 72, n_distinct, seed, scale,
                );
            }
        }
    }
}
