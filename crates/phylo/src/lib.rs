//! `exa-phylo` — the phylogenetic likelihood engine underlying `examl-rs`.
//!
//! This crate is the computational substrate both parallelization schemes of
//! the paper run on:
//!
//! * [`numerics`] — special functions (Γ quantiles for the Yang-1994 rate
//!   discretization), a Jacobi eigensolver, and Brent minimization including
//!   the batched lockstep form needed for simultaneous all-partition
//!   parameter proposals,
//! * [`model`] — GTR substitution model with cached eigendecomposition, plus
//!   Γ and PSR rate heterogeneity,
//! * [`tree`] — unrooted binary trees with SPR moves, CLV-orientation
//!   tracking, traversal descriptors, Newick I/O, and bipartition
//!   comparison,
//! * [`engine`] — the likelihood kernels (`newview`, `evaluate`,
//!   sumtable-based derivatives) over a rank's local data slice, with work
//!   counters for the analytic cluster model.

// Dense fixed-size matrix/vector math throughout this crate reads most
// clearly with explicit indices (mirroring the textbook formulas); iterator
// rewrites obscure the stride structure the kernels depend on.
#![allow(clippy::needless_range_loop)]

pub mod engine;
pub mod model;
pub mod numerics;
pub mod tree;

pub use engine::{
    simd_available, Engine, GradientChoice, GradientMode, KernelChoice, KernelKind, PartitionSlice,
    RepeatsChoice, SiteRepeats, ThreadCount, ThreadsChoice, WorkCounters,
};
pub use model::{GtrModel, RateHeterogeneity, RateModelKind};
pub use tree::{EdgeId, NodeId, Tree};
