//! Traversal descriptors.
//!
//! A traversal descriptor lists, in post-order, the inner nodes whose
//! conditional likelihood vectors must be (re)computed so that the
//! likelihood can be evaluated at a chosen *virtual root* edge. Under the
//! fork-join scheme the master broadcasts this structure to every worker for
//! essentially every parallel region — the paper's Table I shows those
//! broadcasts account for 30–97% of all MPI traffic. Under the de-centralized
//! scheme each rank computes the descriptor locally from its replicated tree
//! and nothing is broadcast.

use super::{EdgeId, NodeId, Tree};
use serde::{Deserialize, Serialize};

/// One CLV recomputation: `parent`'s CLV (oriented toward the virtual root)
/// is combined from children `left` and `right` through the transition
/// matrices of the connecting branches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraversalEntry {
    pub parent: NodeId,
    pub left: NodeId,
    pub right: NodeId,
    /// Branch lengths parent–left: 1 entry (joint) or one per partition.
    pub left_lengths: Vec<f64>,
    /// Branch lengths parent–right.
    pub right_lengths: Vec<f64>,
}

/// A full descriptor: the recomputation list plus the virtual-root edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraversalDescriptor {
    pub entries: Vec<TraversalEntry>,
    /// Virtual root endpoints.
    pub root_a: NodeId,
    pub root_b: NodeId,
    /// Branch lengths of the virtual-root edge.
    pub root_lengths: Vec<f64>,
}

impl TraversalEntry {
    /// Theoretical wire size in bytes when the descriptor is broadcast under
    /// fork-join: three 4-byte node ids plus the 8-byte branch lengths.
    /// (This is the hardware-independent byte-counting convention of the
    /// paper's Table I.)
    pub fn wire_bytes(&self) -> u64 {
        3 * 4 + 8 * (self.left_lengths.len() + self.right_lengths.len()) as u64
    }
}

impl TraversalDescriptor {
    /// Total theoretical broadcast size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        let entries: u64 = self.entries.iter().map(TraversalEntry::wire_bytes).sum();
        // Root record: two ids + lengths + the entry count.
        entries + 2 * 4 + 8 * self.root_lengths.len() as u64 + 4
    }

    /// Number of CLV recomputations this descriptor requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when every required CLV is already valid.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One side feeding an "outside" CLV computation in a gradient sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradSource {
    /// The neighbor node this side descends through.
    pub node: NodeId,
    /// Branch lengths parent–node (1 entry = joint, else per partition).
    pub lengths: Vec<f64>,
    /// `Some(e)`: read the outside CLV the sweep previously materialized for
    /// edge `e` (the parent's own up-edge; always an earlier step). `None`:
    /// read the node's inward side — tip codes or its root-oriented cached
    /// CLV.
    pub from_outside: Option<EdgeId>,
}

/// One pre-order step of a gradient sweep: materialize the CLV of `parent`
/// looking toward `child` (everything on the far side of `edge`), combined
/// from the two non-`child` neighbors of `parent`, then take the branch
/// derivative of `edge` from that outside CLV and `child`'s inward side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradStep {
    /// The edge (`parent`–`child`) this step handles.
    pub edge: EdgeId,
    pub parent: NodeId,
    pub child: NodeId,
    /// Branch lengths of `edge` — the point the derivative is taken at.
    pub lengths: Vec<f64>,
    /// True when `edge.a == child`. The per-edge derivative path roots the
    /// sumtable at `(edge.a, edge.b)` and side order is observable in the
    /// bits, so the sweep must put the child's inward CLV on the `a` side
    /// whenever the stored edge record does.
    pub swap_sides: bool,
    /// Left source — smaller node id first, the same deterministic child
    /// order `collect_entries` uses, so the outside CLV is bitwise identical
    /// to the CLV a per-edge traversal would have computed.
    pub left: GradSource,
    pub right: GradSource,
}

/// A full-tree gradient sweep plan rooted at the virtual-root edge the
/// inward CLVs are currently oriented toward. Like a
/// [`TraversalDescriptor`], the plan is pure node ids and branch lengths, so
/// tree-less fork-join workers can execute it from the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientPlan {
    /// The virtual-root edge (derivative taken directly from the two inward
    /// sides, exactly like the per-edge path's sumtable at that edge).
    pub root_edge: EdgeId,
    pub root_a: NodeId,
    pub root_b: NodeId,
    pub root_lengths: Vec<f64>,
    /// Total number of edges in the tree (= gradient vector length).
    pub n_edges: usize,
    /// Every non-root edge exactly once, parents before children.
    pub steps: Vec<GradStep>,
}

impl GradientPlan {
    /// Theoretical wire size in bytes when the plan is broadcast under
    /// fork-join (same byte-counting convention as
    /// [`TraversalDescriptor::wire_bytes`]).
    pub fn wire_bytes(&self) -> u64 {
        let steps: u64 = self
            .steps
            .iter()
            .map(|s| {
                // edge + parent + child + 2×(node + from_outside) ids, plus
                // the three length vectors.
                7 * 4 + 8 * (s.lengths.len() + s.left.lengths.len() + s.right.lengths.len()) as u64
            })
            .sum();
        steps + 3 * 4 + 8 * self.root_lengths.len() as u64 + 4
    }
}

impl Tree {
    /// Compute the descriptor that makes the likelihood evaluable at edge
    /// `root`. Marks the affected CLVs as valid (the engine is expected to
    /// execute the descriptor before the next one is computed — both the
    /// fork-join master and each de-centralized rank do exactly that).
    pub fn traversal_descriptor(&mut self, root: EdgeId) -> TraversalDescriptor {
        let (a, b) = {
            let e = self.edge(root);
            (e.a, e.b)
        };
        let mut entries = Vec::new();
        self.collect_entries(a, b, &mut entries);
        self.collect_entries(b, a, &mut entries);
        TraversalDescriptor {
            entries,
            root_a: a,
            root_b: b,
            root_lengths: self.edge(root).lengths.clone(),
        }
    }

    /// Ensure CLV(`v` → `toward`) will be valid, appending recomputations in
    /// post-order.
    fn collect_entries(&mut self, v: NodeId, toward: NodeId, out: &mut Vec<TraversalEntry>) {
        if self.is_tip(v) {
            return;
        }
        if self.orientation_of(v) == Some(toward) {
            return;
        }
        let mut children = self
            .neighbors(v)
            .iter()
            .filter(|&&(n, _)| n != toward)
            .copied()
            .collect::<Vec<_>>();
        debug_assert_eq!(children.len(), 2, "inner node must have exactly 2 children");
        // Deterministic child order (smaller node id first) so every rank
        // builds the identical descriptor.
        children.sort_by_key(|&(n, _)| n);
        let (left, le) = children[0];
        let (right, re) = children[1];
        self.collect_entries(left, v, out);
        self.collect_entries(right, v, out);
        out.push(TraversalEntry {
            parent: v,
            left,
            right,
            left_lengths: self.edge(le).lengths.clone(),
            right_lengths: self.edge(re).lengths.clone(),
        });
        self.set_orientation(v, toward);
    }

    /// Descriptor for a **full** re-traversal (all CLVs recomputed), used
    /// after model-parameter changes.
    pub fn full_traversal_descriptor(&mut self, root: EdgeId) -> TraversalDescriptor {
        self.invalidate_all();
        self.traversal_descriptor(root)
    }

    /// Build the pre-order sweep plan for a full-tree branch gradient rooted
    /// at edge `root`. Pure read: the caller must already have executed
    /// [`Tree::traversal_descriptor`] at the same edge so every inward CLV
    /// is valid and oriented toward `root`.
    pub fn gradient_plan(&self, root: EdgeId) -> GradientPlan {
        let (root_a, root_b) = {
            let e = self.edge(root);
            (e.a, e.b)
        };
        let mut steps = Vec::with_capacity(self.n_edges().saturating_sub(1));
        // (parent, up neighbor, parent's up-edge — None at a root endpoint,
        // where the up side is the other endpoint's inward CLV).
        let mut stack: Vec<(NodeId, NodeId, Option<EdgeId>)> = Vec::new();
        if !self.is_tip(root_b) {
            stack.push((root_b, root_a, None));
        }
        if !self.is_tip(root_a) {
            stack.push((root_a, root_b, None));
        }
        while let Some((parent, up, up_edge)) = stack.pop() {
            let mut children: Vec<(NodeId, EdgeId)> = self
                .neighbors(parent)
                .iter()
                .filter(|&&(n, _)| n != up)
                .copied()
                .collect();
            debug_assert_eq!(children.len(), 2, "inner node must have 2 children");
            children.sort_by_key(|&(n, _)| n);
            let up_lengths = match up_edge {
                Some(e) => self.edge(e).lengths.clone(),
                None => self.edge(root).lengths.clone(),
            };
            for (idx, &(child, edge)) in children.iter().enumerate() {
                let (sib, sib_edge) = children[1 - idx];
                let up_src = GradSource {
                    node: up,
                    lengths: up_lengths.clone(),
                    from_outside: up_edge,
                };
                let sib_src = GradSource {
                    node: sib,
                    lengths: self.edge(sib_edge).lengths.clone(),
                    from_outside: None,
                };
                let (left, right) = if up < sib {
                    (up_src, sib_src)
                } else {
                    (sib_src, up_src)
                };
                steps.push(GradStep {
                    edge,
                    parent,
                    child,
                    lengths: self.edge(edge).lengths.clone(),
                    swap_sides: self.edge(edge).a == child,
                    left,
                    right,
                });
                if !self.is_tip(child) {
                    stack.push((child, parent, Some(edge)));
                }
            }
        }
        GradientPlan {
            root_edge: root,
            root_a,
            root_b,
            root_lengths: self.edge(root).lengths.clone(),
            n_edges: self.n_edges(),
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::Tree;

    #[test]
    fn full_traversal_covers_all_inner_nodes() {
        let mut t = Tree::random(10, 1, 1);
        let d = t.full_traversal_descriptor(0);
        assert_eq!(d.entries.len(), t.n_inner());
        // Every inner node appears exactly once as parent.
        let mut seen = std::collections::HashSet::new();
        for e in &d.entries {
            assert!(seen.insert(e.parent), "duplicate parent {}", e.parent);
            assert!(!t.is_tip(e.parent));
        }
    }

    #[test]
    fn descriptor_is_post_order() {
        let mut t = Tree::random(12, 1, 2);
        let d = t.full_traversal_descriptor(3);
        // A child inner node must be computed before its parent.
        let mut pos = std::collections::HashMap::new();
        for (i, e) in d.entries.iter().enumerate() {
            pos.insert(e.parent, i);
        }
        for (i, e) in d.entries.iter().enumerate() {
            for c in [e.left, e.right] {
                if let Some(&ci) = pos.get(&c) {
                    assert!(ci < i, "child {c} computed after parent {}", e.parent);
                }
            }
        }
    }

    #[test]
    fn second_traversal_at_same_root_is_empty() {
        let mut t = Tree::random(10, 1, 1);
        let _ = t.full_traversal_descriptor(0);
        let d2 = t.traversal_descriptor(0);
        assert!(
            d2.is_empty(),
            "CLVs were valid, descriptor should be empty: {d2:?}"
        );
    }

    #[test]
    fn moving_root_to_adjacent_edge_is_cheap() {
        let mut t = Tree::random(30, 1, 5);
        let _ = t.full_traversal_descriptor(0);
        // Re-rooting at a neighboring edge should recompute only the few
        // nodes whose orientation flips — the paper's 4–5 node average.
        let adjacent = t.edges_within_radius(0, 1)[0];
        let d = t.traversal_descriptor(adjacent);
        assert!(
            d.len() <= 3,
            "adjacent re-root should touch at most a few nodes, got {}",
            d.len()
        );
    }

    #[test]
    fn branch_change_triggers_partial_traversal() {
        let mut t = Tree::random(20, 1, 7);
        let root = 0;
        let _ = t.full_traversal_descriptor(root);
        // Change a branch far from the root edge: only nodes on the path
        // from that branch to the root need recomputation.
        let far = t.n_edges() - 1;
        t.set_length(far, 0, 0.5);
        let d = t.traversal_descriptor(root);
        assert!(!d.is_empty());
        assert!(
            d.len() < t.n_inner(),
            "partial traversal expected, got full ({})",
            d.len()
        );
    }

    #[test]
    fn wire_bytes_scale_with_partitions() {
        let mut t1 = Tree::random(10, 1, 1);
        let mut tp = Tree::random(10, 10, 1);
        let d1 = t1.full_traversal_descriptor(0);
        let dp = tp.full_traversal_descriptor(0);
        assert_eq!(d1.len(), dp.len());
        // Per-partition branch lengths inflate the descriptor ~10x in its
        // branch-length payload — the -M effect from §IV-D.
        assert!(
            dp.wire_bytes() > 5 * d1.wire_bytes(),
            "{} vs {}",
            dp.wire_bytes(),
            d1.wire_bytes()
        );
    }

    #[test]
    fn deterministic_across_clones() {
        let t0 = Tree::random(15, 1, 3);
        let mut a = t0.clone();
        let mut b = t0;
        let da = a.full_traversal_descriptor(2);
        let db = b.full_traversal_descriptor(2);
        assert_eq!(da, db);
    }

    #[test]
    fn gradient_plan_covers_every_nonroot_edge_once() {
        for seed in [1u64, 5, 9] {
            let t = Tree::random(14, 1, seed);
            for root in [0usize, 3, t.n_edges() - 1] {
                let plan = t.gradient_plan(root);
                assert_eq!(plan.n_edges, t.n_edges());
                assert_eq!(plan.steps.len(), t.n_edges() - 1);
                let mut seen = std::collections::HashSet::new();
                for s in &plan.steps {
                    assert_ne!(s.edge, root, "root edge must not appear as a step");
                    assert!(seen.insert(s.edge), "edge {} appears twice", s.edge);
                    let e = t.edge(s.edge);
                    assert!(
                        (e.a == s.parent && e.b == s.child) || (e.a == s.child && e.b == s.parent)
                    );
                    assert_eq!(s.swap_sides, e.a == s.child);
                }
            }
        }
    }

    #[test]
    fn gradient_plan_dependencies_resolve_in_order() {
        let t = Tree::random(20, 1, 7);
        let plan = t.gradient_plan(4);
        let mut done = std::collections::HashSet::new();
        for s in &plan.steps {
            for src in [&s.left, &s.right] {
                if let Some(dep) = src.from_outside {
                    assert!(
                        done.contains(&dep),
                        "step for edge {} reads outside CLV of edge {dep} before it exists",
                        s.edge
                    );
                } else {
                    // Inward sides come straight from the root-oriented CLV
                    // set (or a tip) — never from the root edge itself.
                    assert!(src.node < t.n_nodes());
                }
            }
            done.insert(s.edge);
        }
    }

    #[test]
    fn gradient_plan_sides_sorted_like_collect_entries() {
        let t = Tree::random(16, 1, 11);
        let plan = t.gradient_plan(0);
        for s in &plan.steps {
            assert!(
                s.left.node < s.right.node,
                "sources must keep the smaller-node-id-first child order"
            );
            // The two sources plus the child are exactly the parent's
            // neighborhood.
            let mut nbrs: Vec<_> = t.neighbors(s.parent).iter().map(|&(n, _)| n).collect();
            nbrs.sort_unstable();
            let mut got = vec![s.left.node, s.right.node, s.child];
            got.sort_unstable();
            assert_eq!(nbrs, got);
        }
    }

    #[test]
    fn gradient_plan_per_partition_lengths_ride_along() {
        let t = Tree::random(8, 3, 2);
        let plan = t.gradient_plan(1);
        assert_eq!(plan.root_lengths.len(), 3);
        for s in &plan.steps {
            assert_eq!(s.lengths.len(), 3);
            assert_eq!(s.lengths, t.edge(s.edge).lengths);
            assert_eq!(s.left.lengths.len(), 3);
            assert_eq!(s.right.lengths.len(), 3);
        }
        assert!(plan.wire_bytes() > 0);
    }
}
