//! Traversal descriptors.
//!
//! A traversal descriptor lists, in post-order, the inner nodes whose
//! conditional likelihood vectors must be (re)computed so that the
//! likelihood can be evaluated at a chosen *virtual root* edge. Under the
//! fork-join scheme the master broadcasts this structure to every worker for
//! essentially every parallel region — the paper's Table I shows those
//! broadcasts account for 30–97% of all MPI traffic. Under the de-centralized
//! scheme each rank computes the descriptor locally from its replicated tree
//! and nothing is broadcast.

use super::{EdgeId, NodeId, Tree};
use serde::{Deserialize, Serialize};

/// One CLV recomputation: `parent`'s CLV (oriented toward the virtual root)
/// is combined from children `left` and `right` through the transition
/// matrices of the connecting branches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraversalEntry {
    pub parent: NodeId,
    pub left: NodeId,
    pub right: NodeId,
    /// Branch lengths parent–left: 1 entry (joint) or one per partition.
    pub left_lengths: Vec<f64>,
    /// Branch lengths parent–right.
    pub right_lengths: Vec<f64>,
}

/// A full descriptor: the recomputation list plus the virtual-root edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraversalDescriptor {
    pub entries: Vec<TraversalEntry>,
    /// Virtual root endpoints.
    pub root_a: NodeId,
    pub root_b: NodeId,
    /// Branch lengths of the virtual-root edge.
    pub root_lengths: Vec<f64>,
}

impl TraversalEntry {
    /// Theoretical wire size in bytes when the descriptor is broadcast under
    /// fork-join: three 4-byte node ids plus the 8-byte branch lengths.
    /// (This is the hardware-independent byte-counting convention of the
    /// paper's Table I.)
    pub fn wire_bytes(&self) -> u64 {
        3 * 4 + 8 * (self.left_lengths.len() + self.right_lengths.len()) as u64
    }
}

impl TraversalDescriptor {
    /// Total theoretical broadcast size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        let entries: u64 = self.entries.iter().map(TraversalEntry::wire_bytes).sum();
        // Root record: two ids + lengths + the entry count.
        entries + 2 * 4 + 8 * self.root_lengths.len() as u64 + 4
    }

    /// Number of CLV recomputations this descriptor requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when every required CLV is already valid.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Tree {
    /// Compute the descriptor that makes the likelihood evaluable at edge
    /// `root`. Marks the affected CLVs as valid (the engine is expected to
    /// execute the descriptor before the next one is computed — both the
    /// fork-join master and each de-centralized rank do exactly that).
    pub fn traversal_descriptor(&mut self, root: EdgeId) -> TraversalDescriptor {
        let (a, b) = {
            let e = self.edge(root);
            (e.a, e.b)
        };
        let mut entries = Vec::new();
        self.collect_entries(a, b, &mut entries);
        self.collect_entries(b, a, &mut entries);
        TraversalDescriptor {
            entries,
            root_a: a,
            root_b: b,
            root_lengths: self.edge(root).lengths.clone(),
        }
    }

    /// Ensure CLV(`v` → `toward`) will be valid, appending recomputations in
    /// post-order.
    fn collect_entries(&mut self, v: NodeId, toward: NodeId, out: &mut Vec<TraversalEntry>) {
        if self.is_tip(v) {
            return;
        }
        if self.orientation_of(v) == Some(toward) {
            return;
        }
        let mut children = self
            .neighbors(v)
            .iter()
            .filter(|&&(n, _)| n != toward)
            .copied()
            .collect::<Vec<_>>();
        debug_assert_eq!(children.len(), 2, "inner node must have exactly 2 children");
        // Deterministic child order (smaller node id first) so every rank
        // builds the identical descriptor.
        children.sort_by_key(|&(n, _)| n);
        let (left, le) = children[0];
        let (right, re) = children[1];
        self.collect_entries(left, v, out);
        self.collect_entries(right, v, out);
        out.push(TraversalEntry {
            parent: v,
            left,
            right,
            left_lengths: self.edge(le).lengths.clone(),
            right_lengths: self.edge(re).lengths.clone(),
        });
        self.set_orientation(v, toward);
    }

    /// Descriptor for a **full** re-traversal (all CLVs recomputed), used
    /// after model-parameter changes.
    pub fn full_traversal_descriptor(&mut self, root: EdgeId) -> TraversalDescriptor {
        self.invalidate_all();
        self.traversal_descriptor(root)
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::Tree;

    #[test]
    fn full_traversal_covers_all_inner_nodes() {
        let mut t = Tree::random(10, 1, 1);
        let d = t.full_traversal_descriptor(0);
        assert_eq!(d.entries.len(), t.n_inner());
        // Every inner node appears exactly once as parent.
        let mut seen = std::collections::HashSet::new();
        for e in &d.entries {
            assert!(seen.insert(e.parent), "duplicate parent {}", e.parent);
            assert!(!t.is_tip(e.parent));
        }
    }

    #[test]
    fn descriptor_is_post_order() {
        let mut t = Tree::random(12, 1, 2);
        let d = t.full_traversal_descriptor(3);
        // A child inner node must be computed before its parent.
        let mut pos = std::collections::HashMap::new();
        for (i, e) in d.entries.iter().enumerate() {
            pos.insert(e.parent, i);
        }
        for (i, e) in d.entries.iter().enumerate() {
            for c in [e.left, e.right] {
                if let Some(&ci) = pos.get(&c) {
                    assert!(ci < i, "child {c} computed after parent {}", e.parent);
                }
            }
        }
    }

    #[test]
    fn second_traversal_at_same_root_is_empty() {
        let mut t = Tree::random(10, 1, 1);
        let _ = t.full_traversal_descriptor(0);
        let d2 = t.traversal_descriptor(0);
        assert!(
            d2.is_empty(),
            "CLVs were valid, descriptor should be empty: {d2:?}"
        );
    }

    #[test]
    fn moving_root_to_adjacent_edge_is_cheap() {
        let mut t = Tree::random(30, 1, 5);
        let _ = t.full_traversal_descriptor(0);
        // Re-rooting at a neighboring edge should recompute only the few
        // nodes whose orientation flips — the paper's 4–5 node average.
        let adjacent = t.edges_within_radius(0, 1)[0];
        let d = t.traversal_descriptor(adjacent);
        assert!(
            d.len() <= 3,
            "adjacent re-root should touch at most a few nodes, got {}",
            d.len()
        );
    }

    #[test]
    fn branch_change_triggers_partial_traversal() {
        let mut t = Tree::random(20, 1, 7);
        let root = 0;
        let _ = t.full_traversal_descriptor(root);
        // Change a branch far from the root edge: only nodes on the path
        // from that branch to the root need recomputation.
        let far = t.n_edges() - 1;
        t.set_length(far, 0, 0.5);
        let d = t.traversal_descriptor(root);
        assert!(!d.is_empty());
        assert!(
            d.len() < t.n_inner(),
            "partial traversal expected, got full ({})",
            d.len()
        );
    }

    #[test]
    fn wire_bytes_scale_with_partitions() {
        let mut t1 = Tree::random(10, 1, 1);
        let mut tp = Tree::random(10, 10, 1);
        let d1 = t1.full_traversal_descriptor(0);
        let dp = tp.full_traversal_descriptor(0);
        assert_eq!(d1.len(), dp.len());
        // Per-partition branch lengths inflate the descriptor ~10x in its
        // branch-length payload — the -M effect from §IV-D.
        assert!(
            dp.wire_bytes() > 5 * d1.wire_bytes(),
            "{} vs {}",
            dp.wire_bytes(),
            d1.wire_bytes()
        );
    }

    #[test]
    fn deterministic_across_clones() {
        let t0 = Tree::random(15, 1, 3);
        let mut a = t0.clone();
        let mut b = t0;
        let da = a.full_traversal_descriptor(2);
        let db = b.full_traversal_descriptor(2);
        assert_eq!(da, db);
    }
}
