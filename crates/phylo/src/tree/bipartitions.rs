//! Tree-topology comparison via bipartitions (splits) and the
//! Robinson–Foulds distance. Used by tests to assert that different
//! parallelization schemes produce identical topologies.

use super::{NodeId, Tree};
use std::collections::HashSet;

/// The non-trivial bipartitions of the tree: for each internal edge, the set
/// of taxa on one side, canonicalized (side not containing taxon 0) as a
/// sorted taxon list.
pub fn bipartitions(tree: &Tree) -> HashSet<Vec<usize>> {
    let mut out = HashSet::new();
    for e in tree.edge_ids() {
        let edge = tree.edge(e);
        if tree.is_tip(edge.a) || tree.is_tip(edge.b) {
            continue; // trivial split
        }
        // Collect taxa on edge.a's side (cutting the edge).
        let side = taxa_on_side(tree, edge.a, edge.b);
        let canonical = if side.contains(&0) {
            // Complement.
            (0..tree.n_taxa())
                .filter(|t| !side.contains(t))
                .collect::<Vec<_>>()
        } else {
            let mut v: Vec<usize> = side.into_iter().collect();
            v.sort_unstable();
            v
        };
        out.insert(canonical);
    }
    out
}

fn taxa_on_side(tree: &Tree, start: NodeId, blocked: NodeId) -> HashSet<usize> {
    let mut seen = HashSet::new();
    let mut taxa = HashSet::new();
    let mut stack = vec![start];
    seen.insert(start);
    seen.insert(blocked);
    while let Some(v) = stack.pop() {
        if tree.is_tip(v) {
            taxa.insert(v);
        }
        for &(w, _) in tree.neighbors(v) {
            if seen.insert(w) {
                stack.push(w);
            }
        }
    }
    taxa
}

/// Canonical bipartitions keyed by the *directed* subtree that induces
/// them: for every inner node `v` and neighbor `parent`, the canonical
/// split of cutting edge `(v, parent)` — same canonical form as
/// [`bipartitions`] (the side without taxon 0, sorted). Only non-trivial
/// splits (internal edges) are included. Used to attach support values to
/// the right internal nodes when writing annotated Newick.
pub fn bipartitions_of_subtrees(
    tree: &Tree,
) -> std::collections::HashMap<(NodeId, NodeId), Vec<usize>> {
    let mut out = std::collections::HashMap::new();
    for e in tree.edge_ids() {
        let edge = tree.edge(e);
        if tree.is_tip(edge.a) || tree.is_tip(edge.b) {
            continue;
        }
        for (v, parent) in [(edge.a, edge.b), (edge.b, edge.a)] {
            let side = taxa_on_side(tree, v, parent);
            let canonical: Vec<usize> = if side.contains(&0) {
                (0..tree.n_taxa()).filter(|t| !side.contains(t)).collect()
            } else {
                let mut s: Vec<usize> = side.into_iter().collect();
                s.sort_unstable();
                s
            };
            out.insert((v, parent), canonical);
        }
    }
    out
}

/// Robinson–Foulds distance: the number of bipartitions present in exactly
/// one of the two trees. 0 iff the (unrooted) topologies are identical.
pub fn rf_distance(a: &Tree, b: &Tree) -> usize {
    assert_eq!(a.n_taxa(), b.n_taxa(), "trees over different taxon sets");
    let ba = bipartitions(a);
    let bb = bipartitions(b);
    ba.symmetric_difference(&bb).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;

    #[test]
    fn identical_trees_have_distance_zero() {
        let t = Tree::random(10, 1, 5);
        assert_eq!(rf_distance(&t, &t.clone()), 0);
    }

    #[test]
    fn bipartition_count_matches_internal_edges() {
        for n in [4usize, 6, 10, 20] {
            let t = Tree::random(n, 1, 1);
            // A binary unrooted tree has n-3 internal edges.
            assert_eq!(bipartitions(&t).len(), n - 3, "n={n}");
        }
    }

    #[test]
    fn different_random_trees_usually_differ() {
        let a = Tree::random(20, 1, 1);
        let b = Tree::random(20, 1, 2);
        assert!(rf_distance(&a, &b) > 0);
    }

    #[test]
    fn spr_changes_limited_number_of_splits() {
        let mut t = Tree::random(15, 1, 3);
        let orig = t.clone();
        let x = t.n_taxa();
        let sub = t.neighbors(x)[0].0;
        let info = t.prune(x, sub);
        let cands = t.edges_within_radius(info.merged_edge, 2);
        let target = *cands
            .iter()
            .find(|&&e| {
                let ed = t.edge(e);
                ed.a != x && ed.b != x && e != info.free_edge
            })
            .unwrap();
        t.graft(&info, target);
        let d = rf_distance(&orig, &t);
        // A radius-2 SPR can change at most a handful of splits.
        assert!(d > 0 && d <= 8, "distance {d}");
    }

    #[test]
    fn three_taxon_tree_has_no_splits() {
        let t = Tree::random(3, 1, 1);
        assert!(bipartitions(&t).is_empty());
    }

    #[test]
    #[should_panic(expected = "different taxon sets")]
    fn mismatched_taxa_panics() {
        let a = Tree::random(5, 1, 1);
        let b = Tree::random(6, 1, 1);
        rf_distance(&a, &b);
    }
}
