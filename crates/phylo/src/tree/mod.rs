//! Unrooted binary phylogenetic trees.
//!
//! Node ids `0..n_taxa` are tips (taxon indices); ids `n_taxa..2·n_taxa-2`
//! are inner nodes (each of degree 3). There are `2·n_taxa-3` edges; edge ids
//! are stable slots that SPR moves reuse, so conditional-likelihood buffers
//! indexed by node and P-matrix caches indexed by edge never need to grow.
//!
//! The tree also tracks **CLV orientation validity**: for every inner node
//! `v`, `orientation[v] = Some(u)` records that the engine's CLV for `v`
//! currently summarizes the subtree seen from `v` when looking *away* from
//! neighbor `u`. Topology and branch-length mutations invalidate exactly the
//! CLVs whose subtree contains a changed edge (see [`Tree::invalidate_for_edge`]),
//! which is what keeps traversal descriptors short — the paper notes
//! descriptors average only 4–5 nodes (§III-B).

pub mod bipartitions;
pub mod newick;
pub mod render;
pub mod traversal;

use rand_like::SplitMix64;
use serde::{Deserialize, Serialize};

/// Node identifier (tip: `< n_taxa`; inner: `>= n_taxa`).
pub type NodeId = usize;
/// Edge slot identifier, stable across SPR moves.
pub type EdgeId = usize;

/// Default branch length for freshly created edges (RAxML's default).
pub const DEFAULT_BRANCH_LENGTH: f64 = 0.1;
/// Branch length bounds applied during optimization.
pub const BL_MIN: f64 = 1e-8;
pub const BL_MAX: f64 = 10.0;

/// One edge: endpoints plus its branch length(s) — one length under joint
/// branch-length estimation, one per partition under the paper's `-M`
/// per-partition mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    pub a: NodeId,
    pub b: NodeId,
    pub lengths: Vec<f64>,
}

impl Edge {
    /// The endpoint that is not `v`.
    pub fn other(&self, v: NodeId) -> NodeId {
        if self.a == v {
            self.b
        } else {
            debug_assert_eq!(self.b, v);
            self.a
        }
    }

    /// The branch length used by partition `part`.
    pub fn length(&self, part: usize) -> f64 {
        if self.lengths.len() == 1 {
            self.lengths[0]
        } else {
            self.lengths[part]
        }
    }
}

/// Record returned by [`Tree::prune`] holding everything needed to undo the
/// prune or to graft the pruned subtree elsewhere.
#[derive(Debug, Clone)]
pub struct PruneInfo {
    /// The pruned inner node (still attached to its subtree).
    pub x: NodeId,
    /// The neighbor of `x` on the subtree side (stays connected).
    pub sub: NodeId,
    /// The two former neighbors of `x`, now joined directly.
    pub q: NodeId,
    pub r: NodeId,
    /// Edge id now connecting `q`–`r` (reuses the old `x`–`q` slot).
    pub merged_edge: EdgeId,
    /// Freed edge slot (the old `x`–`r` edge), reused by the next graft.
    pub free_edge: EdgeId,
    /// Original branch lengths, for exact restoration.
    pub len_xq: Vec<f64>,
    pub len_xr: Vec<f64>,
}

/// Record returned by [`Tree::graft`] for undoing the graft.
#[derive(Debug, Clone)]
pub struct GraftInfo {
    /// The edge that was split (now connects `y`–`x`).
    pub target_edge: EdgeId,
    /// The new edge `x`–`z` (reuses the prune's freed slot).
    pub new_edge: EdgeId,
    /// The split edge's original endpoints and lengths.
    pub y: NodeId,
    pub z: NodeId,
    pub orig_len: Vec<f64>,
}

/// An unrooted binary tree over `n_taxa` tips.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    n_taxa: usize,
    /// Branch lengths per edge: 1 (joint) or `n_partitions` (per-partition).
    blen_count: usize,
    /// Adjacency: `(neighbor, edge id)` per node. Tips have 1 entry, inner
    /// nodes 3.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<Edge>,
    /// CLV validity per inner node (indexed `v - n_taxa`).
    orientation: Vec<Option<NodeId>>,
}

impl Tree {
    /// Total number of nodes (`2·n_taxa - 2`).
    pub fn n_nodes(&self) -> usize {
        2 * self.n_taxa - 2
    }

    /// Number of tips.
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Number of edges (`2·n_taxa - 3`).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of inner nodes (`n_taxa - 2`).
    pub fn n_inner(&self) -> usize {
        self.n_taxa - 2
    }

    /// Number of branch lengths per edge (1 = joint, else per-partition).
    pub fn blen_count(&self) -> usize {
        self.blen_count
    }

    /// Is `v` a tip?
    pub fn is_tip(&self, v: NodeId) -> bool {
        v < self.n_taxa
    }

    /// Inner-node index of `v` (panics on tips).
    pub fn inner_index(&self, v: NodeId) -> usize {
        debug_assert!(!self.is_tip(v));
        v - self.n_taxa
    }

    /// Neighbors of `v` as `(node, edge)` pairs.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v]
    }

    /// The edge record of `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// Edge connecting `a` and `b`, if they are adjacent.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.adj[a].iter().find(|&&(n, _)| n == b).map(|&(_, e)| e)
    }

    /// All edge ids (0..n_edges — every slot is always in use).
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        0..self.edges.len()
    }

    /// Build a star-resolved random topology by stepwise random attachment,
    /// deterministic in `seed`. All branch lengths start at
    /// [`DEFAULT_BRANCH_LENGTH`].
    ///
    /// # Panics
    /// Panics if `n_taxa < 3` or `blen_count == 0`.
    pub fn random(n_taxa: usize, blen_count: usize, seed: u64) -> Tree {
        assert!(n_taxa >= 3, "need at least 3 taxa, got {n_taxa}");
        assert!(blen_count >= 1);
        let mut rng = SplitMix64::new(seed);
        let mut t = Tree::initial_triplet(n_taxa, blen_count);
        for taxon in 3..n_taxa {
            let e = (rng.next() % t.edges.len() as u64) as EdgeId;
            t.attach_tip(taxon, e);
        }
        t
    }

    /// The 3-taxon starting tree: tips 0,1,2 joined at inner node `n_taxa`.
    fn initial_triplet(n_taxa: usize, blen_count: usize) -> Tree {
        Tree::triplet(n_taxa, blen_count, [0, 1, 2])
    }

    /// A partial tree over three chosen tips joined at inner node `n_taxa`,
    /// with capacity for all `n_taxa` tips; the rest are attached later via
    /// [`Tree::attach_tip`] (stepwise-addition constructions).
    ///
    /// # Panics
    /// Panics if the three tips are not distinct valid taxon ids.
    pub fn triplet(n_taxa: usize, blen_count: usize, tips: [NodeId; 3]) -> Tree {
        assert!(n_taxa >= 3 && blen_count >= 1);
        assert!(
            tips[0] != tips[1] && tips[1] != tips[2] && tips[0] != tips[2],
            "triplet tips must be distinct"
        );
        let n_nodes = 2 * n_taxa - 2;
        let mut t = Tree {
            n_taxa,
            blen_count,
            adj: vec![Vec::new(); n_nodes],
            edges: Vec::with_capacity(2 * n_taxa - 3),
            orientation: vec![None; n_taxa - 2],
        };
        let center = n_taxa;
        for &tip in &tips {
            assert!(tip < n_taxa, "triplet member {tip} is not a tip");
            let e = t.edges.len();
            t.edges.push(Edge {
                a: tip,
                b: center,
                lengths: vec![DEFAULT_BRANCH_LENGTH; blen_count],
            });
            t.adj[tip].push((center, e));
            t.adj[center].push((tip, e));
        }
        t
    }

    /// Attach tip `taxon` (not yet in the tree) into edge `e`, creating the
    /// next unused inner node. Used by stepwise-addition constructions.
    pub fn attach_tip(&mut self, taxon: NodeId, e: EdgeId) -> NodeId {
        debug_assert!(
            self.is_tip(taxon) && self.adj[taxon].is_empty(),
            "taxon already attached"
        );
        // The next unused inner node: 3 tips use 1 inner; tip k uses inner k-2.
        let used_inner = self.adj[self.n_taxa..]
            .iter()
            .filter(|a| !a.is_empty())
            .count();
        let x = self.n_taxa + used_inner;
        debug_assert!(self.adj[x].is_empty(), "inner node {x} already in use");

        let Edge { a, b, lengths } = self.edges[e].clone();
        // Split e = (a,b) into (a,x) [reusing slot e] and (x,b) [new slot],
        // then hang the new tip off x.
        let half: Vec<f64> = lengths.iter().map(|l| (l / 2.0).max(BL_MIN)).collect();
        self.edges[e] = Edge {
            a,
            b: x,
            lengths: half.clone(),
        };
        self.adj[a].iter_mut().for_each(|p| {
            if p.1 == e {
                p.0 = x;
            }
        });
        self.remove_adj(b, e);
        let e2 = self.edges.len();
        self.edges.push(Edge {
            a: x,
            b,
            lengths: half,
        });
        self.adj[b].push((x, e2));
        let e3 = self.edges.len();
        self.edges.push(Edge {
            a: taxon,
            b: x,
            lengths: vec![DEFAULT_BRANCH_LENGTH; self.blen_count],
        });
        self.adj[taxon].push((x, e3));
        self.adj[x].push((a, e));
        self.adj[x].push((b, e2));
        self.adj[x].push((taxon, e3));
        self.invalidate_all();
        x
    }

    fn remove_adj(&mut self, at: NodeId, edge: EdgeId) {
        let pos = self.adj[at]
            .iter()
            .position(|&(_, e)| e == edge)
            .expect("adjacency entry missing");
        self.adj[at].swap_remove(pos);
    }

    /// Set branch length(s) of edge `e` for partition `part` (or all
    /// partitions when the tree uses joint lengths), then invalidate
    /// dependent CLVs.
    pub fn set_length(&mut self, e: EdgeId, part: usize, value: f64) {
        let v = value.clamp(BL_MIN, BL_MAX);
        if self.blen_count == 1 {
            self.edges[e].lengths[0] = v;
        } else {
            self.edges[e].lengths[part] = v;
        }
        self.invalidate_for_edge(e);
    }

    /// Set all branch lengths of edge `e` at once (length `blen_count`).
    pub fn set_lengths(&mut self, e: EdgeId, values: &[f64]) {
        assert_eq!(values.len(), self.blen_count);
        for (slot, &v) in self.edges[e].lengths.iter_mut().zip(values) {
            *slot = v.clamp(BL_MIN, BL_MAX);
        }
        self.invalidate_for_edge(e);
    }

    /// Mark every inner CLV invalid (model change, fresh tree, restart).
    pub fn invalidate_all(&mut self) {
        for o in self.orientation.iter_mut() {
            *o = None;
        }
    }

    /// CLV orientation bookkeeping — see module docs. Invalidate every inner
    /// CLV whose summarized subtree contains edge `e`.
    pub fn invalidate_for_edge(&mut self, e: EdgeId) {
        // Escape hatch for debugging and for the invalidation ablation
        // bench: force full CLV recomputation on every change.
        static FORCE_FULL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *FORCE_FULL.get_or_init(|| std::env::var("EXA_DEBUG_INVALIDATE_ALL").is_ok()) {
            self.invalidate_all();
            return;
        }
        let (x, y) = (self.edges[e].a, self.edges[e].b);
        // Multi-source BFS from the edge endpoints: hop[v] = first node on
        // the path from v toward the edge.
        let mut hop: Vec<Option<NodeId>> = vec![None; self.n_nodes()];
        let mut queue = std::collections::VecDeque::new();
        hop[x] = Some(y); // by convention: CLV(x → y) points "at" the edge
        hop[y] = Some(x);
        queue.push_back(x);
        queue.push_back(y);
        while let Some(v) = queue.pop_front() {
            for &(w, _) in &self.adj[v] {
                if hop[w].is_none() && !(v == x && w == y) && !(v == y && w == x) {
                    hop[w] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        for v in self.n_taxa..self.n_nodes() {
            let idx = v - self.n_taxa;
            if let Some(u) = self.orientation[idx] {
                // Valid only if the CLV points toward the changed edge.
                if Some(u) != hop[v] {
                    self.orientation[idx] = None;
                }
            }
        }
    }

    /// Current CLV orientation of inner node `v`.
    pub fn orientation_of(&self, v: NodeId) -> Option<NodeId> {
        self.orientation[self.inner_index(v)]
    }

    /// Record that the engine is about to make CLV(`v` → `toward`) valid.
    pub(crate) fn set_orientation(&mut self, v: NodeId, toward: NodeId) {
        let idx = self.inner_index(v);
        self.orientation[idx] = Some(toward);
    }

    /// Orientation markers name the neighbor a CLV points at by node id.
    /// When a node's adjacency is rewired, an old marker can collide with a
    /// *new* neighbor of the same id (e.g. a pruned node re-grafted next to
    /// a node that still remembers pointing at it) and would pass for
    /// valid. Every topology operation therefore clears the markers of all
    /// nodes whose adjacency it touches.
    fn clear_orientation(&mut self, v: NodeId) {
        if !self.is_tip(v) {
            let idx = self.inner_index(v);
            self.orientation[idx] = None;
        }
    }

    /// Prune the subtree hanging off inner node `x` on its `sub` side:
    /// `x`'s other two neighbors `q`, `r` are joined directly (their branch
    /// lengths add), and `x`+subtree dangle free.
    ///
    /// # Panics
    /// Panics if `x` is a tip or `sub` is not a neighbor of `x`.
    pub fn prune(&mut self, x: NodeId, sub: NodeId) -> PruneInfo {
        assert!(!self.is_tip(x), "cannot prune at tip {x}");
        let nbrs: Vec<(NodeId, EdgeId)> = self.adj[x].clone();
        assert!(
            nbrs.iter().any(|&(n, _)| n == sub),
            "{sub} is not a neighbor of {x}"
        );
        let mut others = nbrs.iter().filter(|&&(n, _)| n != sub);
        let (q, eq) = *others.next().expect("inner node must have 3 neighbors");
        let (r, er) = *others.next().expect("inner node must have 3 neighbors");

        let len_xq = self.edges[eq].lengths.clone();
        let len_xr = self.edges[er].lengths.clone();

        // Invalidate CLVs that depended on the region before rewiring.
        self.invalidate_for_edge(eq);
        self.invalidate_for_edge(er);

        // Merge: slot eq becomes q–r with summed lengths; slot er is freed.
        let merged: Vec<f64> = len_xq
            .iter()
            .zip(&len_xr)
            .map(|(a, b)| (a + b).clamp(BL_MIN, BL_MAX))
            .collect();
        self.edges[eq] = Edge {
            a: q,
            b: r,
            lengths: merged,
        };
        // Rewire adjacency: q keeps edge eq but neighbor becomes r; r's
        // entry for er is rewritten to (q, eq); x loses q and r.
        for p in self.adj[q].iter_mut() {
            if p.1 == eq {
                p.0 = r;
            }
        }
        for p in self.adj[r].iter_mut() {
            if p.1 == er {
                *p = (q, eq);
            }
        }
        self.remove_adj(x, eq);
        self.remove_adj(x, er);
        // Adjacency of q, r and x changed: clear their markers (see
        // clear_orientation).
        self.clear_orientation(q);
        self.clear_orientation(r);
        self.clear_orientation(x);

        PruneInfo {
            x,
            sub,
            q,
            r,
            merged_edge: eq,
            free_edge: er,
            len_xq,
            len_xr,
        }
    }

    /// Graft the pruned subtree (from `info`) into `target` = (y,z): the
    /// target splits into (y,x) [slot kept] and (x,z) [freed slot reused],
    /// each taking half the target's length.
    ///
    /// # Panics
    /// Panics if `target` is the pruned subtree's own attachment edge.
    pub fn graft(&mut self, info: &PruneInfo, target: EdgeId) -> GraftInfo {
        let x = info.x;
        let Edge {
            a: y,
            b: z,
            lengths: orig,
        } = self.edges[target].clone();
        assert!(y != x && z != x, "cannot graft into the subtree's own edge");
        debug_assert!(
            {
                // The target must lie in the main component, not in the
                // dangling subtree (reachable from x while detached).
                let mut seen = vec![false; self.n_nodes()];
                let mut stack = vec![x];
                seen[x] = true;
                while let Some(v) = stack.pop() {
                    for &(w, _) in &self.adj[v] {
                        if !seen[w] {
                            seen[w] = true;
                            stack.push(w);
                        }
                    }
                }
                !seen[y] && !seen[z]
            },
            "graft target {target} lies inside the pruned subtree"
        );
        let half: Vec<f64> = orig.iter().map(|l| (l / 2.0).max(BL_MIN)).collect();

        self.edges[target] = Edge {
            a: y,
            b: x,
            lengths: half.clone(),
        };
        for p in self.adj[y].iter_mut() {
            if p.1 == target {
                p.0 = x;
            }
        }
        // z: entry for `target` is replaced with the new edge.
        let ez = info.free_edge;
        for p in self.adj[z].iter_mut() {
            if p.1 == target {
                *p = (x, ez);
            }
        }
        self.edges[ez] = Edge {
            a: x,
            b: z,
            lengths: half,
        };
        self.adj[x].push((y, target));
        self.adj[x].push((z, ez));

        self.invalidate_for_edge(target);
        self.invalidate_for_edge(ez);
        self.clear_orientation(y);
        self.clear_orientation(z);
        self.clear_orientation(x);

        GraftInfo {
            target_edge: target,
            new_edge: ez,
            y,
            z,
            orig_len: orig,
        }
    }

    /// Undo a graft: detach `info.x` again, restoring the split edge.
    /// Afterwards the tree is back in the pruned state.
    pub fn ungraft(&mut self, g: &GraftInfo, p: &PruneInfo) {
        let x = p.x;
        self.invalidate_for_edge(g.target_edge);
        self.invalidate_for_edge(g.new_edge);
        // Restore target edge y–z with original lengths.
        self.edges[g.target_edge] = Edge {
            a: g.y,
            b: g.z,
            lengths: g.orig_len.clone(),
        };
        for q in self.adj[g.y].iter_mut() {
            if q.1 == g.target_edge {
                q.0 = g.z;
            }
        }
        for q in self.adj[g.z].iter_mut() {
            if q.1 == g.new_edge {
                *q = (g.y, g.target_edge);
            }
        }
        self.remove_adj(x, g.target_edge);
        self.remove_adj(x, g.new_edge);
        self.clear_orientation(g.y);
        self.clear_orientation(g.z);
        self.clear_orientation(x);
    }

    /// Re-insert a pruned subtree at its original location with its original
    /// branch lengths, exactly undoing [`Tree::prune`].
    pub fn restore_prune(&mut self, p: &PruneInfo) {
        let x = p.x;
        self.invalidate_for_edge(p.merged_edge);
        // merged_edge currently q–r; split back into q–x (same slot) and
        // x–r (freed slot), with the exact original lengths.
        self.edges[p.merged_edge] = Edge {
            a: p.q,
            b: x,
            lengths: p.len_xq.clone(),
        };
        for e in self.adj[p.q].iter_mut() {
            if e.1 == p.merged_edge {
                e.0 = x;
            }
        }
        for e in self.adj[p.r].iter_mut() {
            if e.1 == p.merged_edge {
                *e = (x, p.free_edge);
            }
        }
        self.edges[p.free_edge] = Edge {
            a: x,
            b: p.r,
            lengths: p.len_xr.clone(),
        };
        self.adj[x].push((p.q, p.merged_edge));
        self.adj[x].push((p.r, p.free_edge));

        self.invalidate_for_edge(p.merged_edge);
        self.invalidate_for_edge(p.free_edge);
        self.clear_orientation(p.q);
        self.clear_orientation(p.r);
        self.clear_orientation(x);
    }

    /// Edges within `radius` hops of edge `start` (breadth-first over the
    /// line graph), excluding `start` itself. Used to enumerate SPR
    /// insertion candidates.
    pub fn edges_within_radius(&self, start: EdgeId, radius: usize) -> Vec<EdgeId> {
        let mut dist: Vec<Option<usize>> = vec![None; self.edges.len()];
        dist[start] = Some(0);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        let mut out = Vec::new();
        while let Some(e) = queue.pop_front() {
            let d = dist[e].unwrap();
            if d == radius {
                continue;
            }
            for v in [self.edges[e].a, self.edges[e].b] {
                for &(_, e2) in &self.adj[v] {
                    if dist[e2].is_none() {
                        dist[e2] = Some(d + 1);
                        out.push(e2);
                        queue.push_back(e2);
                    }
                }
            }
        }
        out
    }

    /// Verify all structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.n_taxa;
        if self.edges.len() != 2 * n - 3 {
            return Err(format!(
                "expected {} edges, found {}",
                2 * n - 3,
                self.edges.len()
            ));
        }
        for v in 0..self.n_nodes() {
            let deg = self.adj[v].len();
            let expect = if self.is_tip(v) { 1 } else { 3 };
            if deg != expect {
                return Err(format!("node {v} has degree {deg}, expected {expect}"));
            }
            for &(w, e) in &self.adj[v] {
                let edge = &self.edges[e];
                if !((edge.a == v && edge.b == w) || (edge.a == w && edge.b == v)) {
                    return Err(format!("adjacency ({v},{w}) disagrees with edge {e:?}"));
                }
                if !self.adj[w].iter().any(|&(u, e2)| u == v && e2 == e) {
                    return Err(format!("asymmetric adjacency between {v} and {w}"));
                }
            }
        }
        // Connectivity.
        let mut seen = vec![false; self.n_nodes()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            for &(w, _) in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        if count != self.n_nodes() {
            return Err(format!(
                "tree not connected: reached {count} of {}",
                self.n_nodes()
            ));
        }
        for e in &self.edges {
            if e.lengths.len() != self.blen_count {
                return Err("edge with wrong branch-length arity".into());
            }
            for &l in &e.lengths {
                if !(BL_MIN..=BL_MAX).contains(&l) {
                    return Err(format!("branch length {l} out of bounds"));
                }
            }
        }
        Ok(())
    }
}

/// A tiny deterministic RNG (SplitMix64) so tree construction does not pull
/// the `rand` crate into the engine's dependency set.
mod rand_like {
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        pub fn new(seed: u64) -> SplitMix64 {
            SplitMix64 { state: seed }
        }

        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tree_valid_for_various_sizes() {
        for n in [3usize, 4, 5, 8, 16, 52] {
            let t = Tree::random(n, 1, 42);
            t.check_invariants().unwrap();
            assert_eq!(t.n_edges(), 2 * n - 3);
            assert_eq!(t.n_inner(), n - 2);
        }
    }

    #[test]
    fn random_tree_deterministic_in_seed() {
        let a = Tree::random(20, 1, 7);
        let b = Tree::random(20, 1, 7);
        let c = Tree::random(20, 1, 8);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn per_partition_branch_lengths() {
        let t = Tree::random(6, 5, 1);
        t.check_invariants().unwrap();
        for e in 0..t.n_edges() {
            assert_eq!(t.edge(e).lengths.len(), 5);
            assert_eq!(t.edge(e).length(3), t.edge(e).lengths[3]);
        }
    }

    #[test]
    fn set_length_clamps() {
        let mut t = Tree::random(5, 1, 1);
        t.set_length(0, 0, 1e9);
        assert_eq!(t.edge(0).length(0), BL_MAX);
        t.set_length(0, 0, 0.0);
        assert_eq!(t.edge(0).length(0), BL_MIN);
    }

    #[test]
    fn prune_then_restore_is_identity() {
        let mut t = Tree::random(10, 1, 3);
        let before = t.clone();
        // Pick an inner node and a neighbor to treat as subtree side.
        let x = t.n_taxa();
        let sub = t.neighbors(x)[0].0;
        let info = t.prune(x, sub);
        // During prune state: x has degree 1 toward sub.
        assert_eq!(t.neighbors(x).len(), 1);
        t.restore_prune(&info);
        t.check_invariants().unwrap();
        // Topology and lengths identical (adjacency order may differ).
        for e in 0..t.n_edges() {
            let (ea, eb) = (t.edge(e).a.min(t.edge(e).b), t.edge(e).a.max(t.edge(e).b));
            let (ba, bb) = (
                before.edge(e).a.min(before.edge(e).b),
                before.edge(e).a.max(before.edge(e).b),
            );
            assert_eq!((ea, eb), (ba, bb), "edge {e}");
            assert_eq!(t.edge(e).lengths, before.edge(e).lengths, "edge {e}");
        }
    }

    #[test]
    fn graft_then_ungraft_returns_to_pruned_state() {
        let mut t = Tree::random(10, 1, 5);
        let x = t.n_taxa() + 2;
        let sub = t.neighbors(x)[1].0;
        let info = t.prune(x, sub);
        // Graft into the main component: BFS from the merged edge can never
        // reach the dangling subtree.
        let candidates = t.edges_within_radius(info.merged_edge, usize::MAX);
        let target = *candidates
            .iter()
            .find(|&&e| {
                let ed = t.edge(e);
                ed.a != x && ed.b != x && e != info.free_edge
            })
            .unwrap();
        let g = t.graft(&info, target);
        t.check_invariants().unwrap();
        t.ungraft(&g, &info);
        t.restore_prune(&info);
        t.check_invariants().unwrap();
    }

    #[test]
    fn spr_move_changes_topology() {
        let mut t = Tree::random(12, 1, 9);
        let before = t.clone();
        let x = t.n_taxa() + 1;
        let sub = t.neighbors(x)[0].0;
        let info = t.prune(x, sub);
        let candidates = t.edges_within_radius(info.merged_edge, 3);
        let target = *candidates
            .iter()
            .find(|&&e| {
                let ed = t.edge(e);
                ed.a != x && ed.b != x && e != info.free_edge
            })
            .unwrap();
        t.graft(&info, target);
        t.check_invariants().unwrap();
        let rf = bipartitions::rf_distance(&before, &t);
        assert!(rf > 0, "SPR should alter the topology");
    }

    #[test]
    fn edges_within_radius_bounded() {
        let t = Tree::random(30, 1, 11);
        let r1 = t.edges_within_radius(0, 1);
        let r3 = t.edges_within_radius(0, 3);
        assert!(r1.len() <= r3.len());
        assert!(!r3.contains(&0));
        // Radius 1 from an edge touches at most 4 other edges.
        assert!(r1.len() <= 4, "{r1:?}");
    }

    #[test]
    fn invalidation_after_length_change() {
        let mut t = Tree::random(8, 1, 2);
        // Pretend all CLVs valid, oriented arbitrarily toward neighbor 0.
        for v in t.n_taxa()..t.n_nodes() {
            let toward = t.neighbors(v)[0].0;
            t.set_orientation(v, toward);
        }
        let e = 0;
        t.set_length(e, 0, 0.2);
        // Every surviving orientation must be the unique first hop from its
        // node toward edge e (recomputed here independently via BFS).
        let (a, b) = (t.edge(e).a, t.edge(e).b);
        let mut hop: Vec<Option<NodeId>> = vec![None; t.n_nodes()];
        hop[a] = Some(b);
        hop[b] = Some(a);
        let mut queue = std::collections::VecDeque::from([a, b]);
        while let Some(v) = queue.pop_front() {
            for &(w, _) in t.neighbors(v) {
                if hop[w].is_none() && !(v == a && w == b) && !(v == b && w == a) {
                    hop[w] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        for v in t.n_taxa()..t.n_nodes() {
            if let Some(u) = t.orientation_of(v) {
                assert_eq!(Some(u), hop[v], "node {v} kept a stale CLV");
            }
        }
    }

    #[test]
    fn invalidate_keeps_clvs_pointing_at_edge() {
        // Chain-like check on a known small tree: 4 taxa, 2 inner nodes.
        // inner nodes 4 and 5; edge between them is the internal edge.
        let mut t = Tree::random(4, 1, 1);
        t.check_invariants().unwrap();
        let (i1, i2) = (4, 5);
        let internal = t
            .edge_between(i1, i2)
            .expect("inner nodes adjacent in 4-taxon tree");
        t.set_orientation(i1, i2);
        t.set_orientation(i2, i1);
        // Changing the internal edge keeps both (they point at it).
        t.set_length(internal, 0, 0.3);
        assert_eq!(t.orientation_of(i1), Some(i2));
        assert_eq!(t.orientation_of(i2), Some(i1));
        // Changing a pendant edge at i1 invalidates i1 (its subtree contains
        // that edge? i1 points toward i2, so its subtree is on the far side
        // of i2... the pendant at i1 IS in i2's summarized subtree).
        let pendant_at_i1 = t
            .neighbors(i1)
            .iter()
            .find(|&&(n, _)| t.is_tip(n))
            .map(|&(_, e)| e)
            .unwrap();
        t.set_length(pendant_at_i1, 0, 0.2);
        // CLV(i1 → i2) summarizes i1's side which contains the pendant: stale.
        assert_eq!(t.orientation_of(i1), None);
        // CLV(i2 → i1) summarizes i2's far side, not containing it: valid.
        assert_eq!(t.orientation_of(i2), Some(i1));
    }

    #[test]
    fn check_invariants_catches_corruption() {
        let mut t = Tree::random(5, 1, 1);
        t.edges[0].lengths[0] = 99.0; // out of bounds
        assert!(t.check_invariants().is_err());
    }
}
