//! Tree rendering: Newick with bipartition support labels, and an ASCII-art
//! cladogram for terminal output.

use super::bipartitions::bipartitions_of_subtrees;
use super::{EdgeId, NodeId, Tree};
use std::collections::HashMap;

impl Tree {
    /// Render as Newick with internal-node support labels (e.g. bootstrap
    /// percentages): `support` maps canonical bipartitions (as produced by
    /// [`super::bipartitions::bipartitions`]) to a value printed after the
    /// closing parenthesis, the convention RAxML/ExaML output files use.
    pub fn to_newick_with_support(
        &self,
        names: &[String],
        support: &HashMap<Vec<usize>, f64>,
    ) -> String {
        assert_eq!(
            names.len(),
            self.n_taxa(),
            "name list must match taxon count"
        );
        let splits = bipartitions_of_subtrees(self);
        let root = self.n_taxa();
        let mut out = String::from("(");
        let mut nbrs: Vec<(NodeId, EdgeId)> = self.neighbors(root).to_vec();
        nbrs.sort_by_key(|&(n, _)| n);
        for (i, &(child, e)) in nbrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.write_support_subtree(child, root, e, names, support, &splits, &mut out);
        }
        out.push_str(");");
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn write_support_subtree(
        &self,
        v: NodeId,
        parent: NodeId,
        edge: EdgeId,
        names: &[String],
        support: &HashMap<Vec<usize>, f64>,
        splits: &HashMap<(NodeId, NodeId), Vec<usize>>,
        out: &mut String,
    ) {
        if self.is_tip(v) {
            out.push_str(&names[v]);
        } else {
            out.push('(');
            let mut children: Vec<(NodeId, EdgeId)> = self
                .neighbors(v)
                .iter()
                .filter(|&&(n, _)| n != parent)
                .copied()
                .collect();
            children.sort_by_key(|&(n, _)| n);
            for (i, &(c, e)) in children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                self.write_support_subtree(c, v, e, names, support, splits, out);
            }
            out.push(')');
            if let Some(split) = splits.get(&(v, parent)) {
                if let Some(&s) = support.get(split) {
                    out.push_str(&format!("{}", s.round() as i64));
                }
            }
        }
        out.push_str(&format!(":{:.10}", self.edge(edge).length(0)));
    }

    /// Render an ASCII cladogram (topology only), one tip per line. Rooted
    /// for display at the first inner node.
    pub fn to_ascii(&self, names: &[String]) -> String {
        assert_eq!(
            names.len(),
            self.n_taxa(),
            "name list must match taxon count"
        );
        let root = self.n_taxa();
        let mut lines: Vec<String> = Vec::new();
        let mut nbrs: Vec<NodeId> = self.neighbors(root).iter().map(|&(n, _)| n).collect();
        nbrs.sort_unstable();
        let last = nbrs.len() - 1;
        for (i, &child) in nbrs.iter().enumerate() {
            self.ascii_subtree(child, root, "", i == last, i == 0, names, &mut lines);
        }
        lines.join("\n") + "\n"
    }

    #[allow(clippy::too_many_arguments)]
    fn ascii_subtree(
        &self,
        v: NodeId,
        parent: NodeId,
        prefix: &str,
        is_last: bool,
        _is_first: bool,
        names: &[String],
        out: &mut Vec<String>,
    ) {
        let connector = if is_last { "└─" } else { "├─" };
        if self.is_tip(v) {
            out.push(format!("{prefix}{connector} {}", names[v]));
            return;
        }
        out.push(format!("{prefix}{connector}┐"));
        let child_prefix = format!("{prefix}{}", if is_last { "   " } else { "│  " });
        let mut children: Vec<NodeId> = self
            .neighbors(v)
            .iter()
            .map(|&(n, _)| n)
            .filter(|&n| n != parent)
            .collect();
        children.sort_unstable();
        let last = children.len() - 1;
        for (i, &c) in children.iter().enumerate() {
            self.ascii_subtree(c, v, &child_prefix, i == last, i == 0, names, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::bipartitions::bipartitions;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn support_labels_appear_for_known_splits() {
        let t = Tree::random(6, 1, 3);
        let nm = names(6);
        let mut support = HashMap::new();
        for split in bipartitions(&t) {
            support.insert(split, 87.0);
        }
        let text = t.to_newick_with_support(&nm, &support);
        // 6 taxa → 3 internal edges → 3 support labels... but one internal
        // edge may be incident to the display root and splits are attached
        // to non-root inner nodes; at least one label must appear.
        assert!(text.contains(")87:"), "no support label in {text}");
    }

    #[test]
    fn no_support_map_means_plain_newick() {
        let t = Tree::random(5, 1, 1);
        let nm = names(5);
        let plain = t.to_newick(&nm);
        let with_empty = t.to_newick_with_support(&nm, &HashMap::new());
        assert_eq!(plain, with_empty);
    }

    #[test]
    fn annotated_newick_preserves_topology_for_parsers_ignoring_labels() {
        // Our parser treats ')87' as part of structure? It expects ':' or
        // delimiters after ')'; inner labels are not parsed back — document
        // by asserting the plain form round-trips instead.
        let t = Tree::random(7, 1, 9);
        let nm = names(7);
        let text = t.to_newick(&nm);
        let back = Tree::from_newick(&text, &nm, 1).unwrap();
        assert_eq!(crate::tree::bipartitions::rf_distance(&t, &back), 0);
    }

    #[test]
    fn ascii_contains_every_taxon_once() {
        let t = Tree::random(8, 1, 5);
        let nm = names(8);
        let art = t.to_ascii(&nm);
        for n in &nm {
            assert_eq!(art.matches(n.as_str()).count(), 1, "{art}");
        }
        // Structural characters present.
        assert!(art.contains("└─") && art.contains("├─"));
    }

    #[test]
    fn ascii_line_count_matches_nodes() {
        let t = Tree::random(10, 1, 2);
        let nm = names(10);
        let art = t.to_ascii(&nm);
        // One line per tip + one per displayed inner node (n-3 below root).
        let lines = art.trim_end().lines().count();
        assert_eq!(lines, 10 + (10 - 3));
    }
}
