//! Newick serialization of unrooted trees.
//!
//! The writer emits the standard unrooted convention: a trifurcation at an
//! arbitrary inner node, e.g. `(A:0.1,B:0.2,(C:0.1,D:0.1):0.05);`. The
//! parser accepts both trifurcating and (binary-)rooted files; a binary root
//! is collapsed into an edge, as RAxML does on input.
//!
//! For trees with per-partition branch lengths, the writer emits partition
//! 0's lengths (checkpoints store the full length vectors separately).

use super::{Edge, EdgeId, NodeId, Tree, BL_MAX, BL_MIN};

/// Errors from Newick parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewickError(pub String);

impl std::fmt::Display for NewickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "newick error: {}", self.0)
    }
}

impl std::error::Error for NewickError {}

impl Tree {
    /// Build a tree from an explicit edge list `(a, b, length)` over node
    /// ids (`0..n_taxa` tips, `n_taxa..2n_taxa-2` inner). Lengths are
    /// replicated across all `blen_count` slots.
    pub fn from_edges(
        n_taxa: usize,
        blen_count: usize,
        edge_list: &[(NodeId, NodeId, f64)],
    ) -> Result<Tree, NewickError> {
        if n_taxa < 3 {
            return Err(NewickError(format!("need >= 3 taxa, got {n_taxa}")));
        }
        let n_nodes = 2 * n_taxa - 2;
        if edge_list.len() != 2 * n_taxa - 3 {
            return Err(NewickError(format!(
                "expected {} edges, got {}",
                2 * n_taxa - 3,
                edge_list.len()
            )));
        }
        let mut t = Tree {
            n_taxa,
            blen_count,
            adj: vec![Vec::new(); n_nodes],
            edges: Vec::with_capacity(edge_list.len()),
            orientation: vec![None; n_taxa - 2],
        };
        for &(a, b, len) in edge_list {
            if a >= n_nodes || b >= n_nodes || a == b {
                return Err(NewickError(format!("bad edge ({a},{b})")));
            }
            let e: EdgeId = t.edges.len();
            t.edges.push(Edge {
                a,
                b,
                lengths: vec![len.clamp(BL_MIN, BL_MAX); blen_count],
            });
            t.adj[a].push((b, e));
            t.adj[b].push((a, e));
        }
        t.check_invariants().map_err(NewickError)?;
        Ok(t)
    }

    /// Render as Newick using `names` for tips, rooted at an arbitrary
    /// trifurcating inner node.
    pub fn to_newick(&self, names: &[String]) -> String {
        assert_eq!(
            names.len(),
            self.n_taxa(),
            "name list must match taxon count"
        );
        let root = self.n_taxa(); // first inner node
        let mut out = String::from("(");
        let nbrs: Vec<(NodeId, EdgeId)> = {
            let mut v = self.neighbors(root).to_vec();
            v.sort_by_key(|&(n, _)| n);
            v
        };
        for (i, &(child, e)) in nbrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.write_subtree(child, root, e, names, &mut out);
        }
        out.push_str(");");
        out
    }

    fn write_subtree(
        &self,
        v: NodeId,
        parent: NodeId,
        edge: EdgeId,
        names: &[String],
        out: &mut String,
    ) {
        if self.is_tip(v) {
            out.push_str(&names[v]);
        } else {
            out.push('(');
            let mut children: Vec<(NodeId, EdgeId)> = self
                .neighbors(v)
                .iter()
                .filter(|&&(n, _)| n != parent)
                .copied()
                .collect();
            children.sort_by_key(|&(n, _)| n);
            for (i, &(c, e)) in children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                self.write_subtree(c, v, e, names, out);
            }
            out.push(')');
        }
        out.push_str(&format!(":{:.10}", self.edge(edge).length(0)));
    }

    /// Parse a Newick string; `names` maps taxon labels to tip ids.
    pub fn from_newick(
        text: &str,
        names: &[String],
        blen_count: usize,
    ) -> Result<Tree, NewickError> {
        let n_taxa = names.len();
        let mut parser = Parser {
            bytes: text.trim().as_bytes(),
            pos: 0,
        };
        let root_node = parser.parse_clade()?;
        parser.skip_ws();
        if parser.peek() == Some(b';') {
            parser.pos += 1;
        }
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(NewickError(format!(
                "trailing input at byte {}",
                parser.pos
            )));
        }

        // Flatten into edges, assigning inner ids on the fly.
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut next_inner = n_taxa;
        let name_index = |label: &str| -> Result<NodeId, NewickError> {
            names
                .iter()
                .position(|n| n == label)
                .ok_or_else(|| NewickError(format!("unknown taxon {label:?}")))
        };

        // Resolve a clade into a node id, appending edges to children.
        fn resolve(
            clade: Clade,
            edges: &mut Vec<(NodeId, NodeId, f64)>,
            next_inner: &mut usize,
            name_index: &dyn Fn(&str) -> Result<NodeId, NewickError>,
        ) -> Result<NodeId, NewickError> {
            match clade {
                Clade::Leaf { label } => name_index(&label),
                Clade::Internal { children } => {
                    let id = *next_inner;
                    *next_inner += 1;
                    for (child, len) in children {
                        let cid = resolve(child, edges, next_inner, name_index)?;
                        edges.push((id, cid, len));
                    }
                    Ok(id)
                }
            }
        }

        // The root clade must be internal.
        let Clade::Internal { children } = root_node else {
            return Err(NewickError("tree is a single leaf".into()));
        };
        match children.len() {
            3 => {
                let id = next_inner;
                next_inner += 1;
                for (child, len) in children {
                    let cid = resolve(child, &mut edges, &mut next_inner, &|l| name_index(l))?;
                    edges.push((id, cid, len));
                }
            }
            2 => {
                // Rooted file: collapse the root into one edge between its
                // two children, lengths summed.
                let mut it = children.into_iter();
                let (c1, l1) = it.next().unwrap();
                let (c2, l2) = it.next().unwrap();
                let id1 = resolve(c1, &mut edges, &mut next_inner, &|l| name_index(l))?;
                let id2 = resolve(c2, &mut edges, &mut next_inner, &|l| name_index(l))?;
                edges.push((id1, id2, l1 + l2));
            }
            n => return Err(NewickError(format!("root has degree {n}, expected 2 or 3"))),
        }

        if next_inner != 2 * n_taxa - 2 {
            return Err(NewickError(format!(
                "tree is not strictly binary: {} inner nodes, expected {}",
                next_inner - n_taxa,
                n_taxa - 2
            )));
        }
        Tree::from_edges(n_taxa, blen_count, &edges)
    }
}

enum Clade {
    Leaf { label: String },
    Internal { children: Vec<(Clade, f64)> },
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_clade(&mut self) -> Result<Clade, NewickError> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut children = Vec::new();
            loop {
                let clade = self.parse_clade()?;
                let len = self.parse_length()?;
                children.push((clade, len));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    other => {
                        return Err(NewickError(format!(
                            "expected ',' or ')' at byte {}, found {:?}",
                            self.pos,
                            other.map(|b| b as char)
                        )))
                    }
                }
            }
            Ok(Clade::Internal { children })
        } else {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if !b":,();".contains(&b) && !b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(NewickError(format!("expected label at byte {start}")));
            }
            let label = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| NewickError("non-utf8 label".into()))?
                .to_string();
            Ok(Clade::Leaf { label })
        }
    }

    fn parse_length(&mut self) -> Result<f64, NewickError> {
        self.skip_ws();
        if self.peek() != Some(b':') {
            return Ok(super::DEFAULT_BRANCH_LENGTH);
        }
        self.pos += 1;
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'-' || b == b'+' || b == b'e' || b == b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| NewickError(format!("bad branch length at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::bipartitions::rf_distance;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn roundtrip_random_trees() {
        for seed in 0..5u64 {
            let t = Tree::random(12, 1, seed);
            let nm = names(12);
            let text = t.to_newick(&nm);
            let back = Tree::from_newick(&text, &nm, 1).unwrap();
            assert_eq!(rf_distance(&t, &back), 0, "seed {seed}: {text}");
            // Branch lengths survive (sum preserved; identity per split is
            // what RF + total length checks approximate).
            let sum_a: f64 = t.edge_ids().map(|e| t.edge(e).length(0)).sum();
            let sum_b: f64 = back.edge_ids().map(|e| back.edge(e).length(0)).sum();
            assert!((sum_a - sum_b).abs() < 1e-6);
        }
    }

    #[test]
    fn parses_rooted_newick_by_collapsing_root() {
        let nm = names(4);
        let t = Tree::from_newick("((t0:0.1,t1:0.2):0.05,(t2:0.1,t3:0.1):0.05);", &nm, 1).unwrap();
        t.check_invariants().unwrap();
        assert_eq!(t.n_taxa(), 4);
        // The collapsed central edge has summed length 0.1.
        let internal = t
            .edge_ids()
            .find(|&e| !t.is_tip(t.edge(e).a) && !t.is_tip(t.edge(e).b))
            .unwrap();
        assert!((t.edge(internal).length(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn parses_trifurcating_newick() {
        let nm = names(5);
        let t =
            Tree::from_newick("(t0:0.1,(t1:0.1,t2:0.1):0.2,(t3:0.1,t4:0.1):0.3);", &nm, 1).unwrap();
        t.check_invariants().unwrap();
    }

    #[test]
    fn missing_lengths_get_default() {
        let nm = names(4);
        let t = Tree::from_newick("(t0,t1,(t2,t3));", &nm, 1).unwrap();
        assert!((t.edge(0).length(0) - super::super::DEFAULT_BRANCH_LENGTH).abs() < 1e-12);
    }

    #[test]
    fn scientific_notation_lengths() {
        let nm = names(4);
        let t = Tree::from_newick("(t0:1e-3,t1:2E-2,(t2:0.1,t3:0.1):1.5e-1);", &nm, 1).unwrap();
        let pend0 = t.edge_between(0, t.neighbors(0)[0].0).unwrap();
        assert!((t.edge(pend0).length(0) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn rejects_unknown_taxon() {
        let nm = names(4);
        let err = Tree::from_newick("(t0,t1,(t2,WRONG));", &nm, 1).unwrap_err();
        assert!(err.0.contains("unknown taxon"));
    }

    #[test]
    fn rejects_multifurcations() {
        let nm = names(5);
        assert!(Tree::from_newick("(t0,t1,t2,t3,t4);", &nm, 1).is_err());
    }

    #[test]
    fn rejects_garbage() {
        let nm = names(3);
        assert!(Tree::from_newick("((t0,t1", &nm, 1).is_err());
        assert!(Tree::from_newick("(t0:x,t1,t2);", &nm, 1).is_err());
        assert!(Tree::from_newick("(t0,t1,t2); extra", &nm, 1).is_err());
    }

    #[test]
    fn per_partition_parse_replicates_lengths() {
        let nm = names(4);
        let t = Tree::from_newick("(t0:0.1,t1:0.2,(t2:0.1,t3:0.1):0.4);", &nm, 3).unwrap();
        assert_eq!(t.blen_count(), 3);
        for e in t.edge_ids() {
            assert_eq!(t.edge(e).lengths.len(), 3);
            assert_eq!(t.edge(e).lengths[0], t.edge(e).lengths[2]);
        }
    }
}
